"""Ablations for the design choices DESIGN.md §5 calls out.

* **Defence-in-depth re-check** — every compile re-derives ``C ⊢ C`` on
  the lowered core (catching lowering bugs loudly).  What does that
  redundancy cost per keystroke?
* **Faithful small-step vs CEK** — the small-step machine re-decomposes
  the evaluation context on every step (O(depth) per step); the CEK
  machine is one pass.  How does the tax scale with work size?
* **UPDATE premise check** — the ``C' ⊢ C'`` premise re-typechecks the
  whole program per accepted edit; how much of the update cost is it?
"""

import pytest

from repro.apps.mortgage import BASE_SOURCE, compile_mortgage, host_impls
from repro.core import ast
from repro.core.defs import FunDef
from repro.core.effects import PURE
from repro.core.types import NUMBER, fun
from repro.eval.machine import BigStep, SmallStep
from repro.stdlib.web import make_services
from repro.surface.compile import compile_source
from repro.system.runtime import Runtime
from repro.system.state import Store


@pytest.mark.parametrize(
    "check_core", (True, False), ids=("recheck=on", "recheck=off")
)
def test_core_recheck_cost(benchmark, check_core):
    benchmark(
        lambda: compile_source(
            BASE_SOURCE, host_impls(), check_core=check_core
        )
    )


def _summing_code():
    body = ast.Lam(
        "n",
        NUMBER,
        ast.If(
            ast.Prim("le", (ast.Var("n"), ast.Num(0))),
            ast.Num(0),
            ast.Prim(
                "add",
                (
                    ast.Var("n"),
                    ast.App(
                        ast.FunRef("sum"),
                        ast.Prim("sub", (ast.Var("n"), ast.Num(1))),
                    ),
                ),
            ),
        ),
        PURE,
    )
    from helpers import page_code

    return page_code(
        ast.UNIT_VALUE,
        extra_defs=[FunDef("sum", fun(NUMBER, NUMBER, PURE), body)],
    )


@pytest.mark.parametrize("n", (20, 80), ids=lambda n: "n={}".format(n))
@pytest.mark.parametrize(
    "machine_cls", (BigStep, SmallStep), ids=("cek", "small-step")
)
def test_machine_tax_scaling(benchmark, machine_cls, n):
    """sum(n) by recursion: the small-step tax grows with term size."""
    code = _summing_code()
    machine = machine_cls(code)
    expr = ast.App(ast.FunRef("sum"), ast.Num(n))
    result = benchmark(lambda: machine.run_pure(Store(), expr))
    assert result == ast.Num(n * (n + 1) / 2)


@pytest.mark.parametrize(
    "check_updates", (True, False), ids=("premise=on", "premise=off")
)
def test_update_premise_cost(benchmark, check_updates):
    """How much of an UPDATE is the C' ⊢ C' premise?"""
    compiled = compile_mortgage()
    runtime = Runtime(
        compiled.code, natives=compiled.natives, services=make_services()
    ).start()
    runtime.system.check_updates = check_updates

    def update():
        runtime.update_code(compiled.code, natives=compiled.natives)

    benchmark(update)
