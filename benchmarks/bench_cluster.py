"""E8 — sharded cluster serving with the shared memo cache.

The workload is a **fleet opening the same app**: ``sessions`` sessions
of the function-gallery (every row and cell a memoizable helper call)
are created over HTTP and rendered, driven by concurrent client
threads.  Three server shapes run the identical workload:

* ``single``     — one ``SessionHost`` behind HTTP, the stock
  ``repro serve`` posture.  Every session pays the full cold render:
  per-session memo stores cannot share.
* ``cluster-1``  — one worker behind the cluster front (routing and
  journaling overhead, shared cache within the worker).
* ``cluster-4``  — four workers, per-worker write-ahead journals, the
  cross-process memo tier.

The cluster's headline win on this workload is **work avoidance**, not
CPU parallelism: the first session to render a frame publishes its memo
entries, every later session — same worker or not — imports them and
revalidates instead of re-evaluating.  That makes the speedup largely
machine-independent (it survives a single-core CI runner), which is why
the ``--check`` gate asserts the within-run ``cluster-4`` / ``single``
throughput ratio rather than any absolute number.  On multi-core
machines CPU parallelism stacks on top.

Appends to ``BENCH_cluster.json``; the committed ``baseline`` records
document the ≥2x aggregate req/s of ``cluster-4`` over ``single`` on
the recording machine.

Runs two ways::

    PYTHONPATH=src python -m pytest benchmarks/bench_cluster.py  # suite
    PYTHONPATH=src python benchmarks/bench_cluster.py --quick    # CI
"""

from __future__ import annotations

import http.client
import json
import os
import socket
import shutil
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from conftest import append_bench_record  # noqa: E402

from repro.obs.histo import percentile
from repro.apps.gallery import function_gallery_source
from repro.api import Tracer
from repro.cluster import ClusterRouter, ClusterSupervisor
from repro.serve.app import make_server
from repro.serve.host import SessionHost
from repro.stdlib.web import make_services, web_host_impls

BENCH_PATH = Path(__file__).parent.parent / "BENCH_cluster.json"

#: --check fails when cluster-4 stops beating single-process by this
#: factor on the shared-app fleet workload (within one run — no
#: machine-dependent absolute numbers).
CHECK_RATIO_FLOOR = 1.5


# The one shared nearest-rank implementation (repro.obs.histo) —
# identical math to the former local copy, so committed baselines in
# the BENCH_*.json trajectories stay comparable.
_percentile = percentile


def _connect(port):
    connection = http.client.HTTPConnection("127.0.0.1", port)
    connection.connect()
    connection.sock.setsockopt(
        socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
    )
    return connection


def _post(connection, request):
    body = json.dumps(request).encode("utf-8")
    connection.request(
        "POST", "/", body=body,
        headers={"Content-Type": "application/json"},
    )
    with connection.getresponse() as response:
        return json.loads(response.read())


def _drive(port, session_count, latencies, failures):
    """One client thread: open ``session_count`` sessions of the app.

    Per session: create, render, then a conditional re-render (the
    304 path) — the "user opens the dashboard" trace.
    """
    connection = _connect(port)
    try:
        for _ in range(session_count):
            started = time.perf_counter()
            created = _post(connection, {"op": "create"})
            if not created.get("ok"):
                failures.append(created)
                continue
            token = created["token"]
            rendered = _post(connection, {"op": "render", "token": token})
            again = _post(connection, {
                "op": "render", "token": token,
                "generation": rendered.get("generation"),
            })
            if not (rendered.get("ok") and again.get("ok")
                    and again.get("not_modified")):
                failures.append(rendered)
            latencies.append(time.perf_counter() - started)
    finally:
        connection.close()


def _serve_and_drive(target, sessions, drivers):
    """HTTP-serve ``target``, run the fleet workload, return raw stats."""
    server = make_server(target)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    shards = [[] for _ in range(drivers)]
    failures = []
    per_driver = sessions // drivers
    threads = [
        threading.Thread(
            target=_drive, args=(port, per_driver, shards[n], failures)
        )
        for n in range(drivers)
    ]
    started = time.perf_counter()
    for worker in threads:
        worker.start()
    for worker in threads:
        worker.join()
    elapsed = time.perf_counter() - started
    stats = _post_once(port, {"op": "stats"})
    server.shutdown()
    server.server_close()
    latencies = sorted(lat for shard in shards for lat in shard)
    requests = 3 * len(latencies)
    return {
        "elapsed_seconds": elapsed,
        "requests": requests,
        "requests_per_second": requests / elapsed if elapsed else 0.0,
        "session_p50_seconds": _percentile(latencies, 0.50),
        "session_p95_seconds": _percentile(latencies, 0.95),
        "failures": len(failures),
        "stats": stats.get("stats", {}),
    }


def _post_once(port, request):
    connection = _connect(port)
    try:
        return _post(connection, request)
    finally:
        connection.close()


def run_mode(mode, sessions=32, rows=12, cols=6, drivers=4):
    """One server shape under the fleet workload; returns a result dict.

    ``mode`` is ``"single"`` or ``"cluster-<N>"``.
    """
    source = function_gallery_source(rows=rows, cols=cols)
    if mode == "single":
        host = SessionHost(
            pool_size=max(16, sessions + 1),
            default_source=source,
            make_host_impls=web_host_impls,
            make_services=make_services,
            tracer=Tracer(),
            session_kwargs={"reuse_boxes": True, "memo_render": True},
        )
        raw = _serve_and_drive(host, sessions, drivers)
        metrics = raw["stats"].get("metrics", {})
        supervisor = None
    else:
        workers = int(mode.split("-", 1)[1])
        supervisor = ClusterSupervisor(
            source=source, workers=workers, tracer=Tracer(),
            pool_size=max(16, sessions + 1),
        ).start()
        try:
            raw = _serve_and_drive(
                ClusterRouter(supervisor), sessions, drivers
            )
            metrics = raw["stats"].get("metrics", {})
        finally:
            journal_root = supervisor.journal_root
            supervisor.stop()
            shutil.rmtree(journal_root, ignore_errors=True)
    shared_hits = metrics.get("cluster.memo.shared_hits", 0)
    # Publishes count fresh computations (each publishes one entry), so
    # shared_hits / (shared_hits + publishes) is the fraction of
    # memo-store outcomes satisfied by another session's work.
    memo_outcomes = shared_hits + metrics.get("cluster.memo.publishes", 0)
    return {
        "mode": mode,
        "sessions": sessions,
        "rows": rows,
        "cols": cols,
        "drivers": drivers,
        "requests": raw["requests"],
        "failures": raw["failures"],
        "elapsed_seconds": raw["elapsed_seconds"],
        "requests_per_second": raw["requests_per_second"],
        "session_p50_seconds": raw["session_p50_seconds"],
        "session_p95_seconds": raw["session_p95_seconds"],
        "shared_hits": shared_hits,
        "remote_hits": metrics.get("cluster.memo.remote_hits", 0),
        "cache_publishes": metrics.get("cluster.memo.publishes", 0),
        # The warm-hit-rate gauge.
        "shared_hit_rate": (
            shared_hits / memo_outcomes if memo_outcomes else 0.0
        ),
    }


def run_suite(sessions=32, rows=12, cols=6, drivers=4):
    """All three shapes on one machine; returns (results, summary)."""
    results = [
        run_mode(mode, sessions=sessions, rows=rows, cols=cols,
                 drivers=drivers)
        for mode in ("single", "cluster-1", "cluster-4")
    ]
    by_mode = {result["mode"]: result for result in results}
    summary = {
        "mode": "summary",
        "sessions": sessions,
        "rows": rows,
        "cols": cols,
        "cpu_count": os.cpu_count() or 1,
        "cluster4_vs_single": (
            by_mode["cluster-4"]["requests_per_second"]
            / by_mode["single"]["requests_per_second"]
        ),
        "cluster4_vs_cluster1": (
            by_mode["cluster-4"]["requests_per_second"]
            / by_mode["cluster-1"]["requests_per_second"]
        ),
    }
    return results, summary


def record(result, label):
    """Append one JSONL measurement to BENCH_cluster.json."""
    append_bench_record(BENCH_PATH, "cluster_soak", label, **result)


def describe(result):
    if result["mode"] == "summary":
        return (
            "summary: cluster-4 is {:.2f}x single-process "
            "({:.2f}x cluster-1) on {} cpu(s)".format(
                result["cluster4_vs_single"],
                result["cluster4_vs_cluster1"],
                result["cpu_count"],
            )
        )
    return (
        "{}: {:.1f} req/s ({} sessions, p50 {:.1f}ms, shared hit rate "
        "{:.2f}, {} remote hits)".format(
            result["mode"], result["requests_per_second"],
            result["sessions"], result["session_p50_seconds"] * 1e3,
            result["shared_hit_rate"], result["remote_hits"],
        )
    )


# -- suite entry points ------------------------------------------------------


def run_gate(label, attempts=2):
    """Quick-sized run(s) gated on the within-run throughput ratio.

    Perf ratios on a loaded runner are noisy; the gate takes the best
    of ``attempts`` runs, which keeps a transient scheduling hiccup
    from failing CI while a real regression still fails every attempt.
    """
    best = None
    for _ in range(attempts):
        results, summary = run_suite(
            sessions=24, rows=10, cols=5, drivers=4
        )
        for result in results:
            record(result, label)
        record(summary, label)
        if best is None or (summary["cluster4_vs_single"]
                            > best[1]["cluster4_vs_single"]):
            best = (results, summary)
        if summary["cluster4_vs_single"] >= CHECK_RATIO_FLOOR:
            break
    return best


def test_cluster_beats_single_process_via_shared_cache():
    results, summary = run_gate("suite")
    by_mode = {result["mode"]: result for result in results}
    assert by_mode["cluster-4"]["failures"] == 0
    # The shared tier must actually fire: later sessions ride earlier
    # sessions' renders, across processes.
    assert by_mode["cluster-4"]["shared_hits"] > 0
    assert by_mode["cluster-4"]["remote_hits"] > 0
    assert by_mode["single"]["shared_hits"] == 0
    # Work avoidance, not parallelism: the gate holds on one core.
    assert summary["cluster4_vs_single"] >= CHECK_RATIO_FLOOR, summary


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small CI-sized run (24 sessions of a 10x5 gallery)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="CI gate: run quick and fail unless cluster-4 beats "
             "single-process by {:.1f}x within this run".format(
                 CHECK_RATIO_FLOOR
             ),
    )
    parser.add_argument(
        "--baseline", action="store_true",
        help="record this run as the committed baseline",
    )
    args = parser.parse_args(argv)
    if args.check:
        results, summary = run_gate("quick")
        for result in results:
            print(describe(result))
        print(describe(summary))
        ok = summary["cluster4_vs_single"] >= CHECK_RATIO_FLOOR
        shared = next(
            r for r in results if r["mode"] == "cluster-4"
        )["shared_hits"]
        print(
            "check: cluster-4 vs single {:.2f}x (floor {:.1f}x), "
            "{} shared hits — {}".format(
                summary["cluster4_vs_single"], CHECK_RATIO_FLOOR,
                shared, "ok" if ok and shared else "REGRESSED",
            )
        )
        return 0 if ok and shared else 1
    if args.quick:
        results, summary = run_suite(
            sessions=24, rows=10, cols=5, drivers=4
        )
    else:
        results, summary = run_suite(
            sessions=32, rows=12, cols=6, drivers=4
        )
    label = "baseline" if args.baseline else ("quick" if args.quick else "full")
    for result in results:
        print(describe(result))
        record(result, label)
    print(describe(summary))
    record(summary, label)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
