"""E10 — closure compilation vs tree walking (repro.compile).

Measures the live-loop latency of one **edit→render** step — UPDATE
(typecheck + Fig. 12 fix-up) followed by the first RENDER of the new
code — on the tree-walking CEK machine versus the closure-compilation
backend.  Both backends are observationally identical (the differential
suite in ``tests/compile/`` pins byte-identical HTML, faults and
provenance), so this is a pure like-for-like speed comparison of the
``backend=`` switch.

Two workloads:

* ``listings`` — the paper's mortgage/house-hunting app: realistic mix
  of helper calls, globals and service posts (the ISSUE's acceptance
  workload);
* ``gallery`` — the function-drawn box gallery (30×6 cells, each drawn
  through a helper call): call-dense render bodies, where resolving
  variables to environment indices at compile time pays the most.

Each measurement alternates between two precompiled program variants so
every step is a real code update — the compiled backend therefore
*recompiles its units every round* (compilation is inside the timed
region; the ≥2x still holds because one compile per code version is
amortized over the whole render).  Results append to
``BENCH_compile.json`` (one JSON object per line).

Runs three ways::

    PYTHONPATH=src python -m pytest benchmarks/bench_compile.py   # suite
    PYTHONPATH=src python benchmarks/bench_compile.py --quick     # CI
    PYTHONPATH=src python benchmarks/bench_compile.py --check     # CI gate

``--check`` is the gate: the ``listings`` tree/compiled p50 speedup
must stay at or above :data:`SPEEDUP_FLOOR` (2.0 — the ISSUE's
acceptance criterion), and no workload's speedup may regress more than
20% against its most recent committed ``baseline`` record.  Comparing
*ratios* keeps the gate machine-independent.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from conftest import append_bench_record, latest_baselines  # noqa: E402

from repro.obs.histo import percentile
from repro.apps.gallery import function_gallery_source
from repro.apps.mortgage import BASE_SOURCE, compile_mortgage
from repro.stdlib.web import make_services
from repro.surface.compile import compile_source
from repro.system.transitions import System

BENCH_PATH = Path(__file__).parent.parent / "BENCH_compile.json"

#: The acceptance criterion: compiled must be at least this many times
#: faster than tree-walk (p50) on the ``listings`` edit→render loop.
SPEEDUP_FLOOR = 2.0

#: --check also fails when a workload's speedup regresses past this
#: factor of its committed baseline.
REGRESSION_TOLERANCE = 1.20

GALLERY_ROWS, GALLERY_COLS = 30, 6


def _listings_variants():
    base = compile_mortgage()
    edited = compile_mortgage(BASE_SOURCE.replace('"House"', '"Homes"'))
    return [
        (base.code, base.natives, make_services()),
        (edited.code, edited.natives, make_services()),
    ]


def _gallery_variants():
    compiled = [
        compile_source(
            function_gallery_source(
                rows=GALLERY_ROWS, cols=GALLERY_COLS, title=title
            )
        )
        for title in ("gallery", "edited")
    ]
    return [(c.code, c.natives, None) for c in compiled]


def _measure(variants, backend, rounds):
    """p50/p95 wall seconds of edit→render on one backend."""
    code, natives, services = variants[0]
    system = System(
        code, natives=natives, services=services, backend=backend
    )
    system.run_to_stable()
    timings = []
    for step in range(rounds):
        next_code, next_natives, _services = variants[(step + 1) % 2]
        started = time.perf_counter()
        system.update(next_code, natives=next_natives)
        system.run_to_stable()
        timings.append(time.perf_counter() - started)
    timings.sort()
    return {
        "p50_seconds": percentile(timings, 0.50),
        "p95_seconds": percentile(timings, 0.95),
    }


def run_workload(name, rounds=40):
    """Tree-vs-compiled comparison for one workload; the record body."""
    if name == "listings":
        variants = _listings_variants()
    elif name == "gallery":
        variants = _gallery_variants()
    else:
        raise ValueError("unknown workload {!r}".format(name))
    tree = _measure(variants, backend="tree", rounds=rounds)
    compiled = _measure(variants, backend="compiled", rounds=rounds)
    speedup = (
        tree["p50_seconds"] / compiled["p50_seconds"]
        if compiled["p50_seconds"] else 0.0
    )
    return {
        "workload": name,
        "rounds": rounds,
        "tree_p50_seconds": tree["p50_seconds"],
        "tree_p95_seconds": tree["p95_seconds"],
        "compiled_p50_seconds": compiled["p50_seconds"],
        "compiled_p95_seconds": compiled["p95_seconds"],
        "speedup_p50": speedup,
    }


def record(result, label):
    """Append one JSONL measurement to BENCH_compile.json."""
    append_bench_record(
        BENCH_PATH, "compile_edit_render", label, **result
    )


def load_baselines(path=BENCH_PATH):
    """workload → most recent committed ``baseline`` record."""
    return latest_baselines(path, "compile_edit_render")


def check_results(results, baselines):
    """(ok, messages): the speedup floor plus the ratio-vs-baseline
    regression gate."""
    ok = True
    messages = []
    for result in results:
        speedup = result["speedup_p50"]
        if result["workload"] == "listings":
            verdict = "ok" if speedup >= SPEEDUP_FLOOR else "BELOW FLOOR"
            if speedup < SPEEDUP_FLOOR:
                ok = False
            messages.append(
                "listings: compiled speedup {:.2f}x vs required "
                "{:.1f}x — {}".format(speedup, SPEEDUP_FLOOR, verdict)
            )
        baseline = baselines.get(result["workload"])
        if baseline is None:
            messages.append(
                "{}: no committed baseline — skipping".format(
                    result["workload"]
                )
            )
            continue
        committed = baseline["speedup_p50"]
        limit = committed / REGRESSION_TOLERANCE
        verdict = "ok" if speedup >= limit else "REGRESSED"
        if speedup < limit:
            ok = False
        messages.append(
            "{}: speedup {:.2f}x vs baseline {:.2f}x "
            "(limit {:.2f}x) — {}".format(
                result["workload"], speedup, committed, limit, verdict
            )
        )
    return ok, messages


# -- suite entry points ------------------------------------------------------


def test_listings_compiled_is_at_least_2x():
    result = run_workload("listings", rounds=14)
    assert result["speedup_p50"] >= SPEEDUP_FLOOR, result
    record(result, "suite")


def test_gallery_compiled_is_faster():
    result = run_workload("gallery", rounds=8)
    assert result["speedup_p50"] > 1.0, result
    record(result, "suite")


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small CI-sized run (fewer rounds)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="enforce the 2x listings floor and compare against the "
             "committed baselines; exit 1 on failure",
    )
    parser.add_argument(
        "--baseline", action="store_true",
        help="record the results as the committed baseline",
    )
    args = parser.parse_args(argv)
    rounds = 12 if (args.quick or args.check) else 40

    results = [
        run_workload("listings", rounds=rounds),
        run_workload("gallery", rounds=rounds),
    ]
    for result in results:
        print(
            "{workload}: tree p50 {tree:.2f}ms → compiled p50 "
            "{compiled:.2f}ms (speedup {speedup:.2f}x)".format(
                workload=result["workload"],
                tree=result["tree_p50_seconds"] * 1e3,
                compiled=result["compiled_p50_seconds"] * 1e3,
                speedup=result["speedup_p50"],
            )
        )

    if args.check:
        ok, messages = check_results(results, load_baselines())
        for message in messages:
            print("check:", message)
        return 0 if ok else 1

    label = (
        "baseline" if args.baseline else "quick" if args.quick else "full"
    )
    for result in results:
        record(result, label)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
