"""E2 — per-edit feedback latency: live vs. the Section 2 workflows.

The paper's motivation: under edit-compile-run every iteration pays
compilation, a restart (re-running init, including "waiting for the list
to download") and re-navigation, while live programming pays one UPDATE +
one RENDER.  We apply the same I2-style edit to the mortgage app under
each workflow:

* wall seconds per edit — the pytest-benchmark tables;
* *virtual* seconds per edit (simulated download latency) and replayed
  navigation actions — deterministic, asserted here:
  live = 0s / 0 actions, restart = LATENCY / 2 actions per edit,
  replay = LATENCY with cost growing in the trace length.

Expected shape: live ≪ restart ≈ replay, and the gap grows with init
cost — the crossover is immediate.
"""

import pytest

from repro.apps.mortgage import BASE_SOURCE, apply_i2, host_impls
from repro.baselines import LiveWorkflow, ReplayWorkflow, RestartWorkflow

LATENCY = 1.5
EDITED = apply_i2(BASE_SOURCE)


def _nav_script():
    """Navigate to the first listing's detail page (deterministic)."""
    from repro.stdlib.listings import generate_listings

    address, city, _price = generate_listings(8)[0]
    return [("tap_text", "{}, {}".format(address, city))]


def test_live_edit(benchmark, obs_records):
    workflow = LiveWorkflow(
        BASE_SOURCE, host_impls=host_impls(), latency=LATENCY
    )
    workflow.act(*_nav_script()[0])
    sources = [EDITED, BASE_SOURCE]

    def one_edit():
        source = sources[0]
        sources.reverse()
        return workflow.apply_edit(source)

    metrics = benchmark(one_edit)
    obs_records.emit_benchmark("edit_cycle/live", benchmark)
    assert metrics.visible
    assert metrics.virtual_seconds == 0.0
    assert metrics.navigation_actions == 0


def test_restart_edit(benchmark, obs_records):
    workflow = RestartWorkflow(
        BASE_SOURCE,
        host_impls=host_impls(),
        navigation=_nav_script(),
        latency=LATENCY,
    )
    sources = [EDITED, BASE_SOURCE]

    def one_edit():
        source = sources[0]
        sources.reverse()
        return workflow.apply_edit(source)

    metrics = benchmark(one_edit)
    obs_records.emit_benchmark("edit_cycle/restart", benchmark)
    assert metrics.virtual_seconds == LATENCY  # re-downloaded every time
    assert metrics.navigation_actions == 1


def test_replay_edit(benchmark, obs_records):
    workflow = ReplayWorkflow(
        BASE_SOURCE, host_impls=host_impls(), latency=LATENCY
    )
    workflow.act(*_nav_script()[0])
    workflow.act("back")
    workflow.act(*_nav_script()[0])
    sources = [EDITED, BASE_SOURCE]

    def one_edit():
        source = sources[0]
        sources.reverse()
        return workflow.apply_edit(source)

    outcome = benchmark(one_edit)
    obs_records.emit_benchmark("edit_cycle/replay", benchmark)
    assert outcome.virtual_seconds == LATENCY
    assert outcome.replayed_actions == 3  # the whole history, every edit


def test_traced_live_edit(benchmark, obs_records):
    """The same live edit under a real Tracer: measures observability
    overhead head-to-head with test_live_edit, and emits the per-phase
    breakdown the paper's responsiveness table wants."""
    from repro.api import Tracer

    tracer = Tracer()
    workflow = LiveWorkflow(
        BASE_SOURCE, host_impls=host_impls(), latency=LATENCY,
        session_kwargs={"tracer": tracer},
    )
    workflow.act(*_nav_script()[0])
    sources = [EDITED, BASE_SOURCE]

    def one_edit():
        source = sources[0]
        sources.reverse()
        return workflow.apply_edit(source)

    metrics = benchmark(one_edit)
    result = workflow.session.edit_log[-1]
    obs_records.emit_benchmark(
        "edit_cycle/live_traced", benchmark,
        phases={name: seconds
                for name, seconds in result.phase_seconds.items()},
    )
    assert metrics.visible
    assert dict(result.phases)  # the breakdown is populated when traced


def test_shapes_summary():
    """The deterministic half of E2, independent of wall clocks."""
    live = LiveWorkflow(
        BASE_SOURCE, host_impls=host_impls(), latency=LATENCY
    )
    live.act(*_nav_script()[0])
    restart = RestartWorkflow(
        BASE_SOURCE, host_impls=host_impls(),
        navigation=_nav_script(), latency=LATENCY,
    )
    live_total = 0.0
    restart_total = 0.0
    for source in (apply_i2(BASE_SOURCE), BASE_SOURCE, EDITED):
        live_total += live.apply_edit(source).virtual_seconds
        restart_total += restart.apply_edit(source).virtual_seconds
    assert live_total == 0.0
    assert restart_total == 3 * LATENCY
