"""E5 — event-handling throughput (the Fig. 9 loop).

One user tap costs TAP (enqueue) + THUNK (handler in standard mode) +
RENDER (full page rebuild) — the model's interactive unit of work.  We
measure it on the counter (trivial render) and on the mortgage detail
page (a 30-row render), and the faithful small-step machine on the
counter for the faithfulness tax.

Expected shape: tap cost is dominated by the re-render, so it tracks page
complexity (counter ≪ mortgage detail); the small-step machine is one to
two orders of magnitude slower than the CEK machine, which is why it is
the test oracle and not the production evaluator.
"""

import pytest

from repro.apps.counter import compile_counter
from repro.apps.mortgage import compile_mortgage
from repro.stdlib.listings import generate_listings
from repro.stdlib.web import make_services
from repro.system.runtime import Runtime


def _counter(faithful=False):
    compiled = compile_counter()
    return Runtime(
        compiled.code, natives=compiled.natives, faithful=faithful
    ).start()


def test_tap_counter_cek(benchmark):
    runtime = _counter()
    paths = [runtime.find_text("reset")]

    def tap():
        runtime.tap(paths[0])

    benchmark(tap)


def test_tap_counter_small_step(benchmark):
    """The faithfulness tax: same interaction, literal Fig. 8 machine."""
    runtime = _counter(faithful=True)
    paths = [runtime.find_text("reset")]

    def tap():
        runtime.tap(paths[0])

    benchmark(tap)


def test_tap_mortgage_detail(benchmark):
    """Tap on a 30-row page: re-render dominates."""
    compiled = compile_mortgage()
    runtime = Runtime(
        compiled.code, natives=compiled.natives, services=make_services()
    ).start()
    address, city, _price = generate_listings(8)[0]
    runtime.tap_text("{}, {}".format(address, city))
    # Editing the term re-runs the whole amortization render.
    term_box = runtime.find_text("30")

    state = {"term": 30}

    def edit_term():
        # Flip between 30 and 31 years so the box text stays findable.
        new_term = 61 - state["term"]
        runtime.edit(runtime.find_text(str(state["term"])), str(new_term))
        state["term"] = new_term

    benchmark(edit_term)


def test_back_and_forth_navigation(benchmark):
    compiled = compile_mortgage()
    runtime = Runtime(
        compiled.code, natives=compiled.natives, services=make_services()
    ).start()
    address, city, _price = generate_listings(8)[0]
    label = "{}, {}".format(address, city)

    def round_trip():
        runtime.tap_text(label)
        runtime.back()

    benchmark(round_trip)
