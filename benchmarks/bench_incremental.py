"""E9 — update-surviving incremental rendering (repro.incremental).

Measures the *live-loop latency*: the wall time of one edit→render step
(UPDATE with the Fig. 12 fix-up, then the first RENDER of the new code),
cold versus warm:

* **cold** — ``memo_render=False``: every edit re-executes the whole
  render body, the paper's baseline full rebuild;
* **warm** — ``memo_render=True``: render-function calls whose code
  digest and read-set values the edit left unchanged replay their cached
  box subtrees from the update-surviving memo store (docs/PERF.md).

Two workloads, both editing a string only the page's *inline* body
reads, so every helper function's digest survives the edit:

* ``gallery`` — the function-drawn box gallery (rows×cols cells, each a
  memoizable call);
* ``listings`` — the paper's mortgage/house-hunting app, whose list page
  draws each listing through ``display_listentry``.

Each measurement alternates between two precompiled program variants so
every step is a real code update, never a no-op.  Results append to
``BENCH_incremental.json`` (one JSON object per line).

Runs three ways::

    PYTHONPATH=src python -m pytest benchmarks/bench_incremental.py  # suite
    PYTHONPATH=src python benchmarks/bench_incremental.py --quick    # CI
    PYTHONPATH=src python benchmarks/bench_incremental.py --check    # CI gate

``--check`` is the regression gate: it compares the measured
warm/cold p50 ratio against the most recent committed ``baseline``
record per workload and fails (exit 1) if the ratio regressed by more
than 20%.  Comparing the *ratio* — not absolute seconds — keeps the
gate machine-independent: CI runners and laptops disagree wildly on
milliseconds but agree on how much of the render the memo elides.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from conftest import append_bench_record, latest_baselines  # noqa: E402

from repro.obs.histo import percentile
from repro.apps.gallery import function_gallery_source
from repro.apps.mortgage import compile_mortgage
from repro.stdlib.web import make_services
from repro.surface.compile import compile_source
from repro.system.transitions import System

BENCH_PATH = Path(__file__).parent.parent / "BENCH_incremental.json"

#: --check fails when warm/cold p50 regresses past this factor.
REGRESSION_TOLERANCE = 1.20

GALLERY_ROWS, GALLERY_COLS = 30, 6


# The one shared nearest-rank implementation (repro.obs.histo) —
# identical math to the former local copy, so committed baselines in
# the BENCH_*.json trajectories stay comparable.
_percentile = percentile


def _gallery_variants():
    compiled = [
        compile_source(
            function_gallery_source(
                rows=GALLERY_ROWS, cols=GALLERY_COLS, title=title
            )
        )
        for title in ("gallery", "edited")
    ]
    return [(c.code, c.natives, None) for c in compiled]


def _listings_variants():
    from repro.apps.mortgage import BASE_SOURCE

    base = compile_mortgage()
    edited = compile_mortgage(BASE_SOURCE.replace('"House"', '"Homes"'))
    return [
        (base.code, base.natives, make_services()),
        (edited.code, edited.natives, make_services()),
    ]


def _measure(variants, memo, rounds):
    """p50/p95 wall seconds of edit→render, alternating the variants."""
    code, natives, services = variants[0]
    system = System(
        code, natives=natives, services=services, memo_render=memo
    )
    system.run_to_stable()
    timings = []
    for step in range(rounds):
        next_code, next_natives, _services = variants[(step + 1) % 2]
        started = time.perf_counter()
        system.update(next_code, natives=next_natives)
        system.run_to_stable()
        timings.append(time.perf_counter() - started)
    timings.sort()
    return {
        "p50_seconds": _percentile(timings, 0.50),
        "p95_seconds": _percentile(timings, 0.95),
        "reuse": dict(system.last_update_render_stats),
    }


def run_workload(name, rounds=40):
    """Cold-vs-warm comparison for one workload; returns the record body."""
    if name == "gallery":
        variants = _gallery_variants()
    elif name == "listings":
        variants = _listings_variants()
    else:
        raise ValueError("unknown workload {!r}".format(name))
    cold = _measure(variants, memo=False, rounds=rounds)
    warm = _measure(variants, memo=True, rounds=rounds)
    ratio = (
        warm["p50_seconds"] / cold["p50_seconds"]
        if cold["p50_seconds"] else 1.0
    )
    return {
        "workload": name,
        "rounds": rounds,
        "cold_p50_seconds": cold["p50_seconds"],
        "cold_p95_seconds": cold["p95_seconds"],
        "warm_p50_seconds": warm["p50_seconds"],
        "warm_p95_seconds": warm["p95_seconds"],
        "warm_cold_ratio": ratio,
        "warm_update_hits": warm["reuse"].get("hits", 0),
        "warm_update_misses": warm["reuse"].get("misses", 0),
        "warm_replayed_boxes": warm["reuse"].get("replayed_boxes", 0),
    }


def record(result, label):
    """Append one JSONL measurement to BENCH_incremental.json."""
    append_bench_record(
        BENCH_PATH, "incremental_edit_render", label, **result
    )


def load_baselines(path=BENCH_PATH):
    """workload → most recent committed ``baseline`` record."""
    return latest_baselines(path, "incremental_edit_render")


def check_regression(results, baselines):
    """(ok, messages): ratio-vs-baseline gate for every workload."""
    ok = True
    messages = []
    for result in results:
        baseline = baselines.get(result["workload"])
        if baseline is None:
            messages.append(
                "{}: no committed baseline — skipping".format(
                    result["workload"]
                )
            )
            continue
        current = result["warm_cold_ratio"]
        committed = baseline["warm_cold_ratio"]
        limit = committed * REGRESSION_TOLERANCE
        verdict = "ok" if current <= limit else "REGRESSED"
        if current > limit:
            ok = False
        messages.append(
            "{}: warm/cold p50 ratio {:.3f} vs baseline {:.3f} "
            "(limit {:.3f}) — {}".format(
                result["workload"], current, committed, limit, verdict
            )
        )
    return ok, messages


# -- suite entry points ------------------------------------------------------


def test_gallery_warm_edit_is_30_percent_faster():
    result = run_workload("gallery", rounds=14)
    # The acceptance bar: an edit that leaves every helper digest
    # unchanged must make the warm edit→render at least 30% faster.
    assert result["warm_cold_ratio"] <= 0.70, result
    assert result["warm_update_hits"] == GALLERY_ROWS
    assert result["warm_update_misses"] == 0
    record(result, "suite")


def test_listings_warm_edit_reuses_every_entry():
    result = run_workload("listings", rounds=10)
    assert result["warm_update_misses"] == 0
    assert result["warm_update_hits"] > 0
    assert result["warm_cold_ratio"] < 1.0, result
    record(result, "suite")


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small CI-sized run (fewer rounds)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed baseline records; "
             "exit 1 on a >20% warm/cold ratio regression",
    )
    parser.add_argument(
        "--baseline", action="store_true",
        help="record the results as the committed baseline",
    )
    args = parser.parse_args(argv)
    rounds = 12 if (args.quick or args.check) else 40

    results = [
        run_workload("gallery", rounds=rounds),
        run_workload("listings", rounds=rounds),
    ]
    for result in results:
        print(
            "{workload}: cold p50 {cold:.2f}ms → warm p50 {warm:.2f}ms "
            "(ratio {ratio:.3f}, {hits} hits / {misses} misses, "
            "{boxes} boxes replayed)".format(
                workload=result["workload"],
                cold=result["cold_p50_seconds"] * 1e3,
                warm=result["warm_p50_seconds"] * 1e3,
                ratio=result["warm_cold_ratio"],
                hits=result["warm_update_hits"],
                misses=result["warm_update_misses"],
                boxes=result["warm_replayed_boxes"],
            )
        )

    if args.check:
        ok, messages = check_regression(results, load_baselines())
        for message in messages:
            print("check:", message)
        return 0 if ok else 1

    label = (
        "baseline" if args.baseline else "quick" if args.quick else "full"
    )
    for result in results:
        record(result, label)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
