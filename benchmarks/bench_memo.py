"""E8 — render memoization (§5's self-adjusting-computation sketch).

The model's cost center is re-running the whole render body on every
model change (E1/E5).  Memoizing render *functions* elides the calls
whose inputs didn't change; we measure a list page whose rows are drawn
by a helper function, after a model change that affects one global the
rows do not read.

Expected shape: memoized re-render cost approaches the per-row splice
cost (hit rate 100% on unaffected rows), with the win growing in row
count; a change to a global the rows DO read invalidates everything and
costs one cache rebuild.
"""

import pytest

from repro.surface.compile import compile_source
from repro.system.runtime import Runtime

APP_TEMPLATE = """\
global clicks : number = 0
global theme : string = "plain"

fun row(i : number)
  boxed
    box.border := true
    post theme || " row " || i || " of {rows}"

page start()
  render
    for i = 1 to {rows} do
      row(i)
    boxed
      post "clicks " || clicks
      on tap do
        clicks := clicks + 1
    boxed
      post "retheme"
      on tap do
        theme := theme || "!"
"""


def _runtime(rows, memo_render):
    compiled = compile_source(APP_TEMPLATE.format(rows=rows))
    return Runtime(
        compiled.code, natives=compiled.natives, memo_render=memo_render
    ).start()


@pytest.mark.parametrize("rows", (16, 64), ids=lambda r: "rows={}".format(r))
@pytest.mark.parametrize(
    "memo_render", (False, True), ids=("memo=off", "memo=on")
)
def test_rerender_after_unrelated_change(benchmark, rows, memo_render):
    """Tap 'clicks': the rows' inputs are unchanged."""
    runtime = _runtime(rows, memo_render)
    state = {"clicks": 0}

    def tap():
        runtime.tap_text("clicks {}".format(state["clicks"]))
        state["clicks"] += 1

    benchmark(tap)
    if memo_render:
        stats = runtime.system.render_memo.stats()
        assert stats["hits"] > stats["misses"]


@pytest.mark.parametrize(
    "memo_render", (False, True), ids=("memo=off", "memo=on")
)
def test_rerender_after_invalidating_change(benchmark, memo_render):
    """Tap 'retheme': every row reads ``theme`` — full invalidation."""
    runtime = _runtime(32, memo_render)

    def tap():
        runtime.tap_text("retheme")

    benchmark(tap)
