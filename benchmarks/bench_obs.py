"""E10 — the price of watching: instrumentation overhead.

Observability is only "always on" if it is nearly free.  This bench
measures the overhead of a live :class:`~repro.obs.trace.Tracer`
(spans + counters + latency histograms) against the
:class:`~repro.obs.trace.NullTracer` default on the paper's hot path —
the tap→event→render live loop — plus the microcosts of the histogram
primitive itself:

* ``tap_loop`` — the counter app driven through ``rounds`` taps, once
  untraced and once with a full ``Tracer()`` attached.  The headline
  number is the instrumented/null p50 **ratio**: machine-independent
  (both runs share the machine and the run), which is what makes it
  gateable in CI.
* per-call ``Histogram.observe`` / ``NullHistogram.observe`` costs —
  recorded for the trajectory, not gated (nanosecond ratios on a noisy
  runner are not a stable signal).

Appends to ``BENCH_obs.json`` (the shared obs trajectory file).

Runs three ways::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs.py  # suite
    PYTHONPATH=src python benchmarks/bench_obs.py --quick    # CI
    PYTHONPATH=src python benchmarks/bench_obs.py --check    # CI gate

``--check`` fails (exit 1) when the instrumented/null ratio exceeds the
absolute ceiling, or regresses more than 25% past the most recent
committed ``baseline`` record.  The gate takes the best of a few
attempts so one scheduling hiccup on a loaded runner cannot fail CI
while a real regression still fails every attempt.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from conftest import (  # noqa: E402
    OBS_PATH, append_bench_record, latest_baselines,
)

from repro.api import Tracer
from repro.obs.histo import Histogram, NullHistogram, percentile
from repro.surface.compile import compile_source
from repro.system.runtime import Runtime

BENCH_PATH = OBS_PATH

#: The absolute bar: full instrumentation must never double the live
#: loop.  (In practice it costs a few percent; 2.0 is the "something is
#: badly wrong" line, the baseline comparison catches creep below it.)
OVERHEAD_CEILING = 2.0

#: --check also fails when the ratio regresses past baseline * this.
REGRESSION_TOLERANCE = 1.25

COUNTER = """\
global count : number = 0
page start()
  render
    boxed
      post "count " || count
      on tap do
        count := count + 1
"""


def _tap_loop(tracer, rounds, warmup=5):
    """p50/p95 wall seconds of one tap→event→render round trip."""
    compiled = compile_source(COUNTER)
    runtime = Runtime(
        compiled.code, natives=compiled.natives, tracer=tracer
    ).start()
    taps = 0
    for _ in range(warmup):
        runtime.tap_text("count {}".format(taps))
        taps += 1
    timings = []
    for _ in range(rounds):
        started = time.perf_counter()
        runtime.tap_text("count {}".format(taps))
        timings.append(time.perf_counter() - started)
        taps += 1
    timings.sort()
    return {
        "p50_seconds": percentile(timings, 0.50),
        "p95_seconds": percentile(timings, 0.95),
    }


def _observe_cost(histogram, observations=20000):
    """Mean seconds per ``observe`` call on a deterministic sample mix."""
    samples = [((n * 37) % 997 + 1) * 1e-5 for n in range(observations)]
    started = time.perf_counter()
    for value in samples:
        histogram.observe(value)
    return (time.perf_counter() - started) / observations


def run_workload(rounds=300):
    """One instrumented-vs-null comparison; returns the record body."""
    null = _tap_loop(tracer=None, rounds=rounds)
    tracer = Tracer()
    instrumented = _tap_loop(tracer=tracer, rounds=rounds)
    ratio = (
        instrumented["p50_seconds"] / null["p50_seconds"]
        if null["p50_seconds"] else 1.0
    )
    return {
        "workload": "tap_loop",
        "rounds": rounds,
        "null_p50_seconds": null["p50_seconds"],
        "null_p95_seconds": null["p95_seconds"],
        "instrumented_p50_seconds": instrumented["p50_seconds"],
        "instrumented_p95_seconds": instrumented["p95_seconds"],
        "overhead_ratio": ratio,
        "spans_recorded": len(tracer.spans()),
        "histogram_observe_seconds": _observe_cost(Histogram()),
        "null_observe_seconds": _observe_cost(NullHistogram()),
    }


def record(result, label):
    """Append one JSONL measurement to BENCH_obs.json."""
    append_bench_record(BENCH_PATH, "obs_overhead", label, **result)


def load_baselines(path=BENCH_PATH):
    """workload → most recent committed ``baseline`` record."""
    return latest_baselines(path, "obs_overhead")


def run_gate(label, rounds, attempts=3):
    """Best-of-``attempts`` runs (every run is recorded)."""
    best = None
    for _ in range(attempts):
        result = run_workload(rounds=rounds)
        record(result, label)
        if best is None or result["overhead_ratio"] < best["overhead_ratio"]:
            best = result
        if best["overhead_ratio"] <= OVERHEAD_CEILING:
            break
    return best


def check_regression(result, baselines):
    """(ok, messages): ceiling + ratio-vs-baseline gate."""
    messages = []
    ratio = result["overhead_ratio"]
    ok = ratio <= OVERHEAD_CEILING
    messages.append(
        "tap_loop: instrumented/null p50 ratio {:.3f} "
        "(ceiling {:.1f}) — {}".format(
            ratio, OVERHEAD_CEILING, "ok" if ok else "REGRESSED"
        )
    )
    baseline = baselines.get("tap_loop")
    if baseline is None:
        messages.append("tap_loop: no committed baseline — ceiling only")
    else:
        limit = baseline["overhead_ratio"] * REGRESSION_TOLERANCE
        verdict = "ok" if ratio <= limit else "REGRESSED"
        if ratio > limit:
            ok = False
        messages.append(
            "tap_loop: ratio {:.3f} vs baseline {:.3f} "
            "(limit {:.3f}) — {}".format(
                ratio, baseline["overhead_ratio"], limit, verdict
            )
        )
    return ok, messages


def describe(result):
    return (
        "tap_loop: null p50 {:.3f}ms → instrumented p50 {:.3f}ms "
        "(ratio {:.3f}, {} spans); observe {:.0f}ns vs null {:.0f}ns".format(
            result["null_p50_seconds"] * 1e3,
            result["instrumented_p50_seconds"] * 1e3,
            result["overhead_ratio"],
            result["spans_recorded"],
            result["histogram_observe_seconds"] * 1e9,
            result["null_observe_seconds"] * 1e9,
        )
    )


# -- suite entry points ------------------------------------------------------


def test_instrumentation_never_doubles_the_live_loop():
    result = run_gate("suite", rounds=120)
    assert result["overhead_ratio"] <= OVERHEAD_CEILING, result
    # The instrumented run must actually have instrumented something.
    assert result["spans_recorded"] > 0


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small CI-sized run (fewer taps)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="CI gate: fail if instrumentation overhead exceeds the "
             "{:.1f}x ceiling or regresses >25%% past the committed "
             "baseline".format(OVERHEAD_CEILING),
    )
    parser.add_argument(
        "--baseline", action="store_true",
        help="record this run as the committed baseline",
    )
    args = parser.parse_args(argv)
    rounds = 120 if (args.quick or args.check) else 300

    if args.check:
        result = run_gate("quick", rounds=rounds)
        print(describe(result))
        ok, messages = check_regression(result, load_baselines())
        for message in messages:
            print("check:", message)
        return 0 if ok else 1

    result = run_workload(rounds=rounds)
    print(describe(result))
    label = (
        "baseline" if args.baseline else "quick" if args.quick else "full"
    )
    record(result, label)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
