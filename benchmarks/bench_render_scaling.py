"""E1 — render cost vs. box count (Section 5).

    "Recreating the entire box tree on a redraw can become slow if there
    are many boxes on the screen."

The gallery app renders ``rows × cols`` cells; we sweep the row count and
measure one full RENDER transition (render-body execution → box tree).
Expected shape: time grows roughly linearly in the number of boxes.
"""

import pytest

from repro.apps.gallery import compile_gallery
from repro.system.runtime import Runtime

ROW_COUNTS = (8, 32, 128)
COLS = 4


def _started_runtime(rows):
    compiled = compile_gallery(rows=rows, cols=COLS)
    return Runtime(compiled.code, natives=compiled.natives).start()


@pytest.mark.parametrize("rows", ROW_COUNTS, ids=lambda r: "rows={}".format(r))
def test_full_rerender(benchmark, rows):
    """One RENDER transition (the display is invalidated first)."""
    runtime = _started_runtime(rows)
    system = runtime.system

    def rerender():
        system.state.invalidate_display()
        system.render()

    benchmark(rerender)
    boxes = system.display.count_boxes()
    benchmark.extra_info["boxes"] = boxes
    assert boxes >= rows * COLS


@pytest.mark.parametrize("rows", ROW_COUNTS, ids=lambda r: "rows={}".format(r))
def test_render_plus_layout(benchmark, rows):
    """RENDER plus the text-backend layout (the full display pipeline)."""
    from repro.render.layout import LayoutEngine

    runtime = _started_runtime(rows)
    system = runtime.system
    engine = LayoutEngine()

    def pipeline():
        system.state.invalidate_display()
        system.render()
        engine.invalidate()
        engine.layout(system.display, width=60)

    benchmark(pipeline)
