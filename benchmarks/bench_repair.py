"""E12 — live repair: budgeted search over candidate fixes.

Measures the repair searcher (:mod:`repro.repair`) on the two triggers
it serves, over a batch of seeded trials:

* ``rollback`` — a journaled counter session takes seeded traffic, then
  an UPDATE whose render divides by zero is rolled back; the search
  runs over the faulting buffer with the last-good program and the
  decl-diff localization, exactly as the host launches it;
* ``breaker`` — the running program's tap handler divides by zero and
  live taps open the circuit breaker; the search runs over the running
  source with the ``why()``-join localization.

Per workload: the **found rate** (trials where at least one candidate
validated — the machine-independent acceptance number), the p50 wall
time of the whole search, and the p50 time-to-first-valid (how long a
degraded session waits before an actionable fix exists).

Results append to ``BENCH_repair.json`` (one JSON object per line).

Runs three ways::

    PYTHONPATH=src python -m pytest benchmarks/bench_repair.py   # suite
    PYTHONPATH=src python benchmarks/bench_repair.py --quick     # CI
    PYTHONPATH=src python benchmarks/bench_repair.py --check     # CI gate

``--check`` is the regression gate and is deliberately
machine-independent: it fails (exit 1) when a workload's found rate
drops below ``MIN_FOUND_RATE`` or below the most recent committed
``baseline`` record's found rate.  Wall times are recorded for the
trajectory but never gated — runners disagree on milliseconds, they
must not disagree on whether the searcher finds repairs.
"""

from __future__ import annotations

import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from conftest import append_bench_record, latest_baselines  # noqa: E402

from repro.apps.counter import SOURCE as COUNTER
from repro.obs.histo import percentile
from repro.repair import RepairBudget, search_repairs
from repro.resilience.journal import Journal
from repro.serve.host import SessionHost

BENCH_PATH = Path(__file__).parent.parent / "BENCH_repair.json"

#: --check fails when a workload's found rate drops below this.
MIN_FOUND_RATE = 0.9

RENDER_BROKEN = COUNTER.replace(
    'post "count: " || count',
    'post "count: " || count / (count - count)',
)
TAP_BROKEN = COUNTER.replace(
    "count := count + 1",
    "count := count / (count - count)",
)

SESSION_KWARGS = {"fault_policy": "record", "supervised": True}

BUDGET = RepairBudget(max_candidates=12, window=20, parallelism=4)


def _journaled_host(directory, source):
    return SessionHost(
        default_source=source,
        session_kwargs=dict(SESSION_KWARGS),
        journal=Journal(directory),
        quarantine_after=2,
    )


def _drive_traffic(host, token, seed, taps=8):
    """Seeded tap mix: replay material for the validation window."""
    for step in range(taps):
        host.tap(token, path=[1] if (seed + step) % 3 == 0 else [0])


def _rollback_trial(directory, seed):
    host = _journaled_host(directory, COUNTER)
    token = host.create()
    _drive_traffic(host, token, seed)
    result = host.edit_source(token, RENDER_BROKEN)
    assert result.status == "rolled_back"
    return host, token, {
        "faulting_source": RENDER_BROKEN,
        "last_good_source": COUNTER,
        "suspects": ("start",),
        "trigger": "rollback",
    }


def _breaker_trial(directory, seed):
    host = _journaled_host(directory, TAP_BROKEN)
    token = host.create()
    for _ in range(2):
        host.tap(token, path=[0])  # the handler faults; breaker opens
    assert host.is_quarantined(token)
    return host, token, {
        "faulting_source": TAP_BROKEN,
        "last_good_source": None,
        "suspects": ("start",),
        "trigger": "breaker",
    }


WORKLOADS = {
    "rollback": _rollback_trial,
    "breaker": _breaker_trial,
}


def run_workload(name, trials=10):
    """``trials`` seeded end-to-end searches; the record body."""
    build = WORKLOADS[name]
    found = 0
    walls = []
    first_valids = []
    searched = 0
    for seed in range(trials):
        directory = tempfile.mkdtemp(prefix="bench_repair_")
        try:
            host, token, search_kwargs = build(directory, seed)
            observed = {}

            def observe(metric, value):
                observed.setdefault(metric, value)

            started = time.perf_counter()
            report = search_repairs(
                host.journal, token,
                budget=BUDGET,
                observe=observe,
                **search_kwargs
            )
            walls.append(time.perf_counter() - started)
            searched += report.searched
            if report.found:
                found += 1
                first_valids.append(observed.get(
                    "repair.first_valid", report.wall_seconds
                ))
        finally:
            shutil.rmtree(directory, ignore_errors=True)
    return {
        "workload": name,
        "trials": trials,
        "found": found,
        "found_rate": found / trials,
        "candidates_searched": searched,
        "search_p50_seconds": percentile(sorted(walls), 0.50),
        "search_p95_seconds": percentile(sorted(walls), 0.95),
        "first_valid_p50_seconds": (
            percentile(sorted(first_valids), 0.50) if first_valids else None
        ),
    }


def record(result, label):
    append_bench_record(BENCH_PATH, "live_repair", label, **result)


def load_baselines(path=BENCH_PATH):
    """workload → most recent committed ``baseline`` record."""
    return latest_baselines(path, "live_repair")


def check_regression(results, baselines):
    """(ok, messages): the machine-independent found-rate gate."""
    ok = True
    messages = []
    for result in results:
        name = result["workload"]
        rate = result["found_rate"]
        floor = MIN_FOUND_RATE
        baseline = baselines.get(name)
        if baseline is not None:
            floor = max(floor, baseline["found_rate"])
            context = "baseline {:.2f}".format(baseline["found_rate"])
        else:
            context = "no committed baseline"
        verdict = "ok" if rate >= floor else "REGRESSED"
        if rate < floor:
            ok = False
        messages.append(
            "{}: found rate {:.2f} vs floor {:.2f} ({}) — {}".format(
                name, rate, floor, context, verdict
            )
        )
    return ok, messages


# -- suite entry points ------------------------------------------------------


def test_rollback_search_always_finds_a_repair():
    result = run_workload("rollback", trials=3)
    assert result["found_rate"] == 1.0, result
    record(result, "suite")


def test_breaker_search_always_finds_a_repair():
    result = run_workload("breaker", trials=3)
    assert result["found_rate"] == 1.0, result
    record(result, "suite")


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small CI-sized run (fewer trials)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare found rates against the committed baselines; "
             "exit 1 below {:.0%} or below the baseline rate".format(
                 MIN_FOUND_RATE
             ),
    )
    parser.add_argument(
        "--baseline", action="store_true",
        help="record the results as the committed baseline",
    )
    args = parser.parse_args(argv)
    trials = 5 if (args.quick or args.check) else 15

    results = [run_workload(name, trials=trials) for name in WORKLOADS]
    for result in results:
        first = result["first_valid_p50_seconds"]
        print(
            "{workload}: found {found}/{trials} (rate {rate:.2f}), "
            "search p50 {p50:.1f}ms, first valid p50 {first}".format(
                workload=result["workload"],
                found=result["found"],
                trials=result["trials"],
                rate=result["found_rate"],
                p50=result["search_p50_seconds"] * 1e3,
                first=(
                    "{:.1f}ms".format(first * 1e3)
                    if first is not None else "n/a"
                ),
            )
        )

    if args.check:
        ok, messages = check_regression(results, load_baselines())
        for message in messages:
            print("check:", message)
        return 0 if ok else 1

    label = (
        "baseline" if args.baseline else "quick" if args.quick else "full"
    )
    for result in results:
        record(result, label)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
