"""E10 — checkpoint-assisted deterministic replay (repro.provenance).

Measures the *time-travel latency*: the wall time of materializing a
live session as of the end of a recorded journal, cold versus
checkpoint-assisted:

* **cold** — ``use_checkpoint=False``: replay starts from the create
  record and re-applies every journaled event, the trace-replay
  baseline of the paper's §2;
* **assisted** — ``use_checkpoint=True``: replay loads the newest image
  checkpoint at or before the target seq and re-applies only the tail,
  bounding work by ``checkpoint_every`` instead of by session age.

Two workloads over the counter app, differing only in journal length:

* ``short`` — 20 events with a checkpoint every 10 (shallow tail; the
  assisted path must at least not lose);
* ``long`` — 150 events with a checkpoint every 25 (the case
  checkpoints exist for: the tail stays ≤ 25 events while the cold
  replay grows with the whole session).

Results append to ``BENCH_replay.json`` (one JSON object per line).

Runs three ways::

    PYTHONPATH=src python -m pytest benchmarks/bench_replay.py   # suite
    PYTHONPATH=src python benchmarks/bench_replay.py --quick     # CI
    PYTHONPATH=src python benchmarks/bench_replay.py --check     # CI gate

``--check`` is the regression gate: it compares the measured
assisted/cold p50 ratio against the most recent committed ``baseline``
record per workload and fails (exit 1) if the ratio regressed by more
than 25%, or if the assisted replay stops beating the cold one on the
``long`` workload at all.  Comparing the *ratio* — not absolute
seconds — keeps the gate machine-independent: runners disagree on
milliseconds but agree on how much of the replay the checkpoint elides.
"""

from __future__ import annotations

import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from conftest import append_bench_record, latest_baselines  # noqa: E402

from repro.obs.histo import percentile
from repro.apps.counter import SOURCE
from repro.provenance import replay_to
from repro.resilience.journal import Journal
from repro.serve.host import SessionHost
from repro.stdlib.web import make_services, web_host_impls

BENCH_PATH = Path(__file__).parent.parent / "BENCH_replay.json"

#: --check fails when assisted/cold p50 regresses past this factor.
REGRESSION_TOLERANCE = 1.25

WORKLOADS = {
    # Event counts are deliberately not multiples of checkpoint_every,
    # so the assisted path always replays a real (non-empty) tail.
    # Only ``long`` is gated: on the short journal both replays finish
    # in single-digit milliseconds and the ratio is runner noise.
    "short": {"events": 23, "checkpoint_every": 10, "gate": False},
    "long": {"events": 157, "checkpoint_every": 25, "gate": True},
}

SESSION_KWARGS = {"reuse_boxes": True, "memo_render": True}


# The one shared nearest-rank implementation (repro.obs.histo) —
# identical math to the former local copy, so committed baselines in
# the BENCH_*.json trajectories stay comparable.
_percentile = percentile


def _record_journal(directory, events, checkpoint_every):
    """Drive a journaled counter session with ``events`` taps."""
    journal = Journal(directory, checkpoint_every=checkpoint_every)
    host = SessionHost(
        default_source=SOURCE,
        make_host_impls=web_host_impls,
        make_services=make_services,
        session_kwargs=dict(SESSION_KWARGS),
        journal=journal,
    )
    token = host.create()
    for step in range(events):
        # Alternate in a reset now and then so replay exercises more
        # than one handler; the counter still ends deterministic.
        host.tap(token, path=[1] if step % 17 == 16 else [0])
    return token


def _measure(directory, token, use_checkpoint, rounds):
    """p50/p95 wall seconds of one full ``replay_to`` materialization."""
    timings = []
    events = checkpoint_seq = None
    for _ in range(rounds):
        journal = Journal(directory)
        started = time.perf_counter()
        result = replay_to(
            journal, token,
            use_checkpoint=use_checkpoint,
            make_host_impls=web_host_impls,
            make_services=make_services,
            session_kwargs=dict(SESSION_KWARGS),
        )
        timings.append(time.perf_counter() - started)
        events = result.events_replayed
        checkpoint_seq = result.checkpoint_seq
    timings.sort()
    return {
        "p50_seconds": _percentile(timings, 0.50),
        "p95_seconds": _percentile(timings, 0.95),
        "events_replayed": events,
        "checkpoint_seq": checkpoint_seq,
    }


def run_workload(name, rounds=10):
    """Cold-vs-assisted comparison for one workload; the record body."""
    config = WORKLOADS[name]
    directory = tempfile.mkdtemp(prefix="bench_replay_")
    try:
        token = _record_journal(
            directory, config["events"], config["checkpoint_every"]
        )
        cold = _measure(directory, token, use_checkpoint=False, rounds=rounds)
        assisted = _measure(
            directory, token, use_checkpoint=True, rounds=rounds
        )
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    ratio = (
        assisted["p50_seconds"] / cold["p50_seconds"]
        if cold["p50_seconds"] else 1.0
    )
    return {
        "workload": name,
        "rounds": rounds,
        "journal_events": config["events"],
        "checkpoint_every": config["checkpoint_every"],
        "cold_p50_seconds": cold["p50_seconds"],
        "cold_p95_seconds": cold["p95_seconds"],
        "cold_events_replayed": cold["events_replayed"],
        "assisted_p50_seconds": assisted["p50_seconds"],
        "assisted_p95_seconds": assisted["p95_seconds"],
        "assisted_events_replayed": assisted["events_replayed"],
        "checkpoint_seq": assisted["checkpoint_seq"],
        "assisted_cold_ratio": ratio,
    }


def record(result, label):
    """Append one JSONL measurement to BENCH_replay.json."""
    append_bench_record(BENCH_PATH, "journal_replay", label, **result)


def load_baselines(path=BENCH_PATH):
    """workload → most recent committed ``baseline`` record."""
    return latest_baselines(path, "journal_replay")


def check_regression(results, baselines):
    """(ok, messages): ratio-vs-baseline gate for every workload."""
    ok = True
    messages = []
    for result in results:
        name = result["workload"]
        if not WORKLOADS[name].get("gate"):
            messages.append(
                "{}: informational only (ratio {:.3f})".format(
                    name, result["assisted_cold_ratio"]
                )
            )
            continue
        if result["assisted_cold_ratio"] >= 1.0:
            ok = False
            messages.append(
                "{}: assisted replay no longer beats cold "
                "(ratio {:.3f}) — REGRESSED".format(
                    name, result["assisted_cold_ratio"]
                )
            )
        baseline = baselines.get(name)
        if baseline is None:
            messages.append(
                "{}: no committed baseline — skipping".format(name)
            )
            continue
        current = result["assisted_cold_ratio"]
        committed = baseline["assisted_cold_ratio"]
        limit = committed * REGRESSION_TOLERANCE
        verdict = "ok" if current <= limit else "REGRESSED"
        if current > limit:
            ok = False
        messages.append(
            "{}: assisted/cold p50 ratio {:.3f} vs baseline {:.3f} "
            "(limit {:.3f}) — {}".format(
                name, current, committed, limit, verdict
            )
        )
    return ok, messages


# -- suite entry points ------------------------------------------------------


def test_long_journal_checkpoint_beats_cold_replay():
    result = run_workload("long", rounds=4)
    # The acceptance bar: on a long journal the checkpoint-assisted
    # replay must replay a bounded, non-empty tail and win on wall time.
    assert 0 < result["assisted_events_replayed"] <= result["checkpoint_every"]
    assert result["cold_events_replayed"] == result["journal_events"]
    assert result["assisted_cold_ratio"] < 1.0, result
    record(result, "suite")


def test_short_journal_assisted_replays_a_tail():
    result = run_workload("short", rounds=3)
    assert result["assisted_events_replayed"] <= result["checkpoint_every"]
    record(result, "suite")


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small CI-sized run (fewer rounds)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed baseline records; exit 1 "
             "on a >25% assisted/cold ratio regression or if assisted "
             "replay stops beating cold on the long workload",
    )
    parser.add_argument(
        "--baseline", action="store_true",
        help="record the results as the committed baseline",
    )
    args = parser.parse_args(argv)
    rounds = 5 if (args.quick or args.check) else 15

    results = [
        run_workload("short", rounds=rounds),
        run_workload("long", rounds=rounds),
    ]
    for result in results:
        print(
            "{workload}: cold p50 {cold:.2f}ms ({cold_events} events) → "
            "assisted p50 {assisted:.2f}ms ({assisted_events} events, "
            "checkpoint seq {seq}) — ratio {ratio:.3f}".format(
                workload=result["workload"],
                cold=result["cold_p50_seconds"] * 1e3,
                cold_events=result["cold_events_replayed"],
                assisted=result["assisted_p50_seconds"] * 1e3,
                assisted_events=result["assisted_events_replayed"],
                seq=result["checkpoint_seq"],
                ratio=result["assisted_cold_ratio"],
            )
        )

    if args.check:
        ok, messages = check_regression(results, load_baselines())
        for message in messages:
            print("check:", message)
        return 0 if ok else 1

    label = (
        "baseline" if args.baseline else "quick" if args.quick else "full"
    )
    for result in results:
        record(result, label)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
