"""E8 — the price of durability (repro.resilience).

The same mixed-traffic soak as E7 runs twice — once on a plain host,
once with the write-ahead journal attached — and the headline number is
the journaling overhead in requests/second (the acceptance bar:
≤ 15 %).  A third phase measures recovery: the journaled host is dropped
on the floor, a fresh host recovers from the journal, and the per-boot
wall time plus the byte-identity of every recovered display are
recorded.

Runs two ways::

    PYTHONPATH=src python -m pytest benchmarks/bench_resilience.py  # suite
    PYTHONPATH=src python benchmarks/bench_resilience.py --quick    # CI

Each measurement appends one JSON line to ``BENCH_resilience.json``.
"""

from __future__ import annotations

import json
import platform
import random
import shutil
import tempfile
import threading
import time
from pathlib import Path

from repro.obs.histo import percentile
from repro.apps.counter import SOURCE as COUNTER
from repro.api import Tracer
from repro.api import Journal
from repro.resilience import recover
from repro.serve.host import SessionHost

RESILIENCE_PATH = Path(__file__).parent.parent / "BENCH_resilience.json"

SESSION_KWARGS = {
    "reuse_boxes": True,
    "memo_render": True,
    "fault_policy": "record",
}


# The one shared nearest-rank implementation (repro.obs.histo) —
# identical math to the former local copy, so committed baselines in
# the BENCH_*.json trajectories stay comparable.
_percentile = percentile


def _drive(host, tokens, rng, ops, latencies):
    """One worker: journalable mixed traffic against random sessions.

    Taps hit the *increment* box by path, so every session's count — and
    therefore its HTML — diverges; byte-identical recovery then proves
    real state survived, not just a freshly booted page.
    """
    for _ in range(ops):
        token = rng.choice(tokens)
        roll = rng.random()
        started = time.perf_counter()
        if roll < 0.55:
            host.tap(token, path=[0])
        elif roll < 0.70:
            host.tap(token, text="reset")
        elif roll < 0.85:
            host.render(token)
        else:
            host.batch(token, [("tap", (0,))] * 3)
        latencies.append(time.perf_counter() - started)


def _soak(journal, sessions, pool, workers, ops_per_worker, seed):
    host = SessionHost(
        pool_size=pool, default_source=COUNTER, tracer=Tracer(),
        session_kwargs=dict(SESSION_KWARGS), journal=journal,
    )
    tokens = [host.create(title="soak") for _ in range(sessions)]
    shards = [[] for _ in range(workers)]
    threads = [
        threading.Thread(
            target=_drive,
            args=(host, tokens, random.Random(seed + n),
                  ops_per_worker, shards[n]),
        )
        for n in range(workers)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    latencies = sorted(lat for shard in shards for lat in shard)
    return host, tokens, {
        "requests": len(latencies),
        "elapsed_seconds": elapsed,
        "requests_per_second": len(latencies) / elapsed if elapsed else 0.0,
        "p50_seconds": _percentile(latencies, 0.50),
        "p95_seconds": _percentile(latencies, 0.95),
    }


def run_durability(sessions=40, pool=16, workers=4, ops_per_worker=100,
                   checkpoint_every=10, seed=20130616, recoveries=3):
    """Soak without and with the journal, then time recovery.

    Returns headline stats: baseline vs journaled req/s, the overhead
    fraction, recovery wall-time percentiles and whether every recovered
    display was byte-identical to the pre-crash one.
    """
    baseline_host, _, baseline = _soak(
        None, sessions, pool, workers, ops_per_worker, seed
    )

    journal_dir = tempfile.mkdtemp(prefix="bench-resilience-")
    try:
        journal = Journal(journal_dir, checkpoint_every=checkpoint_every)
        journaled_host, tokens, journaled = _soak(
            journal, sessions, pool, workers, ops_per_worker, seed
        )
        before = {
            token: journaled_host.render(token)[0] for token in tokens
        }

        # The crash: the journaled host is simply abandoned — nothing is
        # flushed or closed, exactly like a kill -9 — and a fresh host
        # recovers from the directory.
        recovery_seconds = []
        identical = True
        for _ in range(recoveries):
            rebuilt = SessionHost(
                pool_size=pool, default_source=COUNTER, tracer=Tracer(),
                session_kwargs=dict(SESSION_KWARGS),
            )
            started = time.perf_counter()
            report = recover(rebuilt, Journal(journal_dir))
            recovery_seconds.append(time.perf_counter() - started)
            rebuilt.journal = None  # stop appending; next loop recovers
            for token in tokens:
                html, _, _ = rebuilt.render(token)
                if html != before[token]:
                    identical = False
        recovery_seconds.sort()

        records = list(journal.read())
        journal_events = sum(
            1 for record in records if record["kind"] == "event"
        )
        journal_checkpoints = sum(
            1 for record in records if record["kind"] == "checkpoint"
        )
        overhead = 1.0 - (
            journaled["requests_per_second"]
            / baseline["requests_per_second"]
        ) if baseline["requests_per_second"] else 0.0
        return {
            "sessions": sessions,
            "pool_size": pool,
            "workers": workers,
            "requests": baseline["requests"],
            "baseline_rps": baseline["requests_per_second"],
            "journaled_rps": journaled["requests_per_second"],
            "journal_overhead": overhead,
            "baseline_p50_seconds": baseline["p50_seconds"],
            "journaled_p50_seconds": journaled["p50_seconds"],
            "baseline_p95_seconds": baseline["p95_seconds"],
            "journaled_p95_seconds": journaled["p95_seconds"],
            "journal_events": journal_events,
            "journal_checkpoints": journal_checkpoints,
            "recovered_sessions": report.sessions,
            "events_replayed": report.events_replayed,
            "recovery_p50_seconds": _percentile(recovery_seconds, 0.50),
            "recovery_p95_seconds": _percentile(recovery_seconds, 0.95),
            "recovered_byte_identical": identical,
        }
    finally:
        shutil.rmtree(journal_dir, ignore_errors=True)


def record(result, label):
    """Append one JSONL measurement to BENCH_resilience.json."""
    record_ = {
        "type": "bench",
        "name": "resilience_durability",
        "label": label,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
    }
    record_.update(result)
    with open(RESILIENCE_PATH, "a") as handle:
        handle.write(json.dumps(record_) + "\n")


def test_durability_overhead_and_recovery():
    result = run_durability(sessions=20, pool=16, workers=4,
                            ops_per_worker=50, recoveries=2)
    assert result["journal_events"] > 0
    assert result["recovered_sessions"] == 20
    assert result["recovered_byte_identical"]
    record(result, "suite")


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small CI-sized run (12 sessions, 2 workers)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        result = run_durability(sessions=12, pool=16, workers=2,
                                ops_per_worker=40, recoveries=2)
    else:
        result = run_durability()
    record(result, "quick" if args.quick else "full")
    print(
        "resilience: {requests} requests over {sessions} sessions — "
        "{baseline_rps:.0f} req/s plain vs {journaled_rps:.0f} req/s "
        "journaled ({journal_overhead:.1%} overhead), "
        "{journal_events} journal events, "
        "{journal_checkpoints} checkpoints; recovery of "
        "{recovered_sessions} sessions p50 "
        "{recovery_p50_ms:.1f}ms / p95 {recovery_p95_ms:.1f}ms, "
        "byte-identical: {recovered_byte_identical}".format(
            recovery_p50_ms=result["recovery_p50_seconds"] * 1e3,
            recovery_p95_ms=result["recovery_p95_seconds"] * 1e3,
            **result
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
