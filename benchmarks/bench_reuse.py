"""E3 — the box-tree reuse optimization (Section 5, implemented).

Full rebuild re-lays-out every box; the reuse configuration shares
unchanged subtree objects with the previous display, so the layout
engine's identity cache skips them.  We measure the *redisplay* pipeline
(render transition + layout) after a one-cell model change, with the
optimization off and on, at two tree sizes — plus the diff pass itself.

Expected shape: reuse wins when a small fraction of the tree changes and
the saving grows with tree size; the diff overhead is linear and small.
"""

import pytest

from repro.apps.gallery import compile_gallery
from repro.boxes.diff import DiffStats, reuse
from repro.render.layout import LayoutEngine
from repro.system.runtime import Runtime

SIZES = ((16, 4), (64, 4))


def _runtime(rows, cols, reuse_boxes):
    compiled = compile_gallery(rows=rows, cols=cols)
    return Runtime(
        compiled.code, natives=compiled.natives, reuse_boxes=reuse_boxes
    ).start()


def _one_change_displays(rows, cols, reuse_boxes):
    """Two consecutive displays differing by one cell's highlight."""
    runtime = _runtime(rows, cols, reuse_boxes)
    before = runtime.system.display
    runtime.tap_text("[1.1]")
    after = runtime.system.display
    return before, after


@pytest.mark.parametrize(
    "rows,cols", SIZES, ids=lambda v: str(v)
)
def test_redisplay_full_rebuild(benchmark, rows, cols):
    """Layout from scratch after a one-cell change (no sharing)."""
    _before, after = _one_change_displays(rows, cols, reuse_boxes=False)
    engine = LayoutEngine()

    def relayout():
        engine.invalidate()  # retained toolkits without reuse re-measure all
        engine.layout(after, width=60)

    benchmark(relayout)
    assert engine.cache_misses > 0


@pytest.mark.parametrize(
    "rows,cols", SIZES, ids=lambda v: str(v)
)
def test_redisplay_with_reuse(benchmark, rows, cols):
    """Layout after reuse(): unchanged subtrees hit the identity cache."""
    before, after = _one_change_displays(rows, cols, reuse_boxes=True)
    engine = LayoutEngine()
    engine.layout(before, width=60)  # warm the cache on the old display

    def relayout():
        engine.layout(after, width=60)

    benchmark(relayout)
    assert engine.cache_hits > 0


@pytest.mark.parametrize(
    "rows,cols", SIZES, ids=lambda v: str(v)
)
def test_interaction_with_reuse_end_to_end(benchmark, rows, cols):
    """The full tap→render→diff→layout pipeline, reuse on."""
    runtime = _runtime(rows, cols, reuse_boxes=True)
    engine = LayoutEngine()
    engine.layout(runtime.system.display, width=60)
    cell = ["[1.1]", "[1.2]"]

    def one_change():
        runtime.tap_text(cell[0])
        cell.reverse()
        engine.layout(runtime.system.display, width=60)

    benchmark(one_change)


@pytest.mark.parametrize("rows", (16, 64), ids=lambda r: "rows={}".format(r))
def test_diff_pass_cost(benchmark, rows):
    """The overhead side: one reuse() pass over two almost-equal trees."""
    runtime = _runtime(rows, 4, reuse_boxes=False)
    old = runtime.system.display
    runtime.tap_text("[1.1]")
    new = runtime.system.display

    stats_holder = {}

    def diff():
        stats = DiffStats()
        merged = reuse(old, new, stats)
        stats_holder["stats"] = stats
        return merged

    benchmark(diff)
    stats = stats_holder["stats"]
    # Most of the tree is unchanged: the diff must recognize that.
    assert stats.reuse_fraction > 0.5
