"""E7 — multi-session server soak (repro.serve).

Hundreds of sessions squeeze through a small LRU pool while worker
threads drive mixed traffic — taps, coalesced batches, conditional
renders, live source edits, forced evictions.  Every request latency is
recorded; the headline numbers are throughput (requests/second) and the
p50/p95 latency split, appended to ``BENCH_serve.json`` so the server's
perf trajectory accumulates across PRs.

Expected shape: p50 is a resident-session tap (enqueue + one render);
p95 is dominated by rehydration — save/load is an UPDATE, so the tail
price *is* the edit-cycle price, and it grows with the session count to
pool size ratio, not with total traffic.

Runs two ways::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py   # suite
    PYTHONPATH=src python benchmarks/bench_serve.py --quick     # CI
"""

from __future__ import annotations

import random
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from conftest import append_bench_record  # noqa: E402

from repro.obs.histo import percentile
from repro.apps.counter import SOURCE as COUNTER
from repro.api import Tracer
from repro.serve.host import SessionHost

SERVE_PATH = Path(__file__).parent.parent / "BENCH_serve.json"

EDITED = COUNTER.replace('"count: "', '"taps: "')


# The one shared nearest-rank implementation (repro.obs.histo) —
# identical math to the former local copy, so committed baselines in
# the BENCH_*.json trajectories stay comparable.
_percentile = percentile


def _drive(host, tokens, rng, ops, latencies):
    """One worker: ``ops`` random requests against random sessions."""
    generations = {}
    for _ in range(ops):
        token = rng.choice(tokens)
        roll = rng.random()
        started = time.perf_counter()
        if roll < 0.45:
            host.tap(token, text="reset")
        elif roll < 0.65:
            _html, generation, _modified = host.render(
                token, if_generation=generations.get(token)
            )
            generations[token] = generation
        elif roll < 0.80:
            path = None
            with host.session(token) as entry:
                path = entry.session.runtime.find_text("reset")
            host.batch(token, [("tap", path)] * 3)
        elif roll < 0.90:
            host.edit_source(
                token, EDITED if rng.random() < 0.5 else COUNTER
            )
        else:
            host.evict(token)
        latencies.append(time.perf_counter() - started)


def run_soak(sessions=200, pool=16, workers=8, ops_per_worker=250,
             seed=20130616):
    """Drive mixed traffic through a pooled host; return headline stats.

    Taps land on ``"reset"`` — a label both the original and the edited
    source render, so requests succeed regardless of which code a
    session currently runs.
    """
    host = SessionHost(
        pool_size=pool, default_source=COUNTER, tracer=Tracer(),
        session_kwargs={"reuse_boxes": True, "memo_render": True},
    )
    tokens = [host.create(title="soak") for _ in range(sessions)]
    shards = [[] for _ in range(workers)]
    threads = [
        threading.Thread(
            target=_drive,
            args=(host, tokens, random.Random(seed + n),
                  ops_per_worker, shards[n]),
        )
        for n in range(workers)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    latencies = sorted(lat for shard in shards for lat in shard)
    requests = len(latencies)
    metrics = host.metrics()
    return {
        "sessions": sessions,
        "pool_size": pool,
        "workers": workers,
        "requests": requests,
        "elapsed_seconds": elapsed,
        "requests_per_second": requests / elapsed if elapsed else 0.0,
        "p50_seconds": _percentile(latencies, 0.50),
        "p95_seconds": _percentile(latencies, 0.95),
        "max_seconds": latencies[-1] if latencies else 0.0,
        "sessions_evicted": metrics.get("sessions_evicted", 0),
        "sessions_rehydrated": metrics.get("sessions_rehydrated", 0),
        "renders_coalesced": metrics.get("renders_coalesced", 0),
    }


def record(result, label):
    """Append one JSONL measurement to BENCH_serve.json."""
    append_bench_record(SERVE_PATH, "serve_soak", label, **result)


def test_serve_soak_records_throughput():
    result = run_soak(sessions=120, pool=16, workers=8,
                      ops_per_worker=120)
    # The soak must actually have squeezed sessions through the pool.
    assert result["sessions_evicted"] >= 120 - 16
    assert result["sessions_rehydrated"] > 0
    assert result["requests"] == 8 * 120
    record(result, "suite")


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small CI-sized soak (40 sessions, pool 8)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        result = run_soak(sessions=40, pool=8, workers=4,
                          ops_per_worker=40)
    else:
        result = run_soak()
    record(result, "quick" if args.quick else "full")
    print(
        "serve soak: {requests} requests over {sessions} sessions "
        "(pool {pool_size}) in {elapsed_seconds:.2f}s — "
        "{requests_per_second:.0f} req/s, "
        "p50 {p50_seconds_ms:.2f}ms, p95 {p95_seconds_ms:.2f}ms, "
        "{sessions_evicted} evictions, "
        "{sessions_rehydrated} rehydrations".format(
            p50_seconds_ms=result["p50_seconds"] * 1e3,
            p95_seconds_ms=result["p95_seconds"] * 1e3,
            **result
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
