"""E4 — the continuous-compile budget (Section 3).

    "the program is continuously being type-checked, compiled, and
    executed as the programmer edits"

Every keystroke re-runs parse → typecheck → lower → core re-check, so the
whole pipeline must fit in an interactive budget.  We measure it on the
real example apps and on synthetically grown programs.

Expected shape: cost grows roughly linearly with program size; the
mortgage app (the paper's running example) compiles in a small fraction
of a second — the live-editing experience is compile-bound, not
render-bound.
"""

import pytest

from repro.apps.counter import SOURCE as COUNTER
from repro.apps.mortgage import BASE_SOURCE as MORTGAGE
from repro.apps.shopping import SOURCE as SHOPPING
from repro.surface.compile import compile_source
from repro.surface.parser import parse
from repro.surface.typecheck import typecheck

APPS = {
    "counter": (COUNTER, None),
    "shopping": (SHOPPING, None),
    "mortgage": (MORTGAGE, "mortgage"),
}


def _host_impls(marker):
    if marker == "mortgage":
        from repro.apps.mortgage import host_impls

        return host_impls()
    return None


@pytest.mark.parametrize("app", sorted(APPS), ids=sorted(APPS))
def test_full_compile_pipeline(benchmark, app):
    source, marker = APPS[app]
    impls = _host_impls(marker)
    compiled = benchmark(lambda: compile_source(source, impls))
    benchmark.extra_info["source_lines"] = source.count("\n")
    assert compiled.code.page("start") is not None


@pytest.mark.parametrize("pages", (2, 8, 32), ids=lambda p: "pages={}".format(p))
def test_compile_scales_with_program_size(benchmark, pages):
    """Synthetic growth: N near-identical pages + helper functions."""
    parts = [
        "global total : number = 0",
        "page start()",
        "  render",
        "    post total",
    ]
    for index in range(pages):
        parts += [
            "fun helper{i}(x : number) : number".format(i=index),
            "  var y := x",
            "  for j = 1 to 3 do",
            "    y := y + j",
            "  return y",
            "page page{i}()".format(i=index),
            "  render",
            "    for i = 1 to 4 do",
            "      boxed",
            "        post helper{i}(i)".format(i=index),
        ]
    source = "\n".join(parts) + "\n"
    benchmark(lambda: compile_source(source))
    benchmark.extra_info["source_lines"] = source.count("\n")


def test_parse_and_check_only(benchmark):
    """The checker alone (what runs on keystrokes that don't compile)."""
    benchmark(lambda: typecheck(parse(MORTGAGE)))
