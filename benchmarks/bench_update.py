"""E6 — UPDATE transition cost (Fig. 9 + Fig. 12).

An update re-checks the incoming program (``C' ⊢ C'``) and fixes up the
store and page stack by re-typing every entry.  We sweep the store size
and the stack depth to confirm the fix-up is linear, and measure the
end-to-end update+re-render on the mortgage app — the latency a
programmer feels per accepted keystroke.

Expected shape: fix-up cost linear in |S| + |P|; whole-update cost
dominated by ``C' ⊢ C'`` for small stores.
"""

import pytest

from repro.apps.mortgage import BASE_SOURCE, apply_i2, compile_mortgage
from repro.core import ast
from repro.core.types import NUMBER
from repro.stdlib.web import make_services
from repro.surface.compile import compile_source
from repro.system.fixup import fixup_stack, fixup_store
from repro.system.runtime import Runtime
from repro.system.state import PageStack, Store


def _wide_program(globals_count):
    lines = [
        "global g{} : number = {}".format(index, index)
        for index in range(globals_count)
    ]
    lines += ["page start()", "  render", "    post g0", ""]
    return compile_source("\n".join(lines))


@pytest.mark.parametrize(
    "entries", (8, 64, 512), ids=lambda n: "store={}".format(n)
)
def test_store_fixup_scales_linearly(benchmark, obs_records, entries):
    compiled = _wide_program(entries)
    store = Store()
    for index in range(entries):
        store.assign("g{}".format(index), ast.Num(index))

    _fixed, report = benchmark(lambda: fixup_store(compiled.code, store))
    obs_records.emit_benchmark(
        "update/store_fixup", benchmark, entries=entries
    )
    assert report.clean


@pytest.mark.parametrize(
    "depth", (4, 32, 256), ids=lambda n: "stack={}".format(n)
)
def test_stack_fixup_scales_linearly(benchmark, obs_records, depth):
    compiled = compile_source(
        "page start()\n  render\n    post 1\n"
        "page detail(n : number)\n  render\n    post n\n"
    )
    stack = PageStack()
    stack.push("start", ast.UNIT_VALUE)
    for level in range(depth - 1):
        # Surface pages take argument *tuples* (Fig. 6's calling convention).
        stack.push("detail", ast.Tuple((ast.Num(level),)))

    _fixed, report = benchmark(lambda: fixup_stack(compiled.code, stack))
    obs_records.emit_benchmark("update/stack_fixup", benchmark, depth=depth)
    assert report.clean


def test_full_update_and_rerender_mortgage(benchmark, obs_records):
    """What one accepted live edit costs end to end (no compile)."""
    base = compile_mortgage()
    edited = compile_mortgage(apply_i2(BASE_SOURCE))
    runtime = Runtime(
        base.code, natives=base.natives, services=make_services()
    ).start()
    versions = [(edited.code, edited.natives), (base.code, base.natives)]

    def update():
        code, natives = versions[0]
        versions.reverse()
        runtime.update_code(code, natives=natives)

    benchmark(update)
    obs_records.emit_benchmark("update/full_update_rerender", benchmark)
