"""Shared helpers for the benchmark suite.

Every benchmark regenerates one experiment of DESIGN.md's index (E1-E6).
Absolute numbers are this machine's; EXPERIMENTS.md records the *shapes*
the paper's claims predict, and the benches assert those shapes where they
are deterministic (virtual-clock costs, operation counts) while leaving
wall-clock comparisons to the pytest-benchmark tables.

The ``obs_records`` fixture routes benchmark numbers through the same
:class:`repro.obs.JsonlSink` the runtime uses, appending one JSON line
per measurement to ``BENCH_obs.json`` next to this file — a
machine-readable perf trajectory that accumulates across PRs.

This module is also the **one** reader/appender for every
``BENCH_*.json`` trajectory file: :func:`append_bench_record` stamps
and appends a record, :func:`read_bench_records` streams the intact
lines back (skipping blanks and torn tails), and
:func:`latest_baselines` resolves the committed ``"baseline"`` records
the CI ``--check`` gates compare against.  Bench scripts import these
instead of hand-rolling JSONL (they run both as scripts and under
pytest, so they put this directory on ``sys.path`` first).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "tests"))

OBS_PATH = Path(__file__).parent.parent / "BENCH_obs.json"


def bench_path(name):
    """Repo-root path of the ``BENCH_<name>.json`` trajectory file."""
    return Path(__file__).parent.parent / "BENCH_{}.json".format(name)


def append_bench_record(path, name, label, **fields):
    """Append one stamped JSONL bench record; returns the record.

    Every record carries the same envelope — ``type``/``name``/
    ``label``/``recorded_at``/``python`` — so trajectory files stay
    uniformly queryable across benches and PRs.  ``label`` is the
    record's provenance: ``"baseline"`` records gate CI, ``"suite"`` /
    ``"quick"`` / ``"full"`` records only accumulate history.
    """
    record = {
        "type": "bench",
        "name": name,
        "label": label,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
    }
    record.update(fields)
    with open(path, "a") as handle:
        handle.write(json.dumps(record) + "\n")
    return record


def read_bench_records(path, name=None, label=None):
    """Every intact record in ``path``, optionally filtered.

    Blank lines, torn lines and non-object lines are skipped, not
    fatal — trajectory files are append-only across many runs and a
    single bad line must not take down a CI gate.
    """
    records = []
    path = Path(path)
    if not path.exists():
        return records
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if not isinstance(entry, dict):
                continue
            if name is not None and entry.get("name") != name:
                continue
            if label is not None and entry.get("label") != label:
                continue
            records.append(entry)
    return records


def latest_baselines(path, name, key="workload"):
    """``record[key]`` → most recent committed ``"baseline"`` record."""
    baselines = {}
    for entry in read_bench_records(path, name=name, label="baseline"):
        if key in entry:
            baselines[entry[key]] = entry
    return baselines


class _BenchRecorder:
    """Session-wide JSONL emitter for benchmark results (appends)."""

    def __init__(self, path):
        from repro.obs import JsonlSink

        self._handle = open(path, "a")
        self._sink = JsonlSink(self._handle)
        self._stamp = time.strftime("%Y-%m-%dT%H:%M:%S")

    def emit(self, name, **fields):
        self._sink.write_record(
            name,
            recorded_at=self._stamp,
            python=platform.python_version(),
            **fields
        )

    def emit_benchmark(self, name, benchmark, **fields):
        """Emit a pytest-benchmark result's headline stats."""
        metadata = getattr(benchmark, "stats", None)
        stats = getattr(metadata, "stats", None)
        if stats is None:  # --benchmark-disable runs have no stats
            self.emit(name, **fields)
            return
        self.emit(
            name,
            mean_seconds=stats.mean,
            min_seconds=stats.min,
            stddev_seconds=stats.stddev,
            rounds=stats.rounds,
            **fields
        )

    def close(self):
        self._sink.close()
        self._handle.close()


@pytest.fixture(scope="session")
def obs_records():
    recorder = _BenchRecorder(OBS_PATH)
    yield recorder
    recorder.close()
