"""Shared helpers for the benchmark suite.

Every benchmark regenerates one experiment of DESIGN.md's index (E1-E6).
Absolute numbers are this machine's; EXPERIMENTS.md records the *shapes*
the paper's claims predict, and the benches assert those shapes where they
are deterministic (virtual-clock costs, operation counts) while leaving
wall-clock comparisons to the pytest-benchmark tables.

The ``obs_records`` fixture routes benchmark numbers through the same
:class:`repro.obs.JsonlSink` the runtime uses, appending one JSON line
per measurement to ``BENCH_obs.json`` next to this file — a
machine-readable perf trajectory that accumulates across PRs.
"""

from __future__ import annotations

import platform
import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "tests"))

OBS_PATH = Path(__file__).parent.parent / "BENCH_obs.json"


class _BenchRecorder:
    """Session-wide JSONL emitter for benchmark results (appends)."""

    def __init__(self, path):
        from repro.obs import JsonlSink

        self._handle = open(path, "a")
        self._sink = JsonlSink(self._handle)
        self._stamp = time.strftime("%Y-%m-%dT%H:%M:%S")

    def emit(self, name, **fields):
        self._sink.write_record(
            name,
            recorded_at=self._stamp,
            python=platform.python_version(),
            **fields
        )

    def emit_benchmark(self, name, benchmark, **fields):
        """Emit a pytest-benchmark result's headline stats."""
        metadata = getattr(benchmark, "stats", None)
        stats = getattr(metadata, "stats", None)
        if stats is None:  # --benchmark-disable runs have no stats
            self.emit(name, **fields)
            return
        self.emit(
            name,
            mean_seconds=stats.mean,
            min_seconds=stats.min,
            stddev_seconds=stats.stddev,
            rounds=stats.rounds,
            **fields
        )

    def close(self):
        self._sink.close()
        self._handle.close()


@pytest.fixture(scope="session")
def obs_records():
    recorder = _BenchRecorder(OBS_PATH)
    yield recorder
    recorder.close()
