"""Shared helpers for the benchmark suite.

Every benchmark regenerates one experiment of DESIGN.md's index (E1-E6).
Absolute numbers are this machine's; EXPERIMENTS.md records the *shapes*
the paper's claims predict, and the benches assert those shapes where they
are deterministic (virtual-clock costs, operation counts) while leaving
wall-clock comparisons to the pytest-benchmark tables.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "tests"))
