#!/usr/bin/env python
"""Figure 2: the live IDE — split screen, navigation, direct manipulation.

A scripted programmer works in the two-pane view: selecting a box in the
live view highlights the boxed statement in the code view (and vice
versa; a statement in a loop selects ALL its boxes), and attribute edits
made "on the display" are realized as code edits.
"""

from repro.api import LiveSession

SOURCE = """\
page start()
  render
    boxed
      post "TODAY'S SPECIALS"
    for i = 1 to 3 do
      boxed
        box.border := true
        post "special #" || i
        on tap do
          pop
"""


def heading(text):
    print()
    print("=" * 70)
    print(text)
    print("=" * 70)


def main():
    session = LiveSession(SOURCE)

    heading("The Fig. 2 split screen: live view ║ code view")
    print(session.side_by_side(width=26))

    heading("Live → code: tap 'special #2'; its boxed statement lights up")
    path = session.runtime.find_text("special #2")
    selection = session.select_box(path)
    print(
        "tapped box path {} → boxed statement #{} at {}".format(
            list(path), selection.box_id, selection.span
        )
    )
    print(
        "that statement is in a loop: {} boxes selected "
        "collectively".format(len(selection.paths))
    )
    print(session.side_by_side(width=26, selection=selection))

    heading("Code → live: put the cursor on the header's post line")
    selection = session.select_code(4)
    print(
        "line 4 → boxed statement #{} → {} box(es) in the live "
        "view".format(selection.box_id, len(selection.paths))
    )
    print(session.side_by_side(width=26, selection=selection))

    heading("Direct manipulation: set margin=2 on the header box")
    edit, result = session.manipulate(selection.paths[0], "margin", 2)
    print("the IDE {} the line: {!r}".format(
        "inserted" if edit.inserted else "rewrote", edit.new_line.strip()
    ))
    print("live update:", result.status)
    print(session.side_by_side(width=30))

    heading("Nested selection: repeated taps select enclosing boxes")
    path = session.runtime.find_text("special #1")
    for selection in session.selection_chain(path):
        print(
            "  boxed #{} ({} box(es)) at {}".format(
                selection.box_id, len(selection.paths), selection.span
            )
        )


if __name__ == "__main__":
    main()
