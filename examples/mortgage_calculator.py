#!/usr/bin/env python
"""The paper's running example, end to end (Figures 1, 3, 4, 5 + §3.1).

Reproduces the whole §2/§3 narrative:

1. the start page downloads and lists houses for sale (Fig. 1 left);
2. tapping an entry opens the detail page with the mortgage payment and
   amortization schedule (Fig. 1 right);
3. the three improvements are applied *live*, without restarting:
   I1 margins, I2 dollars-and-cents, I3 every-fifth-row highlighting.
"""

from repro.apps.mortgage import (
    BASE_SOURCE,
    apply_i1,
    apply_i2,
    apply_i3,
    host_impls,
)
from repro.api import LiveSession
from repro.stdlib.web import make_services


def heading(text):
    print()
    print("=" * 64)
    print(text)
    print("=" * 64)


def main():
    session = LiveSession(
        BASE_SOURCE, host_impls=host_impls(), services=make_services()
    )
    web = session.runtime.system.services.get("web")

    heading("Figure 1 (left): the start page after the listings download")
    print(session.screenshot(width=44))
    print("simulated downloads so far:", web.request_count)

    heading("Figure 1 (right): tap the first listing → detail page")
    listing = session.runtime.global_value("listings").items[0]
    label = "{}, {}".format(listing.items[0].value, listing.items[1].value)
    session.tap_text(label)
    shot = session.screenshot(width=46).split("\n")
    print("\n".join(shot[:14] + ["   ... ({} more rows) ...".format(
        len(shot) - 14)]))

    heading("I2 (live): print the balance in dollars and cents")
    result = session.edit_source(apply_i2(session.source))
    print("edit:", result.status, "| still on page:",
          session.runtime.page_name())
    print("\n".join(session.screenshot(width=46).split("\n")[8:12]))

    heading("I3 (live): highlight every fifth amortization row")
    result = session.edit_source(apply_i3(session.source))
    print("edit:", result.status)
    print("\n".join(session.screenshot(width=46).split("\n")[10:17]))

    heading("The user can keep using the app between edits: term := 15")
    session.edit_box(session.runtime.find_text("30"), "15")
    payment = [t for t in session.runtime.all_texts() if "payment" in t][0]
    print(payment)

    heading("I1 (live): margins on the start page header")
    session.back()
    result = session.edit_source(apply_i1(session.source))
    print("edit:", result.status)
    print("\n".join(session.screenshot(width=44).split("\n")[:5]))

    heading("The punchline")
    print("edits applied :", sum(r.applied for r in session.edit_log))
    print("downloads     :", web.request_count,
          " (the restart workflow would have paid one per edit)")
    print("virtual time  : {:.1f}s of simulated waiting".format(
        session.runtime.system.services.clock.now))


if __name__ == "__main__":
    main()
