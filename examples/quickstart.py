#!/usr/bin/env python
"""Quickstart: run an app, interact with it, and edit it LIVE.

This is the five-minute tour of the paper's idea: the program keeps
running while its code changes, and the display always shows the current
code applied to the current model state.
"""

from repro import LiveSession
from repro.apps.counter import SOURCE


def main():
    print("=" * 60)
    print("1. Start the counter app (the program is now running)")
    print("=" * 60)
    session = LiveSession(SOURCE)
    print(session.screenshot(width=24))

    print("=" * 60)
    print("2. Use it: tap the counter twice")
    print("=" * 60)
    session.tap_text("count: 0")
    session.tap_text("count: 1")
    print(session.screenshot(width=24))

    print("=" * 60)
    print("3. LIVE EDIT: change the label while the app runs")
    print("   (the count — the model state — survives the code change)")
    print("=" * 60)
    result = session.replace_text('"count: "', '"taps so far: "')
    print("edit status:", result.status)
    print(session.screenshot(width=24))

    print("=" * 60)
    print("4. A broken edit is rejected; the app stays alive")
    print("=" * 60)
    result = session.edit_source(session.source.replace(":=", "=:"))
    print("edit status:", result.status)
    print("diagnostic :", result.problems[0])
    session.tap_text("taps so far: 2")  # still works!
    print(session.screenshot(width=24))

    print("=" * 60)
    print("5. Every transition the system took (Fig. 9's rules):")
    print("=" * 60)
    print(" ".join(str(t) for t in session.runtime.trace))


if __name__ == "__main__":
    main()
