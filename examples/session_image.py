#!/usr/bin/env python
"""Persistent sessions: code + data as one image (§1's "persistent data").

Saves a running session to JSON, edits the source *while it is
suspended*, and resumes — demonstrating that loading an image is just the
UPDATE transition in disguise: the saved model state is fixed up against
the new code with the Fig. 12 rules.
"""

import json

from repro import LiveSession, load_image, save_image_text
from repro.apps.counter import SOURCE


def heading(text):
    print()
    print("=" * 60)
    print(text)
    print("=" * 60)


def main():
    heading("1. Use the counter, then save a session image")
    session = LiveSession(SOURCE)
    session.tap_text("count: 0")
    session.tap_text("count: 1")
    session.tap_text("count: 2")
    image_text = save_image_text(session)
    print(session.screenshot(width=24))
    image = json.loads(image_text)
    print("image keys  :", sorted(image))
    print("saved store :", image["store"])

    heading("2. Resume later: model and page stack are back")
    restored = load_image(image_text)
    print(restored.screenshot(width=24))

    heading("3. Edit the source WHILE SUSPENDED, then resume")
    edited = SOURCE.replace('"count: "', '"resumed taps: "')
    restored = load_image(image_text, source=edited)
    print(restored.screenshot(width=28))
    print("fix-up dropped:", restored.last_restore_report.dropped_globals
          or "nothing — the counter value survived the edit")

    heading("4. A type-changing suspended edit: Fig. 12 deletes the value")
    retyped = (
        edited.replace("global count : number = 0",
                       'global count : string = "fresh"')
        .replace("count := count + 1", 'count := "tapped"')
        .replace("count := 0", 'count := ""')
    )
    restored = load_image(image_text, source=retyped)
    print(restored.screenshot(width=28))
    print("fix-up dropped:", restored.last_restore_report.dropped_globals)


if __name__ == "__main__":
    main()
