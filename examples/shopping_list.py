#!/usr/bin/env python
"""A multi-page app with editable boxes: the shopping list.

Demonstrates the model/view discipline on a more interactive app: an
editable box appends to a list global, taps mutate quantities, and the
header total is *recomputed by render* — there is no view-update code
anywhere in the program (the paper's answer to the view-update problem).
Ends with a live edit that restyles the list while it is in use.
"""

from repro.apps.shopping import SOURCE
from repro.api import LiveSession


def heading(text):
    print()
    print("=" * 56)
    print(text)
    print("=" * 56)


def main():
    session = LiveSession(SOURCE)

    heading("Initial list")
    print(session.screenshot(width=34))

    heading("Type 'eggs' into the add box")
    session.edit_box(session.runtime.find_text("add: "), "eggs")
    print(session.screenshot(width=34))

    heading("Tap [more] on milk twice — the total recomputes itself")
    for _ in range(2):
        session.tap_text(" [more]")
    print(session.runtime.all_texts()[0])

    heading("Open the bread detail page and come back")
    session.tap_text("bread x2")
    print(session.screenshot(width=30))
    session.tap_text("back")

    heading("LIVE EDIT while shopping: shout the item names")
    result = session.replace_text(
        "post e.name || \" x\" || e.qty",
        "post upper(e.name) || \" x\" || e.qty",
    )
    print("edit:", result.status, "(entries survived the update)")
    print(session.screenshot(width=34))

    heading("Delete the first entry")
    session.tap_text(" [del]")
    print(session.runtime.all_texts()[0])


if __name__ == "__main__":
    main()
