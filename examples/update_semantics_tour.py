#!/usr/bin/env python
"""A guided tour of the UPDATE semantics (Fig. 9 + Fig. 12).

Works at the core-calculus level to show exactly what the formal model
does on a code change: what is re-executed (the current page's render
body), what survives (the store and page stack, fixed up per Fig. 12),
and what can never survive (stale closures, ill-typed entries).
"""

from repro.core import (
    App,
    Boxed,
    Code,
    GlobalDef,
    GlobalRead,
    GlobalWrite,
    Lam,
    NUMBER,
    Num,
    PageDef,
    Post,
    Prim,
    RENDER,
    STATE,
    STRING,
    SetAttr,
    Str,
    UNIT,
    UNIT_VALUE,
    fresh_name,
    pretty_code,
)
from repro.system import System


def seq(effect, *exprs):
    result = UNIT_VALUE
    for expr in reversed(exprs):
        result = App(Lam(fresh_name("_"), UNIT, result, effect), expr)
    return result


def make_code(label, global_type=NUMBER, init_value=None):
    init_value = init_value if init_value is not None else Num(0)
    bump = Lam(
        "u", UNIT,
        GlobalWrite("n", Prim("add", (GlobalRead("n"), Num(1))))
        if global_type is NUMBER
        else GlobalWrite("n", Str("reset")),
        STATE,
    )
    render = Lam(
        "a", UNIT,
        seq(
            RENDER,
            Boxed(
                seq(
                    RENDER,
                    Post(
                        Prim(
                            "concat",
                            (
                                Str(label),
                                Prim("str_of_num", (GlobalRead("n"),))
                                if global_type is NUMBER
                                else GlobalRead("n"),
                            ),
                        )
                    ),
                    SetAttr("ontap", bump),
                ),
                box_id=1,
            ),
        ),
        RENDER,
    )
    return Code(
        [
            GlobalDef("n", global_type, init_value),
            PageDef(
                "start", UNIT, Lam("a", UNIT, UNIT_VALUE, STATE), render
            ),
        ]
    )


def heading(text):
    print()
    print("=" * 66)
    print(text)
    print("=" * 66)


def show_state(system):
    state = system.state
    print("  store :", dict(
        (k, str(v)) for k, (_, v) in
        zip(state.store.domain(), state.store.items())
    ) or "ε")
    print("  stack :", [name for name, _ in state.stack.entries()] or "ε")
    print("  queue :", repr(state.queue))
    print("  D     :", "valid box tree" if state.display_is_valid() else "⊥")


def main():
    heading("The initial program C (pretty-printed core calculus)")
    code_v1 = make_code("n = ")
    print(pretty_code(code_v1))

    heading("Boot: STARTUP → PUSH(start) → RENDER;  then two taps")
    system = System(code_v1)
    system.run_to_stable()
    system.tap((0,))
    system.run_to_stable()
    system.tap((0,))
    system.run_to_stable()
    show_state(system)
    print("  trace :", " ".join(str(t) for t in system.trace))

    heading("UPDATE #1: same shapes, new label — the store survives")
    report = system.update(make_code("taps: "))
    print("  fix-up dropped:", report.dropped_globals or "nothing")
    show_state(system)
    system.run_to_stable()
    print("  re-rendered under NEW code with OLD state:")
    print("   ", [str(leaf) for _p, b in system.display.walk()
                  for leaf in b.leaves()])

    heading("UPDATE #2: 'n' becomes a string — Fig. 12's S-SKIP fires")
    report = system.update(
        make_code("msg = ", global_type=STRING, init_value=Str("hello"))
    )
    print("  fix-up dropped:", report.dropped_globals)
    system.run_to_stable()
    print("  the global reverted to its NEW initial value (EP-GLOBAL-2):")
    print("   ", [str(leaf) for _p, b in system.display.walk()
                  for leaf in b.leaves()])

    heading("No stale code: nothing outside C contains a closure")
    from repro.metatheory import no_stale_code

    print("  no_stale_code(system) =", no_stale_code(system))

    heading("An ill-typed update is refused; the program keeps running")
    from repro.core import UpdateRejected

    bad = Code([GlobalDef("n", NUMBER, Num(0))])  # no start page
    try:
        system.update(bad)
    except UpdateRejected as rejected:
        print("  rejected:", rejected.problems[0])
    system.tap((0,))
    system.run_to_stable()
    print("  still alive; display shows:",
          [str(leaf) for _p, b in system.display.walk()
           for leaf in b.leaves()])


if __name__ == "__main__":
    main()
