"""repro — a reproduction of "It's Alive! Continuous Feedback in UI
Programming" (Burckhardt et al., PLDI 2013).

The package implements the paper's whole stack:

* :mod:`repro.core` — the calculus of Fig. 6/7 (expressions, types,
  effects, programs);
* :mod:`repro.typing` — the type-and-effect system of Fig. 10/11;
* :mod:`repro.eval` — the evaluation relations of Fig. 8 (a faithful
  small-step machine and a production CEK machine);
* :mod:`repro.system` — the system model of Fig. 9 with the UPDATE
  transition and the Fig. 12 fix-up;
* :mod:`repro.boxes` / :mod:`repro.render` — box trees and deterministic
  layout/text/HTML backends;
* :mod:`repro.surface` — a TouchDevelop-like surface language compiled
  to the calculus;
* :mod:`repro.live` — the live IDE of Fig. 2 (live editing, UI-code
  navigation, direct manipulation);
* :mod:`repro.apps` — example applications, including the paper's
  mortgage calculator;
* :mod:`repro.baselines` — the conventional workflows of Section 2 for
  comparison;
* :mod:`repro.metatheory` — executable preservation/progress and random
  program generators;
* :mod:`repro.obs` — structured tracing, metrics and profiling for the
  whole stack (see ``docs/OBSERVABILITY.md``).

Quickstart::

    from repro import LiveSession
    from repro.apps.counter import SOURCE

    session = LiveSession(SOURCE)
    session.tap_text("count: 0")
    session.replace_text('"count: "', '"n = "')   # live edit!
    print(session.screenshot())
"""

from .api import (
    EditResult,
    Journal,
    LiveSession,
    Runtime,
    SessionHost,
    Tracer,
)
from .core.defs import Code, FunDef, GlobalDef, PageDef
from .core.errors import (
    ReproError,
    SyntaxProblem,
    SystemError_,
    TypeProblem,
    UpdateRejected,
)
from .obs.sinks import InMemorySink, JsonlSink, TextSink
from .persist import load_image, save_image, save_image_text
from .surface.compile import CompiledProgram, compile_source
from .system.services import Services, VirtualClock
from .system.transitions import System

__version__ = "1.0.0"

__all__ = [
    "Code",
    "CompiledProgram",
    "EditResult",
    "FunDef",
    "GlobalDef",
    "InMemorySink",
    "Journal",
    "JsonlSink",
    "LiveSession",
    "PageDef",
    "SessionHost",
    "load_image",
    "save_image",
    "save_image_text",
    "ReproError",
    "Runtime",
    "Services",
    "SyntaxProblem",
    "System",
    "SystemError_",
    "TextSink",
    "Tracer",
    "TypeProblem",
    "UpdateRejected",
    "VirtualClock",
    "__version__",
]
