"""Deprecated-import shims for the ``repro.api`` consolidation.

The five facade classes used to be re-exported eagerly from their
sub-packages (``repro.live.LiveSession``, ``repro.obs.Tracer``, …).
Those paths keep working, but through a module ``__getattr__`` that
warns: the supported spelling is ``from repro.api import ...`` (or the
defining module itself, which is not deprecated).  The shim hands back
the *original* class — not the keyword-only ``repro.api`` subclass — so
existing call sites keep their exact signatures.
"""

from __future__ import annotations

import importlib
import warnings


def deprecated_facade(package_name, mapping):
    """A module ``__getattr__`` serving ``mapping``'s names with a warning.

    ``mapping`` is ``exported_name → (defining_module, attr)``.
    """

    def __getattr__(name):
        target = mapping.get(name)
        if target is None:
            raise AttributeError(
                "module {!r} has no attribute {!r}".format(package_name, name)
            )
        module_path, attr = target
        warnings.warn(
            "importing {name} from {package} is deprecated; use "
            "'from repro.api import {name}' (or the defining module "
            "{module})".format(
                name=name, package=package_name, module=module_path
            ),
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(importlib.import_module(module_path), attr)

    return __getattr__
