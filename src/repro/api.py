"""``repro.api`` — the consolidated public surface.

One front door for the five classes an embedding application needs:

* :class:`LiveSession` — a running program plus its editable source
  (the headless IDE of Fig. 2);
* :class:`Runtime` — one program's transition system with a
  conversational driver (tap/edit/back) and fault policies;
* :class:`SessionHost` — the multi-session server: token-keyed pool,
  image-backed eviction, circuit breakers;
* :class:`Journal` — write-ahead durability for a host's sessions;
* :class:`Tracer` — structured tracing and the metric catalog;
* :class:`Histogram` / :func:`percentile` — mergeable latency
  histograms and the exact percentile helper (``repro.obs.histo``).

The cluster layer (:mod:`repro.cluster`) is re-exported by name:
:class:`ClusterSupervisor` / :class:`ClusterRouter` shard a host across
worker processes behind one HTTP front, and :class:`MemoStore` /
:class:`TieredMemoStore` are the shared render-memo caches sessions can
be pointed at via the ``memo_store`` keyword (per-process and
cross-process respectively).

The journal's observability layer (:mod:`repro.provenance`) is
re-exported by name: :class:`TimeMachine` plus the three query
functions :func:`replay_to`, :func:`divergence_report` and :func:`why`
— deterministic replay, trace replay against edited code, and
provenance queries over a recorded session.

Everything here takes **keyword-only** configuration (the one or two
genuinely positional arguments — the source text, the code, the journal
directory — stay positional), so call sites read as configuration and
adding a parameter can never silently reinterpret an existing call.

The deep paths (``repro.live.LiveSession``, ``repro.system.Runtime``,
``repro.serve.SessionHost``, ``repro.resilience.Journal``,
``repro.obs.Tracer``) still work but raise :class:`DeprecationWarning`
via package ``__getattr__`` shims; the defining modules
(``repro.live.session`` etc.) remain the implementation and are not
deprecated — this module is the *name* consolidation, not a rewrite.
"""

from __future__ import annotations

from .cluster import ClusterRouter, ClusterSupervisor, TieredMemoStore
from .eval.natives import EMPTY_NATIVES
from .incremental.store import MemoStore
from .live.session import EditResult
from .live.session import LiveSession as _LiveSession
from .obs.histo import Histogram, percentile
from .obs.trace import Tracer as _Tracer
from .provenance import (
    DivergenceReport,
    ReplayResult,
    TimeMachine,
    WhyReport,
    divergence_report,
    replay_session,
    replay_to,
    why,
)
from .repair import (
    RepairBudget,
    RepairReport,
    generate_candidates,
    search_repairs,
)
from .resilience.journal import Journal as _Journal
from .serve.host import SessionHost as _SessionHost
from .system.runtime import Runtime as _Runtime

__all__ = [
    "ClusterRouter",
    "ClusterSupervisor",
    "DivergenceReport",
    "EditResult",
    "Histogram",
    "Journal",
    "LiveSession",
    "MemoStore",
    "RepairBudget",
    "RepairReport",
    "ReplayResult",
    "Runtime",
    "SessionHost",
    "TieredMemoStore",
    "TimeMachine",
    "Tracer",
    "WhyReport",
    "divergence_report",
    "generate_candidates",
    "percentile",
    "replay_session",
    "replay_to",
    "search_repairs",
    "why",
]


class LiveSession(_LiveSession):
    """:class:`repro.live.session.LiveSession` with keyword-only config."""

    def __init__(
        self,
        source,
        *,
        host_impls=None,
        services=None,
        faithful=False,
        reuse_boxes=False,
        memo_render=False,
        tracer=None,
        fault_policy="raise",
        budget=None,
        chaos=None,
        supervised=False,
        memo_store=None,
        backend=None,
    ):
        super().__init__(
            source,
            host_impls=host_impls,
            services=services,
            faithful=faithful,
            reuse_boxes=reuse_boxes,
            memo_render=memo_render,
            tracer=tracer,
            fault_policy=fault_policy,
            budget=budget,
            chaos=chaos,
            supervised=supervised,
            memo_store=memo_store,
            backend=backend,
        )


class Runtime(_Runtime):
    """:class:`repro.system.runtime.Runtime` with keyword-only config."""

    def __init__(
        self,
        code,
        *,
        natives=EMPTY_NATIVES,
        services=None,
        faithful=False,
        reuse_boxes=False,
        memo_render=False,
        fault_policy="raise",
        tracer=None,
        budget=None,
        chaos=None,
        memo_store=None,
        backend=None,
    ):
        super().__init__(
            code,
            natives=natives,
            services=services,
            faithful=faithful,
            reuse_boxes=reuse_boxes,
            memo_render=memo_render,
            fault_policy=fault_policy,
            tracer=tracer,
            budget=budget,
            chaos=chaos,
            memo_store=memo_store,
            backend=backend,
        )


class SessionHost(_SessionHost):
    """:class:`repro.serve.host.SessionHost` with keyword-only config."""

    def __init__(
        self,
        *,
        pool_size=16,
        default_source=None,
        make_host_impls=None,
        make_services=None,
        tracer=None,
        session_kwargs=None,
        quarantine_after=3,
        journal=None,
        memo_store=None,
        repair=None,
        backend=None,
    ):
        super().__init__(
            pool_size=pool_size,
            default_source=default_source,
            make_host_impls=make_host_impls,
            make_services=make_services,
            tracer=tracer,
            session_kwargs=session_kwargs,
            quarantine_after=quarantine_after,
            journal=journal,
            memo_store=memo_store,
            repair=repair,
            backend=backend,
        )


class Journal(_Journal):
    """:class:`repro.resilience.journal.Journal` with keyword-only config."""

    def __init__(
        self, directory, *, checkpoint_every=50, tracer=None,
        fsync="none", fsync_interval=1.0,
    ):
        super().__init__(
            directory, checkpoint_every=checkpoint_every, tracer=tracer,
            fsync=fsync, fsync_interval=fsync_interval,
        )


class Tracer(_Tracer):
    """:class:`repro.obs.trace.Tracer` with keyword-only config."""

    def __init__(self, *, sinks=None, id_prefix=None):
        super().__init__(sinks=sinks, id_prefix=id_prefix)
