"""Surface-language example applications, including the paper's running
example (the mortgage calculator of Figures 1 and 3-5)."""

from . import calculator, converter, counter, gallery, mortgage, shopping

__all__ = [
    "calculator", "converter", "counter", "gallery", "mortgage", "shopping",
]
