"""A pocket calculator: a handler-dense app.

Sixteen buttons, each a tap handler mutating two string/number globals —
the opposite load profile from the mortgage app (many small handlers, a
tiny render body).  The display is, as always, recomputed from the model;
there is no "update the screen" code even though every tap changes it.
"""

from __future__ import annotations

from ..surface.compile import compile_source

SOURCE = '''\
global acc : number = 0
global entry : string = ""
global op : string = ""

fun entry_value() : number
  var v := 0
  if count(entry) > 0 then
    v := parse_number(entry)
  return v

fun apply_op() : number
  var result := entry_value()
  if op == "+" then
    result := acc + entry_value()
  if op == "-" then
    result := acc - entry_value()
  if op == "*" then
    result := acc * entry_value()
  return result

fun press_digit(d : number)
  entry := entry || to_string(d)

fun press_op(next_op : string)
  acc := apply_op()
  entry := ""
  op := next_op

fun display() : string
  var text := entry
  if count(entry) == 0 then
    text := to_string(acc)
  return text

page start()
  render
    boxed
      box.border := true
      box.width := 11
      post display()
    var row := 0
    while row < 3 do
      boxed
        box.horizontal := true
        var col := 1
        while col <= 3 do
          var d := row * 3 + col
          boxed
            box.border := true
            post to_string(d)
            on tap do
              press_digit(d)
          col := col + 1
      row := row + 1
    boxed
      box.horizontal := true
      boxed
        box.border := true
        post "0"
        on tap do
          press_digit(0)
      for sym in ["+", "-", "*"] do
        boxed
          box.border := true
          post sym
          on tap do
            press_op(sym)
      boxed
        box.border := true
        post "="
        on tap do
          acc := apply_op()
          entry := ""
          op := ""
      boxed
        box.border := true
        post "C"
        on tap do
          acc := 0
          entry := ""
          op := ""
'''


def compile_calculator(source=None):
    return compile_source(source or SOURCE)


def calculator_runtime(source=None, **runtime_kwargs):
    from ..system.runtime import Runtime

    compiled = compile_calculator(source)
    return Runtime(
        compiled.code, natives=compiled.natives, **runtime_kwargs
    ).start()
