"""A unit-converter app: the ``editable`` sugar in action.

Two editable fields (celsius, miles) with derived read-only displays —
the reactive-spreadsheet feel the paper's §1 invokes, expressed with
nothing but model globals and render recomputation.  Used by tests and
as a compact fixture for the §5 encapsulation discussion: every widget
value is a named global, and ``editable`` hides the plumbing.
"""

from __future__ import annotations

from ..surface.compile import compile_source

SOURCE = '''\
global celsius : number = 20
global miles : number = 1

fun fahrenheit() : number
  return celsius * 9 / 5 + 32

fun km() : number
  return miles * 1.609344

page start()
  render
    boxed
      post "UNIT CONVERTER"
    boxed
      box.horizontal := true
      boxed
        post "celsius: "
      boxed
        box.border := true
        editable celsius
      boxed
        post " = " || format(fahrenheit(), 1) || " F"
    boxed
      box.horizontal := true
      boxed
        post "miles: "
      boxed
        box.border := true
        editable miles
      boxed
        post " = " || format(km(), 3) || " km"
'''


def compile_converter(source=None):
    return compile_source(source or SOURCE)


def converter_runtime(source=None, **runtime_kwargs):
    from ..system.runtime import Runtime

    compiled = compile_converter(source)
    return Runtime(
        compiled.code, natives=compiled.natives, **runtime_kwargs
    ).start()
