"""The smallest complete app: a tappable counter.

Used by the quickstart example and as the minimal fixture across the
test-suite: one global (the model), one page whose render body shows it,
one tap handler that mutates it — the model/view separation in five
lines.
"""

from __future__ import annotations

from ..surface.compile import compile_source

SOURCE = '''\
global count : number = 0

page start()
  render
    boxed
      box.border := true
      box.padding := 1
      post "count: " || count
      on tap do
        count := count + 1
    boxed
      post "reset"
      on tap do
        count := 0
'''


def compile_counter(source=None):
    return compile_source(source or SOURCE)


def counter_runtime(source=None, **runtime_kwargs):
    from ..system.runtime import Runtime

    compiled = compile_counter(source)
    return Runtime(
        compiled.code, natives=compiled.natives, **runtime_kwargs
    ).start()
