"""A parametric box gallery — the render-scaling workload.

The page draws ``rows`` boxed rows of ``cols`` cells each, every cell
carrying attributes.  Benchmark E1 sweeps the row count to reproduce the
Section 5 observation that full-rebuild rendering cost grows with the
number of boxes on screen; benchmark E3 edits one cell's colour and
measures how much of the tree the reuse optimization shares.
"""

from __future__ import annotations

from ..surface.compile import compile_source

SOURCE_TEMPLATE = '''\
global rows : number = {rows}
global cols : number = {cols}
global selected : number = -1

page start()
  render
    boxed
      post "gallery " || rows || "x" || cols
    for r = 1 to rows do
      boxed
        box.horizontal := true
        for c = 1 to cols do
          boxed
            box.padding := 0
            if (r * cols + c) == selected then
              box.background := "yellow"
            post "[" || r || "." || c || "]"
            on tap do
              selected := r * cols + c
'''


def gallery_source(rows=10, cols=4):
    return SOURCE_TEMPLATE.format(rows=rows, cols=cols)


def compile_gallery(rows=10, cols=4):
    return compile_source(gallery_source(rows, cols))


def gallery_runtime(rows=10, cols=4, **runtime_kwargs):
    from ..system.runtime import Runtime

    compiled = compile_gallery(rows, cols)
    return Runtime(
        compiled.code, natives=compiled.natives, **runtime_kwargs
    ).start()
