"""A parametric box gallery — the render-scaling workload.

The page draws ``rows`` boxed rows of ``cols`` cells each, every cell
carrying attributes.  Benchmark E1 sweeps the row count to reproduce the
Section 5 observation that full-rebuild rendering cost grows with the
number of boxes on screen; benchmark E3 edits one cell's colour and
measures how much of the tree the reuse optimization shares.
"""

from __future__ import annotations

from ..surface.compile import compile_source

SOURCE_TEMPLATE = '''\
global rows : number = {rows}
global cols : number = {cols}
global selected : number = -1

page start()
  render
    boxed
      post "gallery " || rows || "x" || cols
    for r = 1 to rows do
      boxed
        box.horizontal := true
        for c = 1 to cols do
          boxed
            box.padding := 0
            if (r * cols + c) == selected then
              box.background := "yellow"
            post "[" || r || "." || c || "]"
            on tap do
              selected := r * cols + c
'''


#: The same visual gallery, drawn through *functions*: every row and
#: cell is a helper-function call, which makes them units of render
#: memoization (repro.eval.memo) and of update-survival
#: (repro.incremental).  The title lives in a global only the page's
#: inline header reads, so editing it leaves every helper's code digest
#: and read-set values unchanged — the canonical "warm edit" of
#: ``benchmarks/bench_incremental.py``.
FUNCTION_SOURCE_TEMPLATE = '''\
global title : string = "{title}"
global selected : number = -1

fun cell(n : number)
  boxed
    box.padding := 0
    if n == selected then
      box.background := "yellow"
    post "[" || n || "]"
    on tap do
      selected := n

fun row(r : number)
  boxed
    box.horizontal := true
    for c = 1 to {cols} do
      cell(r * {cols} + c)

page start()
  render
    boxed
      post title || " {rows}x{cols}"
    for r = 1 to {rows} do
      row(r)
'''


def gallery_source(rows=10, cols=4):
    return SOURCE_TEMPLATE.format(rows=rows, cols=cols)


def function_gallery_source(rows=10, cols=4, title="gallery"):
    return FUNCTION_SOURCE_TEMPLATE.format(rows=rows, cols=cols, title=title)


def compile_gallery(rows=10, cols=4):
    return compile_source(gallery_source(rows, cols))


def gallery_runtime(rows=10, cols=4, **runtime_kwargs):
    from ..system.runtime import Runtime

    compiled = compile_gallery(rows, cols)
    return Runtime(
        compiled.code, natives=compiled.natives, **runtime_kwargs
    ).start()
