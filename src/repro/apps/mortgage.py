"""The paper's running example: the mortgage calculator (Figs. 1, 3-5).

Two pages:

* ``start`` — downloads the house listings in its init body (Fig. 3) and
  renders a header plus one tappable entry per listing; tapping pushes the
  detail page with the listing as argument.
* ``detail`` — shows the price, editable term/APR boxes, the monthly
  payment and the amortization schedule (Figs. 4 and 5).

Three *live improvements* from Section 3.1 ship as source edits:

* :func:`apply_i1` — margins via direct manipulation (I1); the live IDE
  performs this one itself, this function is the equivalent manual edit;
* :func:`apply_i2` — print the balance in dollars and cents (I2), the
  paper's exact replacement code;
* :func:`apply_i3` — highlight every fifth amortization row (I3), the
  paper's exact two-line addition.

Each returns a *new source string*; feeding it to
``Runtime.update_code``/``LiveSession.edit_source`` while the program is
running is precisely the paper's demo.
"""

from __future__ import annotations

from ..core.errors import ReproError
from ..stdlib.web import make_services, web_host_impls
from ..surface.compile import compile_source

BASE_SOURCE = '''\
record listing
  address : string
  city : string
  price : number

extern fun fetch_listings() : list listing is state

global listings : list listing = nil(listing)
global term : number = 30
global apr : number = 4.5

fun display_listentry(l : listing)
  boxed
    post l.address || ", " || l.city
  boxed
    post "$" || l.price

fun monthly_payment(price : number, years : number, rate : number) : number
  var r := rate / 1200
  var n := years * 12
  var pay := 0
  if r == 0 then
    pay := price / n
  else
    pay := price * r / (1 - pow(1 + r, -n))
  return pay

fun display_amortization(price : number, years : number, rate : number)
  var balance := price
  var payment := 12 * monthly_payment(price, years, rate)
  var r := rate / 100
  for i = 1 to years do
    boxed
      box.horizontal := true
      boxed
        box.width := 9
        post "year " || i
      boxed
        balance := max(0, balance * (1 + r) - payment)
        post "balance: " || balance

page start()
  init
    listings := fetch_listings()
  render
    boxed
      box.horizontal := true
      boxed
        post "House"
      boxed
        post "Hunting"
    boxed
      for l in listings do
        boxed
          display_listentry(l)
          on tap do
            push detail(l)

page detail(l : listing)
  render
    boxed
      post l.address || ", " || l.city
    boxed
      post "price: $" || l.price
    boxed
      box.horizontal := true
      boxed
        post "term (years): "
      boxed
        box.border := true
        post term
        on edit(t) do
          term := parse_number(t)
    boxed
      box.horizontal := true
      boxed
        post "APR %: "
      boxed
        box.border := true
        post apr
        on edit(t) do
          apr := parse_number(t)
    boxed
      post "monthly payment: $" || format(monthly_payment(l.price, term, apr), 2)
    boxed
      display_amortization(l.price, term, apr)
    boxed
      post "back"
      on tap do
        pop
'''

#: The I2 target: the balance cell of the amortization row (Fig. 5).
_I2_OLD = '''\
        balance := max(0, balance * (1 + r) - payment)
        post "balance: " || balance
'''

#: The paper's replacement code from Section 3.1, verbatim modulo syntax.
_I2_NEW = '''\
        balance := max(0, balance * (1 + r) - payment)
        var dollars := floor(balance)
        var cents := round((balance - dollars) * 100) || ""
        if count(cents) < 2 then
          cents := "0" || cents
        post "balance: $" || dollars || "." || cents
'''

#: The I3 target: the top of the per-year row box.
_I3_OLD = '''\
    boxed
      box.horizontal := true
      boxed
        box.width := 9
        post "year " || i
'''

#: The paper's addition: every fifth row gets a light blue background.
_I3_NEW = '''\
    boxed
      box.horizontal := true
      if mod(i, 5) == 4 then
        box.background := "light blue"
      boxed
        box.width := 9
        post "year " || i
'''

#: The I1 target/replacement: a margin tweak on the header box (the live
#: IDE performs this via direct manipulation; this is the manual form).
_I1_OLD = '''\
    boxed
      box.horizontal := true
      boxed
        post "House"
'''
_I1_NEW = '''\
    boxed
      box.horizontal := true
      box.margin := 1
      boxed
        post "House"
'''


def _replace_once(source, old, new, improvement):
    if source.count(old) != 1:
        raise ReproError(
            "cannot apply {}: anchor not found exactly once".format(
                improvement
            )
        )
    return source.replace(old, new)


def apply_i1(source):
    """I1 — adjust margins to improve the visual appearance."""
    return _replace_once(source, _I1_OLD, _I1_NEW, "I1")


def apply_i2(source):
    """I2 — print the monthly balance in properly formatted dollars/cents."""
    return _replace_once(source, _I2_OLD, _I2_NEW, "I2")


def apply_i3(source):
    """I3 — highlight every fifth line of the schedule in light blue."""
    return _replace_once(source, _I3_OLD, _I3_NEW, "I3")


def improved_source():
    """BASE_SOURCE with all three improvements applied."""
    return apply_i3(apply_i2(apply_i1(BASE_SOURCE)))


def host_impls():
    """The extern implementations this app needs."""
    return web_host_impls()


def compile_mortgage(source=None):
    """Compile the app; returns a CompiledProgram."""
    return compile_source(source or BASE_SOURCE, host_impls())


def mortgage_runtime(source=None, latency=None, **runtime_kwargs):
    """A started :class:`~repro.system.runtime.Runtime` for the app."""
    from ..system.runtime import Runtime

    compiled = compile_mortgage(source)
    services = (
        make_services() if latency is None else make_services(latency=latency)
    )
    runtime = Runtime(
        compiled.code,
        natives=compiled.natives,
        services=services,
        **runtime_kwargs
    )
    return runtime.start()
