"""A multi-page shopping-list app.

Exercises the parts of the model the mortgage example doesn't: an
*editable* box that grows a list global, page navigation with record
arguments, deleting by index, and an aggregate (the total) recomputed by
render on every model change — no view-update code anywhere, which is the
paper's point about the view-update problem.
"""

from __future__ import annotations

from ..surface.compile import compile_source

SOURCE = '''\
record entry
  name : string
  qty : number

global entries : list entry = [entry("milk", 1), entry("bread", 2)]
global draft : string = ""

fun total() : number
  var sum := 0
  for e in entries do
    sum := sum + e.qty
  return sum

fun remove_at(victim : number)
  var kept := nil(entry)
  var i := 0
  for e in entries do
    if i != victim then
      kept := append(kept, e)
    i := i + 1
  entries := kept

page start()
  render
    boxed
      post "Shopping (" || total() || " items)"
    var i := 0
    for e in entries do
      boxed
        box.horizontal := true
        boxed
          post e.name || " x" || e.qty
          on tap do
            push detail(e)
        boxed
          post " [more]"
          on tap do
            bump(i)
        boxed
          post " [del]"
          on tap do
            remove_at(i)
      i := i + 1
    boxed
      box.border := true
      post "add: " || draft
      on edit(t) do
        draft := t
        if count(t) > 0 then
          entries := append(entries, entry(t, 1))
          draft := ""

fun bump(victim : number)
  var updated := nil(entry)
  var i := 0
  for e in entries do
    if i == victim then
      updated := append(updated, entry(e.name, e.qty + 1))
    else
      updated := append(updated, e)
    i := i + 1
  entries := updated

page detail(e : entry)
  render
    boxed
      post e.name
    boxed
      post "quantity: " || e.qty
    boxed
      post "back"
      on tap do
        pop
'''


def compile_shopping(source=None):
    return compile_source(source or SOURCE)


def shopping_runtime(source=None, **runtime_kwargs):
    from ..system.runtime import Runtime

    compiled = compile_shopping(source)
    return Runtime(
        compiled.code, natives=compiled.natives, **runtime_kwargs
    ).start()
