"""Conventional-workflow baselines (Section 2) for the edit-cycle benchmark."""

from .fix_and_continue import FixAndContinueWorkflow
from .live import LiveWorkflow
from .replay import ReplayOutcome, ReplayWorkflow
from .restart import EditMetrics, RestartWorkflow

__all__ = [name for name in dir() if not name.startswith("_")]
