"""The fix-and-continue baseline (Section 2).

IDEs for Java/C#/Smalltalk let the programmer swap code into a running
process, *but nothing re-executes it*: "for the common 'retained' UI
where a program builds and modifies a tree of widget objects to be
rendered, changing the code that initially builds this widget tree is
meaningless as that code has already executed and will not execute
again!"

:class:`FixAndContinueWorkflow` models exactly that: the code is swapped
(cheaply — that part fix-and-continue does well), the *retained* widget
tree stays on screen, and the new render code only takes effect at the
next model change that happens to rebuild the view.  The workflow tracks
whether the display currently reflects the installed code, which is the
feedback-visibility column of benchmark E2: render-code edits are
invisible under fix-and-continue until the user pokes the app.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..boxes.diff import tree_equal
from ..obs.trace import Stopwatch
from ..stdlib.web import make_services
from ..surface.compile import compile_source
from ..system.runtime import Runtime
from .restart import EditMetrics, _apply_action


class FixAndContinueWorkflow:
    """Code hot-swap without display refresh."""

    def __init__(self, source, host_impls=None, latency=None,
                 runtime_kwargs=None):
        self.host_impls = dict(host_impls or {})
        compiled = compile_source(source, self.host_impls)
        services = (
            make_services() if latency is None
            else make_services(latency=latency)
        )
        self.runtime = Runtime(
            compiled.code,
            natives=compiled.natives,
            services=services,
            **(runtime_kwargs or {})
        )
        self.runtime.start()
        #: The retained widget tree the user is looking at.
        self.retained_display = self.runtime.display

    def apply_edit(self, new_source):
        """Swap the code in, but keep showing the retained widget tree."""
        watch = Stopwatch()
        compiled = compile_source(new_source, self.host_impls)
        # The swap itself is the UPDATE transition; we then deliberately
        # do NOT present the refreshed display — the retained tree stays.
        fresh_before = self.retained_display
        self.runtime.update_code(compiled.code, natives=compiled.natives)
        visible = tree_equal(self.runtime.display, fresh_before)
        # What the user still sees is the retained tree.
        return EditMetrics(
            wall_seconds=watch.elapsed(),
            virtual_seconds=0.0,
            navigation_actions=0,
            transitions=2,  # UPDATE + the suppressed re-render
            visible=visible,  # True only if the edit changed nothing
        )

    def poke(self, action):
        """A user interaction — this is when retained UIs finally refresh."""
        _apply_action(self.runtime, action)
        self.retained_display = self.runtime.display
        return self.retained_display
