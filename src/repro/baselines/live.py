"""The live-programming "workflow" in the same harness shape as the
baselines, so benchmark E2 compares like with like.

One edit = one :meth:`LiveSession.edit_source` call: compile, UPDATE,
RENDER.  No restart, no re-download (the model state — including the
downloaded listings — survives the update), no navigation replay (the
page stack survives too).
"""

from __future__ import annotations

from ..live.session import LiveSession
from ..stdlib.web import make_services
from .restart import EditMetrics, _apply_action


class LiveWorkflow:
    """A programmer using the paper's system."""

    def __init__(self, source, host_impls=None, latency=None,
                 session_kwargs=None):
        services = (
            make_services() if latency is None
            else make_services(latency=latency)
        )
        self.session = LiveSession(
            source,
            host_impls=host_impls,
            services=services,
            **(session_kwargs or {})
        )
        self._virtual_before_edits = services.clock.now

    def act(self, *action):
        """Navigate once — context is kept, so this is not repeated."""
        _apply_action(self.session.runtime, action)
        return self

    def apply_edit(self, new_source):
        clock = self.session.runtime.system.services.clock
        virtual_before = clock.now
        result = self.session.edit_source(new_source)
        return EditMetrics(
            wall_seconds=result.elapsed,
            virtual_seconds=clock.now - virtual_before,
            navigation_actions=0,
            transitions=2,  # UPDATE + RENDER
            visible=result.applied,
        )
