"""The trace-record/re-execute baseline (Section 1).

"A natural starting point is re-execution of a trace of the entire
program to the current point.  However, apart from the cost of trace
capturing and re-execution, traces are problematic since code changes can
cause the re-execution to diverge from the previous trace."

:class:`ReplayWorkflow` implements that strawman: every user action is
recorded; on a code edit the program restarts from scratch and the trace
replays.  Two pathologies the paper predicts are both measurable:

* **cost growth** — the edit latency grows with the trace length (the
  live approach is O(current page), replay is O(history));
* **divergence** — an edit that changes what is on screen can make a
  recorded action meaningless (``tap_text`` of a label that no longer
  exists).  Divergence is detected and reported, not papered over.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import ReproError
from ..obs.trace import Stopwatch
from ..stdlib.web import make_services
from ..surface.compile import compile_source
from ..system.runtime import Runtime
from .restart import EditMetrics, _apply_action


@dataclass
class ReplayOutcome(EditMetrics):
    """Edit metrics plus replay-specific facts."""

    replayed_actions: int = 0
    diverged: bool = False
    divergence_reason: str = ""


class ReplayWorkflow:
    """Record every interaction; restart + replay on each edit."""

    def __init__(self, source, host_impls=None, latency=None,
                 runtime_kwargs=None):
        self.source = source
        self.host_impls = dict(host_impls or {})
        self.latency = latency
        self.runtime_kwargs = dict(runtime_kwargs or {})
        self.trace = []
        self.runtime = None
        self._boot(source)

    def _boot(self, source):
        compiled = compile_source(source, self.host_impls)
        services = (
            make_services() if self.latency is None
            else make_services(latency=self.latency)
        )
        self.runtime = Runtime(
            compiled.code,
            natives=compiled.natives,
            services=services,
            **self.runtime_kwargs
        )
        self.runtime.start()

    def act(self, *action):
        """Perform a user action and record it in the trace."""
        _apply_action(self.runtime, action)
        self.trace.append(action)
        return self

    def apply_edit(self, new_source):
        """Restart under the new code and replay the recorded trace."""
        self.source = new_source
        watch = Stopwatch()
        self._boot(new_source)
        replayed = 0
        diverged = False
        reason = ""
        for action in self.trace:
            try:
                _apply_action(self.runtime, action)
                replayed += 1
            except ReproError as problem:
                diverged = True
                reason = "{!r}: {}".format(action, problem)
                break
        clock = self.runtime.system.services.clock
        return ReplayOutcome(
            wall_seconds=watch.elapsed(),
            virtual_seconds=clock.now,
            navigation_actions=len(self.trace),
            transitions=len(self.runtime.trace),
            visible=not diverged,
            replayed_actions=replayed,
            diverged=diverged,
            divergence_reason=reason,
        )
