"""The edit-compile-run baseline (Section 2's seven-step cycle).

Every edit: (1) stop the program, (2-3) edit, (4) recompile and restart
— paying the full init cost, including the simulated listing download —
(5) re-navigate to the UI context the programmer was inspecting, (6)
look at the display.  :class:`RestartWorkflow` automates that loop so the
edit-cycle benchmark (E2) can measure it against live programming.

Costs are reported both in wall-clock seconds (compile + execute) and in
*virtual* seconds (the simulated download latency charged by
:mod:`repro.stdlib.web`), plus the number of replayed navigation actions
— the three drains the paper's archery metaphor complains about.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ReproError
from ..obs.trace import Stopwatch
from ..stdlib.web import make_services
from ..surface.compile import compile_source
from ..system.runtime import Runtime


@dataclass
class EditMetrics:
    """Cost of observing one edit's effect under a workflow."""

    wall_seconds: float
    virtual_seconds: float       # simulated latency (downloads)
    navigation_actions: int      # user actions replayed to restore context
    transitions: int             # system transitions fired
    visible: bool                # is the edit's effect on screen now?


class RestartWorkflow:
    """A programmer using stop-edit-compile-restart-navigate.

    ``navigation`` is the script that returns to the UI context under
    inspection: a list of ``("tap_text", text)`` / ``("tap", path)`` /
    ``("edit", path, text)`` / ``("back",)`` actions.
    """

    def __init__(self, source, host_impls=None, navigation=(),
                 latency=None, runtime_kwargs=None):
        self.source = source
        self.host_impls = dict(host_impls or {})
        self.navigation = list(navigation)
        self.latency = latency
        self.runtime_kwargs = dict(runtime_kwargs or {})
        self.runtime = None
        self._boot(source)

    def _make_services(self):
        if self.latency is None:
            return make_services()
        return make_services(latency=self.latency)

    def _boot(self, source):
        compiled = compile_source(source, self.host_impls)
        self.runtime = Runtime(
            compiled.code,
            natives=compiled.natives,
            services=self._make_services(),
            **self.runtime_kwargs
        )
        self.runtime.start()
        return compiled

    def _navigate(self):
        for action in self.navigation:
            _apply_action(self.runtime, action)
        return len(self.navigation)

    def apply_edit(self, new_source):
        """Stop, recompile, restart, re-navigate; return the metrics."""
        self.source = new_source
        watch = Stopwatch()
        transitions_before = 0
        self._boot(new_source)  # restart from scratch: init re-runs
        clock = self.runtime.system.services.clock
        steps = self._navigate()
        return EditMetrics(
            wall_seconds=watch.elapsed(),
            virtual_seconds=clock.now,
            navigation_actions=steps,
            transitions=len(self.runtime.trace) - transitions_before,
            visible=True,
        )


def _apply_action(runtime, action):
    kind = action[0]
    if kind == "tap_text":
        runtime.tap_text(action[1])
    elif kind == "tap":
        runtime.tap(action[1])
    elif kind == "edit":
        runtime.edit(action[1], action[2])
    elif kind == "back":
        runtime.back()
    else:
        raise ReproError("unknown navigation action {!r}".format(action))
