"""Box trees — the UI state ``B`` of Fig. 7 and its supporting machinery."""

from .attributes import (
    ATTRIBUTE_ENV,
    AttributeSpec,
    ONEDIT_TYPE,
    ONTAP_TYPE,
    attribute_spec,
    attribute_type,
    handler_attributes,
    manipulable_attributes,
)
from .diff import DiffStats, reuse, tree_equal
from .paths import (
    boxes_created_by,
    format_path,
    innermost_box_with_attr,
    parent,
    parse_path,
    resolve,
)
from .tree import STALE, AttrSet, Box, BoxItem, Leaf, make_root

__all__ = [name for name in dir() if not name.startswith("_")]
