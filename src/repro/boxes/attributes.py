"""The attribute environment ``Γa`` (Section 4.3).

The paper defines ``Γa`` as an environment assigning types to box
attributes, giving ``ontap : () -s> ()`` and ``margin : number`` as
examples.  This module is the single authoritative registry: the type
checker consults it for rule T-ATTR, the renderer for layout defaults, and
the direct-manipulation IDE feature for which attributes are editable from
the live view.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import names
from ..core.effects import STATE
from ..core.errors import ReproError
from ..core.types import NUMBER, STRING, Type, UNIT, fun


@dataclass(frozen=True)
class AttributeSpec:
    """One entry of ``Γa``.

    ``default`` is the value the *renderer* assumes when the attribute is
    absent; it never enters the semantics.  ``manipulable`` marks attributes
    offered by the direct-manipulation menu of Section 3 (handlers are not:
    you cannot write a closure by poking the live view).
    """

    name: str
    type: Type
    default: object = None
    manipulable: bool = False
    doc: str = ""


#: Handler attribute types, per the paper: ``ontap : () -s> ()``.
ONTAP_TYPE = fun(UNIT, UNIT, STATE)
#: Edit handler for editable text boxes: receives the new text.
ONEDIT_TYPE = fun(STRING, UNIT, STATE)

_SPECS = [
    AttributeSpec(names.ATTR_ONTAP, ONTAP_TYPE, doc="tap handler (rule TAP)"),
    AttributeSpec(names.ATTR_ONEDIT, ONEDIT_TYPE, doc="edit handler (rule EDIT)"),
    AttributeSpec(
        names.ATTR_MARGIN, NUMBER, default=0.0, manipulable=True,
        doc="outer spacing in cells (the I1 improvement adjusts this)",
    ),
    AttributeSpec(
        names.ATTR_PADDING, NUMBER, default=0.0, manipulable=True,
        doc="inner spacing in cells",
    ),
    AttributeSpec(
        names.ATTR_BACKGROUND, STRING, default="", manipulable=True,
        doc="background colour name (the I3 improvement sets this)",
    ),
    AttributeSpec(
        names.ATTR_COLOR, STRING, default="", manipulable=True,
        doc="foreground colour name",
    ),
    AttributeSpec(
        names.ATTR_FONT_SIZE, NUMBER, default=1.0, manipulable=True,
        doc="relative font size",
    ),
    AttributeSpec(
        names.ATTR_HORIZONTAL, NUMBER, default=0.0, manipulable=True,
        doc="non-zero lays children out horizontally (vertical is default)",
    ),
    AttributeSpec(
        names.ATTR_WIDTH, NUMBER, default=0.0, manipulable=True,
        doc="fixed width in cells; 0 means size-to-content",
    ),
    AttributeSpec(
        names.ATTR_BORDER, NUMBER, default=0.0, manipulable=True,
        doc="non-zero draws a border",
    ),
    AttributeSpec(
        names.ATTR_EDITABLE, NUMBER, default=0.0,
        doc="non-zero makes the box accept EDIT user events",
    ),
]

ATTRIBUTE_ENV = {spec.name: spec for spec in _SPECS}


def attribute_type(name):
    """``Γa(a)`` — the type of attribute ``a``, or ``None`` if unknown.

    Rule T-ATTR fails when this returns ``None``.
    """
    spec = ATTRIBUTE_ENV.get(name)
    return spec.type if spec is not None else None


def attribute_spec(name):
    """Full :class:`AttributeSpec` for ``name``; raises if unknown."""
    try:
        return ATTRIBUTE_ENV[name]
    except KeyError:
        raise ReproError("unknown box attribute: {!r}".format(name))


def manipulable_attributes():
    """Attributes offered by the direct-manipulation menu, in order."""
    return tuple(spec for spec in _SPECS if spec.manipulable)


def handler_attributes():
    """Attributes holding event handlers (function-typed)."""
    return (names.ATTR_ONTAP, names.ATTR_ONEDIT)


def as_number(value, default=0.0):
    """Read an attribute value as a Python float.

    Attribute values in rendered box trees are AST values (``Num``); this
    helper also accepts plain Python numbers so tests can build box trees
    by hand.
    """
    from ..core import ast

    if value is None:
        return default
    if isinstance(value, ast.Num):
        return value.value
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ReproError("attribute value is not a number: {!r}".format(value))
    return float(value)


def as_string(value, default=""):
    """Read an attribute value as a Python string (AST ``Str`` or str)."""
    from ..core import ast

    if value is None:
        return default
    if isinstance(value, ast.Str):
        return value.value
    if not isinstance(value, str):
        raise ReproError("attribute value is not a string: {!r}".format(value))
    return value
