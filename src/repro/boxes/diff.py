"""Box-tree diffing: the reuse optimization sketched in Section 5.

The paper's model rebuilds the entire box tree on every refresh and notes:

    "Recreating the entire box tree on a redraw can become slow if there
    are many boxes on the screen.  We are currently working on a simple
    optimization where we can reuse box tree elements that have not
    changed."

This module implements that optimization.  :func:`reuse` takes the previous
display and the freshly rendered one and returns a tree in which every
subtree that is structurally unchanged is *the same Python object* as in
the previous display.  Downstream consumers that cache by object identity —
the layout engine keeps a per-object layout cache — then skip all work for
reused subtrees, which is exactly the saving a retained-mode toolkit gets
from not touching unchanged DOM nodes.

The semantics is unaffected: ``reuse(old, new) == new`` structurally, and
the optimization is off by default (``Runtime(reuse_boxes=False)``), so the
ablation benchmark E3 can measure both configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .tree import AttrSet, Box, Leaf


@dataclass
class DiffStats:
    """Counters reported by :func:`reuse` (used by benchmark E3 and tests)."""

    reused_boxes: int = 0
    rebuilt_boxes: int = 0

    @property
    def total_boxes(self):
        return self.reused_boxes + self.rebuilt_boxes

    @property
    def reuse_fraction(self):
        if self.total_boxes == 0:
            return 0.0
        return self.reused_boxes / self.total_boxes


def _items_equal_shallow(old, new):
    """Are the non-box items and the box *count/positions* identical?

    Box items are compared by position only; their contents are handled by
    the recursive pass so a deep change does not force the whole spine to
    be re-created.
    """
    if len(old.items) != len(new.items):
        return False
    for old_item, new_item in zip(old.items, new.items):
        old_is_box = isinstance(old_item, Box)
        new_is_box = isinstance(new_item, Box)
        if old_is_box != new_is_box:
            return False
        if not old_is_box and old_item != new_item:
            return False
    return True


def reuse(old, new, stats=None):
    """Return ``new`` with unchanged subtrees replaced by ``old``'s objects.

    ``old`` may be ``None`` (no previous display — first render, or display
    was stale after an UPDATE with no prior page); then ``new`` is returned
    untouched.  The result is always structurally equal to ``new``.
    """
    if stats is None:
        stats = DiffStats()
    if old is None or not isinstance(old, Box) or not isinstance(new, Box):
        if isinstance(new, Box):
            stats.rebuilt_boxes += new.count_boxes()
        return new
    result = _reuse_box(old, new, stats)
    return result


def _reuse_box(old, new, stats):
    if old == new:  # deep structural equality: reuse the whole subtree
        stats.reused_boxes += old.count_boxes()
        return old
    if not _items_equal_shallow(old, new):
        # Spine changed; still try to match children pairwise by position
        # and boxed-statement id so insertions near the end reuse prefixes.
        stats.rebuilt_boxes += 1
        old_children = old.children()
        merged_items = []
        child_index = 0
        for item in new.items:
            if isinstance(item, Box):
                if (
                    child_index < len(old_children)
                    and old_children[child_index].box_id == item.box_id
                ):
                    merged_items.append(
                        _reuse_box(old_children[child_index], item, stats)
                    )
                else:
                    stats.rebuilt_boxes += item.count_boxes()
                    merged_items.append(item)
                child_index += 1
            else:
                merged_items.append(item)
        return _rebuild_like(new, merged_items)
    # Same spine: recurse into children positionally.
    stats.rebuilt_boxes += 1
    old_children = iter(old.children())
    merged_items = []
    for item in new.items:
        if isinstance(item, Box):
            merged_items.append(_reuse_box(next(old_children), item, stats))
        else:
            merged_items.append(item)
    return _rebuild_like(new, merged_items)


def _rebuild_like(template, items):
    box = Box(items, box_id=template.box_id, occurrence=template.occurrence)
    box.freeze()
    return box


def tree_equal(left, right):
    """Structural display equality (ignores navigation metadata)."""
    if left is None or right is None:
        return left is right
    return left == right
