"""Box paths: addresses of boxes inside a display tree.

A path is a tuple of child indices from the root; ``()`` addresses the
implicit top-level box.  Paths are how the runtime API names the box a user
tapped (rule TAP needs *which* ``[ontap = v]`` fires) and how the IDE
communicates selections between the live view and the code view.
"""

from __future__ import annotations

from ..core.errors import ReproError
from .tree import Box


def resolve(root, path):
    """Return the box addressed by ``path`` under ``root``.

    Raises :class:`ReproError` when the path runs off the tree — e.g. when
    a selection was taken against a display that has since been re-rendered
    with fewer boxes.
    """
    box = root
    for index in path:
        box = box.child(index)
    return box


def parent(path):
    """The path of the enclosing box; ``None`` for the root."""
    if not path:
        return None
    return path[:-1]


def format_path(path):
    """Render a path as ``/0/3`` (root is ``/``)."""
    if not path:
        return "/"
    return "".join("/{}".format(index) for index in path)


def parse_path(text):
    """Inverse of :func:`format_path`."""
    if text == "/":
        return ()
    if not text.startswith("/"):
        raise ReproError("box path must start with '/': {!r}".format(text))
    try:
        return tuple(int(part) for part in text.split("/")[1:])
    except ValueError:
        raise ReproError("malformed box path: {!r}".format(text))


def boxes_created_by(root, box_id):
    """All ``(path, box)`` pairs whose box was created by ``boxed`` statement
    ``box_id``.

    This is the code-view → live-view direction of Fig. 2's navigation: a
    boxed statement inside a loop corresponds to *multiple* boxes, which are
    collectively selected.
    """
    if not isinstance(root, Box):
        raise ReproError("boxes_created_by expects a Box root")
    return [
        (path, box) for path, box in root.walk() if box.box_id == box_id
    ]


def innermost_box_with_attr(root, path, attr):
    """Walk from ``path`` toward the root, returning the first box carrying
    ``attr`` (and its path), or ``(None, None)``.

    Used by TAP dispatch: tapping nested content fires the nearest enclosing
    handler, mirroring event bubbling in the implementation the paper
    describes.
    """
    while True:
        box = resolve(root, path)
        if box.has_attr(attr):
            return path, box
        if not path:
            return None, None
        path = path[:-1]
