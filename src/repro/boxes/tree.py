"""Box content ``B`` (Fig. 7).

    B ::= ε | B v | B [a = v] | B ⟨B⟩

A box's content is an ordered sequence of *items*: posted leaf values
(ER-POST), attribute settings (ER-ATTR) and nested boxes (ER-BOXED).  The
display ``D`` is either a single root :class:`Box` (the paper's "implicit
top-level box") or stale (``⊥``, represented at the system level, not
here).

Boxes are **second-class**: user code never holds a reference to one.  They
are produced only by the render machine and consumed only by the renderer,
the hit-tester and the IDE.  Nothing in this module is reachable from
:mod:`repro.eval.values`, which is the structural guarantee behind the
paper's "the display content cannot be read by the code".

``meta`` fields (``box_id``, ``occurrence``) support Fig. 2's UI–code
navigation and never participate in structural equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import ReproError
from ..core.pickling import SlotStatePickle


class BoxItem(SlotStatePickle):
    """Base class of the three content item kinds."""

    __slots__ = ()


@dataclass(frozen=True)
class Leaf(BoxItem):
    """``B v`` — posted content (a runtime value, usually a string)."""

    value: object
    __slots__ = ("value",)


@dataclass(frozen=True)
class AttrSet(BoxItem):
    """``B [a = v]`` — an attribute written by ``box.a := v``."""

    name: str
    value: object
    __slots__ = ("name", "value")


class Box(BoxItem):
    """``B ⟨B⟩`` — a box with ordered content items.

    Mutable only while the render machine is accumulating content; callers
    should treat rendered trees as immutable (:meth:`freeze` enforces it).
    """

    __slots__ = ("items", "box_id", "occurrence", "_frozen")

    def __init__(self, items=(), box_id=None, occurrence=None):
        self.items = list(items)
        #: id of the ``boxed`` statement that created this box (or None for
        #: the implicit root); used by UI-code navigation.
        self.box_id = box_id
        #: which dynamic occurrence of that statement this is (0-based);
        #: a boxed statement in a loop yields many occurrences (Fig. 2).
        self.occurrence = occurrence
        self._frozen = False

    # -- construction (render machine only) ---------------------------------

    def _check_mutable(self):
        if self._frozen:
            raise ReproError("box tree is frozen; displays are immutable")

    def append_leaf(self, value):
        """ER-POST: append posted content."""
        self._check_mutable()
        self.items.append(Leaf(value))

    def append_attr(self, name, value):
        """ER-ATTR: append an attribute setting."""
        self._check_mutable()
        self.items.append(AttrSet(name, value))

    def append_child(self, box):
        """ER-BOXED: nest a finished child box."""
        self._check_mutable()
        if not isinstance(box, Box):
            raise ReproError("append_child expects a Box")
        self.items.append(box)

    def freeze(self):
        """Recursively mark the tree immutable (done when render finishes)."""
        self._frozen = True
        for item in self.items:
            if isinstance(item, Box):
                item.freeze()
        return self

    # -- queries -------------------------------------------------------------

    def children(self):
        """Nested boxes, in order."""
        return [item for item in self.items if isinstance(item, Box)]

    def leaves(self):
        """Posted leaf values, in order."""
        return [item.value for item in self.items if isinstance(item, Leaf)]

    def attributes(self):
        """Effective attributes: later ``box.a := v`` writes win."""
        result = {}
        for item in self.items:
            if isinstance(item, AttrSet):
                result[item.name] = item.value
        return result

    def get_attr(self, name, default=None):
        """The effective value of attribute ``name`` (last write wins)."""
        value = default
        for item in self.items:
            if isinstance(item, AttrSet) and item.name == name:
                value = item.value
        return value

    def has_attr(self, name):
        """Does any ``[a = v]`` item with this name occur?  (Premise of TAP.)"""
        return any(
            isinstance(item, AttrSet) and item.name == name
            for item in self.items
        )

    def child(self, index):
        """The ``index``-th nested box."""
        kids = self.children()
        try:
            return kids[index]
        except IndexError:
            raise ReproError(
                "box has {} children, no child {}".format(len(kids), index)
            )

    def walk(self, path=()):
        """Yield ``(path, box)`` for this box and all descendants, pre-order.

        Paths are tuples of child indices; ``()`` is this box itself.
        """
        yield path, self
        for index, kid in enumerate(self.children()):
            for item in kid.walk(path + (index,)):
                yield item

    def count_boxes(self):
        """Total number of boxes in the tree (benchmark metric)."""
        return sum(1 for _ in self.walk())

    def count_items(self):
        """Total number of content items in the tree (benchmark metric)."""
        total = len(self.items)
        for kid in self.children():
            total += kid.count_items()
        return total

    # -- equality ------------------------------------------------------------

    def __eq__(self, other):
        """Structural equality on content; navigation metadata is ignored."""
        return (
            isinstance(other, Box)
            and len(self.items) == len(other.items)
            and all(a == b for a, b in zip(self.items, other.items))
        )

    def __hash__(self):
        # Boxes are mutable during construction; identity hash keeps them
        # usable in the layout cache, which is keyed by object identity.
        return id(self)

    def __repr__(self):
        return "Box(id={}, items={})".format(self.box_id, len(self.items))

    def dump(self, indent=0):
        """Human-readable multi-line dump (for debugging and doctests)."""
        pad = "  " * indent
        lines = [
            "{}box#{}{}".format(
                pad,
                self.box_id if self.box_id is not None else "root",
                "" if self.occurrence is None else "/{}".format(self.occurrence),
            )
        ]
        for item in self.items:
            if isinstance(item, Leaf):
                lines.append("{}  post {!r}".format(pad, item.value))
            elif isinstance(item, AttrSet):
                lines.append("{}  [{} = {!r}]".format(pad, item.name, item.value))
            else:
                lines.append(item.dump(indent + 1))
        return "\n".join(lines)


def make_root(items=()):
    """Create the implicit top-level box of a page."""
    return Box(list(items), box_id=None, occurrence=0)


class _Stale:
    """The invalid display ``⊥`` of Fig. 7 (singleton :data:`STALE`).

    Every system transition except RENDER sets the display to ``⊥``; RENDER
    is the only transition that replaces ``⊥`` with a box tree.  Defined
    here (rather than in :mod:`repro.system.state`) because both the boxes
    layer and the typing layer need it without importing the system layer.
    """

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "⊥"


STALE = _Stale()
