"""Command-line interface: ``python -m repro <command> <file.live>``.

Commands:

* ``check``   — typecheck a program, printing every diagnostic;
* ``compile`` — print the lowered core calculus (Fig. 6 notation);
* ``run``     — boot the program, optionally drive it with ``--tap``/
  ``--edit``/``--back`` actions, and print the final ASCII screenshot;
* ``html``    — render the booted program's display as a standalone
  HTML document;
* ``probe``   — evaluate an expression in the program's context;
* ``trace``   — run a scripted interaction under a real tracer — or
  re-derive the trace from a recorded journal with ``--journal DIR``,
  or stitch the cross-process trace of one request from a running
  cluster with ``--cluster URL`` — and print the span tree + metric
  table (see ``docs/OBSERVABILITY.md``);
* ``top``     — live ANSI dashboard polling a running server's
  ``/metrics``: req/s, per-op p50/p95, worker liveness and respawns,
  shared-cache hit rate, breaker states;
* ``serve``   — run the multi-session JSON API server with an LRU
  session pool (see ``docs/SERVER.md``);
* ``replay``  — deterministically replay a recorded journal: time-travel
  to any seq (``--to-seq``), or check an edited program against the
  recorded trace (``--source``, the §2 trace-replay regression tool);
* ``why``     — provenance query against a journal: which code span,
  store slots and journaled events produced a rendered box;
* ``repair``  — search a journaled session for validated candidate
  fixes (the server's live-repair searcher, offline; ``--apply RANK``
  emits the chosen repaired source);
* ``ide``     — open the tkinter live viewer (if a display is available).

``run``, ``trace``, ``serve`` and ``ide`` accept ``--trace-jsonl PATH``
to stream every finished span (plus a final metrics record) as JSON
lines.  Every command that takes a source file accepts either a
``.live`` file or a ``.py`` example module exposing a string ``SOURCE``
(e.g. ``examples/quickstart.py``).

Programs that declare the stdlib externs (``fetch_listings``) are wired
to the simulated web automatically; ``--latency`` tunes its virtual
delay.
"""

from __future__ import annotations

import argparse
import sys

from .core.errors import ReproError, SyntaxProblem, TypeProblem
from .core.names import ATTR_ONTAP
from .core.pretty import pretty_code
from .eval.machine import DEFAULT_FUEL
from .live.session import LiveSession
from .obs import (
    InMemorySink,
    JsonlSink,
    format_metric_table,
    format_span_tree,
)
from .obs.trace import Tracer
from .stdlib.web import DEFAULT_LATENCY, make_services, web_host_impls
from .surface.parser import parse
from .surface.typecheck import typecheck_problems


def _read(path):
    try:
        with open(path) as handle:
            return handle.read()
    except OSError as error:
        raise ReproError("cannot read {}: {}".format(path, error))


def _load_source(path):
    """The surface source at ``path`` — shared by every subcommand.

    ``.live`` files are read verbatim.  A ``.py`` path (the repository's
    examples) is executed as a module — without running its ``main()``,
    which hides behind the ``__main__`` guard — and must leave a string
    ``SOURCE`` in its namespace, e.g. ``examples/quickstart.py``'s
    ``from repro.apps.counter import SOURCE``.  ``run``, ``html``,
    ``probe``, ``save``, ``trace`` and ``serve`` all accept both forms.
    """
    if not path.endswith(".py"):
        return _read(path)
    import runpy

    try:
        namespace = runpy.run_path(path, run_name="repro.cli.target")
    except OSError as error:
        raise ReproError("cannot read {}: {}".format(path, error))
    source = namespace.get("SOURCE")
    if not isinstance(source, str):
        raise ReproError(
            "{} defines no string SOURCE to load".format(path)
        )
    return source


def _make_tracer(args):
    """A real tracer when observability output was requested, else None.

    With ``--trace-jsonl`` the tracer streams spans to the file as they
    finish *and* keeps them in memory for the on-screen report.
    """
    jsonl_path = getattr(args, "trace_jsonl", None)
    if not jsonl_path:
        return None
    try:
        # Validate the target now, before any spans are recorded — the
        # sink itself opens lazily, which would otherwise surface a bad
        # path as a traceback from the middle of the parse span.
        open(jsonl_path, "w").close()
    except OSError as error:
        raise ReproError(
            "cannot write {}: {}".format(jsonl_path, error)
        )
    return Tracer(sinks=[InMemorySink(), JsonlSink(jsonl_path)])


def _finish_jsonl(tracer, args, out):
    """Write the final metrics record and close the JSONL stream."""
    if tracer is None:
        return
    for sink in tracer.sinks:
        if isinstance(sink, JsonlSink):
            sink.write_metrics(tracer.metrics())
            sink.close()
            print(
                "wrote trace to {}".format(args.trace_jsonl), file=out
            )


def _session(path, latency, tracer=None, **session_kwargs):
    source = _load_source(path)
    services = make_services(latency=latency)
    return LiveSession(
        source, host_impls=web_host_impls(), services=services,
        tracer=tracer, **session_kwargs
    )


def cmd_check(args, out):
    source = _read(args.file)
    try:
        program = parse(source)
    except SyntaxProblem as problem:
        print("syntax error: {}".format(problem), file=out)
        return 1
    _env, problems = typecheck_problems(program)
    if not problems:
        print("{}: ok".format(args.file), file=out)
        return 0
    for problem in problems:
        print(problem, file=out)
    return 1


def cmd_compile(args, out):
    from .surface.compile import compile_source

    compiled = compile_source(_read(args.file), web_host_impls())
    print(pretty_code(compiled.code), file=out)
    if compiled.generated_functions:
        print(
            "// generated loop functions: {}".format(
                ", ".join(compiled.generated_functions)
            ),
            file=out,
        )
    return 0


def _apply_actions(session, args, out):
    for kind, value in args.actions:
        if kind == "tap":
            session.tap_text(value)
        elif kind == "edit":
            target, _, text = value.partition("=")
            path = session.runtime.require_text(target)
            session.edit_box(path, text)
        elif kind == "back":
            session.back()


def cmd_run(args, out):
    tracer = _make_tracer(args)
    session = _session(
        args.file, args.latency, tracer=tracer, backend=args.backend
    )
    _apply_actions(session, args, out)
    print(session.screenshot(width=args.width), file=out)
    if args.trace:
        print(
            "trace: " + " ".join(str(t) for t in session.runtime.trace),
            file=out,
        )
    _finish_jsonl(tracer, args, out)
    return 0


def _auto_interact(session, taps=2):
    """The default ``trace`` script: tap the first tappable box ``taps``
    times (re-resolving each time — the display changes under us)."""
    performed = 0
    for _ in range(taps):
        tappable = session.runtime.find_boxes(
            lambda box: box.get_attr(ATTR_ONTAP) is not None
        )
        if not tappable:
            break
        session.tap(tappable[0][0])
        performed += 1
    return performed


def _trace_cluster(args, out):
    """``repro trace --cluster URL``: drive one request against a
    running server and print its stitched cross-process span tree."""
    import json as _json
    import urllib.error
    import urllib.request

    from .obs.sinks import spans_from_dicts

    base = args.cluster.rstrip("/")

    def post(body):
        data = _json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            base + "/", data=data,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=30.0
            ) as response:
                return _json.loads(response.read())
        except (urllib.error.URLError, OSError, ValueError) as error:
            raise ReproError(
                "cannot reach {}: {}".format(base, error)
            ) from error

    trace_id = args.trace_id
    if trace_id is None:
        create = post({"op": "create"})
        if not create.get("ok"):
            raise ReproError(
                "create against {} failed: {}".format(
                    base, create.get("error")
                )
            )
        response = post({"op": "render", "token": create["token"]})
        trace_id = response.get("trace_id")
        if trace_id is None:
            raise ReproError(
                "{} reported no trace_id — cross-process tracing needs "
                "a cluster front (repro serve --cluster-workers N)"
                .format(base)
            )
    stats = post({"op": "stats", "trace_id": trace_id})
    spans = stats.get("trace") or []
    print("cluster trace {} from {}:".format(trace_id, base), file=out)
    print(file=out)
    print(format_span_tree(spans_from_dicts(spans)), file=out)
    return 0


def cmd_trace(args, out):
    if getattr(args, "cluster", None):
        return _trace_cluster(args, out)
    tracer = _make_tracer(args) or Tracer()
    if args.journal:
        # Journal-derived trace: replay the recorded session under the
        # tracer — the spans and metrics of a session you never traced
        # live, reconstructed after the fact (repro.provenance).
        from .provenance import replay_session
        from .resilience.journal import Journal

        result = replay_session(
            Journal(args.journal),
            args.token,
            # Cold on purpose: the trace should cover the whole
            # recorded session, not just the tail after a checkpoint.
            use_checkpoint=False,
            tracer=tracer,
            make_host_impls=web_host_impls,
            make_services=lambda: make_services(latency=args.latency),
            session_kwargs={
                "reuse_boxes": True, "memo_render": True, "tracer": tracer,
            },
        )
        print(
            "journal-derived trace of {} ({} event{} replayed):".format(
                args.journal, result.events_replayed,
                "" if result.events_replayed == 1 else "s",
            ),
            file=out,
        )
    else:
        if not args.file:
            raise ReproError(
                "trace needs a source file or --journal DIR"
            )
        source = _load_source(args.file)
        services = make_services(latency=args.latency)
        # Turn the Section 5 optimizations on so their metrics are live.
        session = LiveSession(
            source,
            host_impls=web_host_impls(),
            services=services,
            tracer=tracer,
            reuse_boxes=True,
            memo_render=True,
        )
        if args.actions:
            _apply_actions(session, args, out)
        else:
            _auto_interact(session)
        print("trace of {}:".format(args.file), file=out)
    print(file=out)
    print(format_span_tree(tracer.spans()), file=out)
    print(file=out)
    print(format_metric_table(tracer.metrics()), file=out)
    _finish_jsonl(tracer, args, out)
    return 0


def cmd_html(args, out):
    from .render.html_backend import render_html

    session = _session(args.file, args.latency)
    _apply_actions(session, args, out)
    document = render_html(session.display, title=args.file)
    if args.output == "-":
        print(document, file=out)
    else:
        with open(args.output, "w") as handle:
            handle.write(document)
        print("wrote {}".format(args.output), file=out)
    return 0


def cmd_probe(args, out):
    session = _session(args.file, args.latency)
    result = session.probe_expr(args.expression)
    print(result.describe(), file=out)
    if result.tree is not None:
        print(result.screenshot(width=args.width), file=out)
    return 0


def cmd_fmt(args, out):
    from .surface.format import format_source

    formatted = format_source(_read(args.file))
    if args.in_place:
        with open(args.file, "w") as handle:
            handle.write(formatted)
        print("formatted {}".format(args.file), file=out)
    else:
        out.write(formatted)
    return 0


def cmd_save(args, out):
    from .persist import save_image_text

    session = _session(args.file, args.latency)
    _apply_actions(session, args, out)
    with open(args.output, "w") as handle:
        handle.write(save_image_text(session))
    print("saved image to {}".format(args.output), file=out)
    return 0


def _print_rejection(problems, out):
    """Diagnostics for a rejected update, one per line.

    The same formatting a rejected :meth:`LiveSession.edit_source`
    carries in ``result.problems`` — ``[RULE] span: message`` — so
    ``resume --source`` and the live editor read identically.
    """
    print("update rejected ({} problem{}):".format(
        len(problems), "" if len(problems) == 1 else "s"
    ), file=out)
    for problem in problems:
        print("  {}".format(problem), file=out)


def cmd_resume(args, out):
    from .core.errors import UpdateRejected
    from .persist import load_image

    data = _read(args.image)
    services = lambda: make_services(latency=args.latency)
    status = 0
    try:
        session = load_image(
            data,
            host_impls=web_host_impls(),
            services=services(),
            source=_load_source(args.source) if args.source else None,
        )
    except (SyntaxProblem, TypeProblem, UpdateRejected) as rejected:
        # The edited source did not compile.  Exactly like a live edit,
        # the rejection keeps the last good code running: resume the
        # image's own source and report the diagnostics.
        _print_rejection(
            tuple(getattr(rejected, "problems", ())) or (rejected,), out
        )
        session = load_image(
            data, host_impls=web_host_impls(), services=services()
        )
        status = 1
    report = session.last_restore_report
    if not report.clean:
        print(
            "restore dropped: {}".format(
                ", ".join(report.dropped_globals + report.dropped_pages)
            ),
            file=out,
        )
    print(session.screenshot(width=args.width), file=out)
    return status


def _install_graceful_signals(server):
    """SIGTERM/SIGINT → stop the accept loop from a helper thread.

    ``server.shutdown()`` must not run on the thread inside
    ``serve_forever`` (it waits for that loop to exit), so the handler
    only spawns the call.  Returns the event marking shutdown was
    requested; signal installation is skipped silently when not on the
    main thread (tests drive ``cmd_serve`` directly).
    """
    import signal
    import threading

    stopping = threading.Event()

    def _graceful(_signum, _frame):
        if stopping.is_set():
            return
        stopping.set()
        threading.Thread(target=server.shutdown, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _graceful)
        signal.signal(signal.SIGINT, _graceful)
    except ValueError:  # not the main thread
        pass
    return stopping


def cmd_top(args, out):
    from .obs.top import run_top

    url = args.url.rstrip("/")
    if not url.endswith("/metrics"):
        url += "/metrics"
    try:
        return run_top(
            url,
            interval=args.interval,
            iterations=args.iterations,
            out=out,
            clear=not args.no_clear,
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive
        return 0


def cmd_serve(args, out):
    from .obs.trace import Tracer
    from .serve.app import make_server, shutdown_gracefully

    source = _load_source(args.file)
    tracer = _make_tracer(args) or Tracer()
    if args.cluster_workers:
        return _serve_cluster(args, out, source, tracer)

    from .resilience import Budget, recover
    from .resilience.journal import Journal
    from .serve.host import SessionHost

    budget = Budget(fuel=args.fuel, deadline=args.deadline)
    host = SessionHost(
        pool_size=args.pool_size,
        default_source=source,
        make_host_impls=web_host_impls,
        make_services=lambda: make_services(latency=args.latency),
        tracer=tracer,
        quarantine_after=args.quarantine_after,
        # The Section 5 optimizations are semantics-preserving; a server
        # wants them on.  Faults are recorded, budgeted and supervised
        # (repro.resilience): a user's division by zero degrades one
        # session, it never kills the server.
        session_kwargs={
            "reuse_boxes": True,
            "memo_render": True,
            "fault_policy": args.fault_policy,
            "budget": budget,
            "supervised": True,
            "backend": args.backend,
        },
        repair=True if args.repair else None,
    )
    journal = None
    if args.journal_dir:
        journal = Journal(
            args.journal_dir,
            checkpoint_every=args.checkpoint_every,
            tracer=tracer,
            fsync=args.journal_fsync,
        )
        report = recover(host, journal)
        if report.sessions:
            print(str(report), file=out)
    server = make_server(host, port=args.port, bind=args.bind)
    port = server.server_address[1]
    if args.port_file:
        with open(args.port_file, "w") as handle:
            handle.write(str(port))
    print(
        "serving {} on http://{}:{} (pool size {})".format(
            args.file, args.bind, port, args.pool_size
        ),
        file=out,
    )
    if hasattr(out, "flush"):
        out.flush()
    _install_graceful_signals(server)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        # Drain in-flight requests, then stamp the journal's clean-
        # shutdown marker — SIGTERM never tears a request midway.
        drained = shutdown_gracefully(server, journal=journal)
        print(
            "shut down {}".format(
                "cleanly" if drained else "with requests still in flight"
            ),
            file=out,
        )
        _finish_jsonl(tracer, args, out)
    return 0


def _serve_cluster(args, out, source, tracer):
    """``repro serve --cluster-workers N``: the sharded serving path."""
    from .cluster import ClusterRouter, ClusterSupervisor
    from .serve.app import make_server, shutdown_gracefully

    supervisor = ClusterSupervisor(
        source=source,
        workers=args.cluster_workers,
        journal_root=args.journal_dir,
        pool_size=args.pool_size,
        checkpoint_every=args.checkpoint_every,
        quarantine_after=args.quarantine_after,
        fault_policy=args.fault_policy,
        fuel=args.fuel,
        deadline=args.deadline,
        latency=args.latency,
        shared_cache=not args.no_shared_cache,
        bind=args.bind,
        tracer=tracer,
        repair=True if args.repair else None,
        journal_fsync=args.journal_fsync,
        # Worker processes merge these into their session posture, so
        # the backend choice reaches every session on every worker —
        # including respawned ones.
        session_kwargs=(
            {"backend": args.backend} if args.backend else None
        ),
    ).start()
    router = ClusterRouter(supervisor)
    server = make_server(router, port=args.port, bind=args.bind)
    port = server.server_address[1]
    if args.port_file:
        with open(args.port_file, "w") as handle:
            handle.write(str(port))
    print(
        "serving {} on http://{}:{} ({} workers, journals under {})".format(
            args.file, args.bind, port, args.cluster_workers,
            supervisor.journal_root,
        ),
        file=out,
    )
    if hasattr(out, "flush"):
        out.flush()
    _install_graceful_signals(server)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        drained = shutdown_gracefully(server)
        supervisor.stop()  # drains every worker; they close their journals
        print(
            "cluster shut down {}".format(
                "cleanly" if drained else "with requests still in flight"
            ),
            file=out,
        )
        _finish_jsonl(tracer, args, out)
    return 0


def _replay_options(args):
    """Factories + session kwargs matching what ``repro serve`` runs, so
    replay reconstructs the server's sessions byte-identically (virtual
    clocks make ``--latency`` part of the recording's determinism — use
    the same value the server ran with)."""
    return {
        "make_host_impls": web_host_impls,
        "make_services": lambda: make_services(latency=args.latency),
        "session_kwargs": {
            "reuse_boxes": True,
            "memo_render": True,
            "fault_policy": "record",
            "supervised": True,
        },
    }


def cmd_replay(args, out):
    from .provenance import TimeMachine, divergence_report, replay_session
    from .resilience.journal import Journal

    journal = Journal(args.journal_dir)
    options = _replay_options(args)
    if args.source is not None:
        # Trace replay against edited code: the regression question
        # "does my edit change what the user saw?".  Exit status is the
        # answer, so CI can gate on it.
        report = divergence_report(
            journal, _load_source(args.source), token=args.token, **options
        )
        print(str(report), file=out)
        return 0 if report.clean else 1
    if args.to_seq is not None:
        machine = TimeMachine(
            journal, args.token,
            use_checkpoints=not args.no_checkpoint, **options
        )
        machine.goto_seq(args.to_seq)
        result = machine.last_replay
        print(
            "state as of journal seq {} (position {}/{}, {} event{} "
            "replayed{}):".format(
                args.to_seq, machine.position, len(machine) - 1,
                result.events_replayed,
                "" if result.events_replayed == 1 else "s",
                "" if result.checkpoint_seq is None
                else " from checkpoint seq {}".format(result.checkpoint_seq),
            ),
            file=out,
        )
        print(machine.screenshot(width=args.width), file=out)
        return 0
    result = replay_session(
        journal, args.token,
        use_checkpoint=not args.no_checkpoint, **options
    )
    print(
        "replayed {} event{}{} ({} fault{} re-encountered):".format(
            result.events_replayed,
            "" if result.events_replayed == 1 else "s",
            "" if result.checkpoint_seq is None
            else " from checkpoint seq {}".format(result.checkpoint_seq),
            result.faults, "" if result.faults == 1 else "s",
        ),
        file=out,
    )
    print(result.session.screenshot(width=args.width), file=out)
    return 0


def cmd_repair(args, out):
    """``repro repair JOURNAL_DIR``: search a recorded session for
    validated fixes, offline (the same searcher the server runs when an
    update rolls back — see docs/RESILIENCE.md, "Live repair")."""
    from .provenance import replay_to
    from .repair import RepairBudget, changed_decl_names, search_repairs
    from .resilience.journal import Journal

    journal = Journal(args.journal_dir)
    options = _replay_options(args)
    result = replay_to(journal, args.token, **options)
    session, token = result.session, result.token
    last_good = session._undo_stack[-1] if session._undo_stack else None
    faulting = session.source
    rolled_back = last_good is not None and faulting != last_good
    suspects = (
        changed_decl_names(last_good, faulting) if rolled_back else ()
    )
    faults = session.runtime.faults
    report = search_repairs(
        journal, token,
        faulting_source=faulting,
        last_good_source=last_good if rolled_back else None,
        suspects=suspects,
        trigger="rollback" if rolled_back else "manual",
        fault=faults[-1] if faults else None,
        budget=RepairBudget(
            max_candidates=args.max_candidates,
            wall_seconds=args.wall,
            window=args.window,
        ),
        **options
    )
    print(
        "searched {} of {} candidate{} in {:.2f}s ({}){}:".format(
            report.searched, report.generated,
            "" if report.generated == 1 else "s",
            report.wall_seconds, report.trigger,
            " — budget exhausted" if report.budget_exhausted else "",
        ),
        file=out,
    )
    for c in report.candidates:
        print(
            "  #{:<2} {} {:<16} {}  (events {}/{}, edit size {})".format(
                c.rank, "+" if c.validated else " ", c.kind,
                c.description, c.events_ok, c.events_replayed, c.edit_size,
            ),
            file=out,
        )
    if not report.found:
        print("no validated repair within budget", file=out)
        return 1
    if args.apply is not None:
        candidate = report.candidate(args.apply)
        if args.output == "-":
            out.write(candidate.source)
            if not candidate.source.endswith("\n"):
                out.write("\n")
        else:
            with open(args.output, "w") as handle:
                handle.write(candidate.source)
            print(
                "wrote repair #{} ({}) to {}".format(
                    candidate.rank, candidate.description, args.output
                ),
                file=out,
            )
    return 0


def cmd_why(args, out):
    from .provenance import why
    from .resilience.journal import Journal

    path = None
    if args.path is not None:
        try:
            path = tuple(
                int(part) for part in args.path.split("/") if part != ""
            )
        except ValueError:
            raise ReproError(
                "--path must be slash-separated indices, e.g. 0/1"
            )
    report = why(
        Journal(args.journal_dir), args.token,
        path=path, text=args.text, **_replay_options(args)
    )
    print(str(report), file=out)
    return 0


def cmd_ide(args, out):
    from .ui_tk import TkLiveViewer, tk_available

    if not tk_available():
        print("tkinter is not available in this environment", file=out)
        return 1
    tracer = _make_tracer(args)
    viewer = TkLiveViewer(_session(args.file, args.latency, tracer=tracer))
    viewer.run()
    _finish_jsonl(tracer, args, out)
    return 0


class _ActionCollector(argparse.Action):
    """Collect --tap/--edit/--back in the order they appear."""

    def __call__(self, parser, namespace, values, option_string=None):
        kind = option_string.lstrip("-")
        namespace.actions.append((kind, values))


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Live UI programming — PLDI 2013 reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, actions=False, file_optional=False):
        if file_optional:
            p.add_argument(
                "file", nargs="?", default=None,
                help="surface-language source file",
            )
        else:
            p.add_argument("file", help="surface-language source file")
        p.add_argument(
            "--latency", type=float, default=DEFAULT_LATENCY,
            help="simulated web latency in virtual seconds",
        )
        p.add_argument("--width", type=int, default=48)
        if actions:
            p.set_defaults(actions=[])
            p.add_argument(
                "--tap", action=_ActionCollector, metavar="TEXT",
                help="tap the box showing TEXT (repeatable)",
            )
            p.add_argument(
                "--edit", action=_ActionCollector, metavar="TEXT=NEW",
                help="type NEW into the editable box showing TEXT",
            )
            p.add_argument(
                "--back", action=_ActionCollector, nargs=0,
                help="press the back button",
            )

    p_check = sub.add_parser("check", help="typecheck a program")
    p_check.add_argument("file")
    p_check.set_defaults(handler=cmd_check)

    p_compile = sub.add_parser("compile", help="print the lowered core")
    p_compile.add_argument("file")
    p_compile.set_defaults(handler=cmd_compile)

    def jsonl_option(p):
        p.add_argument(
            "--trace-jsonl", metavar="PATH", default=None,
            help="stream spans + metrics as JSON lines to PATH",
        )

    def backend_option(p):
        p.add_argument(
            "--backend", choices=("tree", "compiled"), default=None,
            help="evaluator backend: 'tree' walks the AST (the default "
                 "and the oracle), 'compiled' lowers each code version "
                 "to Python closures once (docs/PERF.md)",
        )

    p_run = sub.add_parser("run", help="run and screenshot a program")
    common(p_run, actions=True)
    backend_option(p_run)
    p_run.add_argument("--trace", action="store_true",
                       help="print the fired transitions")
    jsonl_option(p_run)
    p_run.set_defaults(handler=cmd_run)

    p_trace = sub.add_parser(
        "trace",
        help="run a scripted interaction (or replay a journal) and "
             "print the span tree + metrics",
    )
    common(p_trace, actions=True, file_optional=True)
    p_trace.add_argument(
        "--journal", metavar="DIR", default=None,
        help="derive the trace by replaying a recorded journal "
             "instead of running FILE",
    )
    p_trace.add_argument(
        "--token", default=None,
        help="session token inside the journal (default: only session)",
    )
    p_trace.add_argument(
        "--cluster", metavar="URL", default=None,
        help="stitch the cross-process span tree of one request "
             "against a running cluster front at URL",
    )
    p_trace.add_argument(
        "--trace-id", default=None,
        help="with --cluster: fetch this trace instead of driving a "
             "fresh create+render",
    )
    jsonl_option(p_trace)
    p_trace.set_defaults(handler=cmd_trace)

    p_top = sub.add_parser(
        "top",
        help="live dashboard over a running server's /metrics "
             "(req/s, per-op p50/p95, worker liveness, cache hit rate)",
    )
    p_top.add_argument(
        "url", help="server base URL (or its /metrics URL directly)"
    )
    p_top.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between scrapes (default 2)",
    )
    p_top.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="draw N frames then exit (default: run until Ctrl-C)",
    )
    p_top.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of redrawing the screen",
    )
    p_top.set_defaults(handler=cmd_top)

    p_replay = sub.add_parser(
        "replay",
        help="deterministically replay a journaled session; time-travel "
             "with --to-seq, diff against edited code with --source",
    )
    p_replay.add_argument("journal_dir", help="journal directory")
    p_replay.add_argument(
        "--token", default=None,
        help="session token inside the journal (default: only session)",
    )
    p_replay.add_argument(
        "--source", metavar="FILE", default=None,
        help="replay the trace under this edited program and print a "
             "divergence report (exit 1 when displays diverge)",
    )
    p_replay.add_argument(
        "--to-seq", type=int, default=None, metavar="N",
        help="stop at journal seq N and screenshot that moment",
    )
    p_replay.add_argument(
        "--no-checkpoint", action="store_true",
        help="force a cold replay from the create record",
    )
    p_replay.add_argument(
        "--latency", type=float, default=DEFAULT_LATENCY,
        help="simulated web latency the recording ran with",
    )
    p_replay.add_argument("--width", type=int, default=48)
    p_replay.set_defaults(handler=cmd_replay)

    p_why = sub.add_parser(
        "why",
        help="explain a rendered box: code span, store slots read and "
             "the journal events that produced their values",
    )
    p_why.add_argument("journal_dir", help="journal directory")
    p_why.add_argument(
        "--token", default=None,
        help="session token inside the journal (default: only session)",
    )
    p_why.add_argument(
        "--path", default=None, metavar="P",
        help="display path of the box, slash-separated (e.g. 0 or 1/2)",
    )
    p_why.add_argument(
        "--text", default=None,
        help="select the box by its rendered text instead of a path",
    )
    p_why.add_argument(
        "--latency", type=float, default=DEFAULT_LATENCY,
        help="simulated web latency the recording ran with",
    )
    p_why.set_defaults(handler=cmd_why)

    p_repair = sub.add_parser(
        "repair",
        help="search a journaled session for validated candidate fixes "
             "(delete / hole / revert edits, ranked; docs/RESILIENCE.md)",
    )
    p_repair.add_argument("journal_dir", help="journal directory")
    p_repair.add_argument(
        "--token", default=None,
        help="session token inside the journal (default: only session)",
    )
    p_repair.add_argument(
        "--max-candidates", type=int, default=12, metavar="N",
        help="candidate budget for the search (default 12)",
    )
    p_repair.add_argument(
        "--wall", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the whole search (default: none)",
    )
    p_repair.add_argument(
        "--window", type=int, default=20, metavar="N",
        help="recent journaled events re-driven per candidate (default 20)",
    )
    p_repair.add_argument(
        "--apply", type=int, default=None, metavar="RANK",
        help="emit the ranked candidate's full source (see --output)",
    )
    p_repair.add_argument(
        "-o", "--output", default="-",
        help="where --apply writes the repaired source (default stdout)",
    )
    p_repair.add_argument(
        "--latency", type=float, default=DEFAULT_LATENCY,
        help="simulated web latency the recording ran with",
    )
    p_repair.set_defaults(handler=cmd_repair)

    p_html = sub.add_parser("html", help="render the display to HTML")
    common(p_html, actions=True)
    p_html.add_argument("-o", "--output", default="-")
    p_html.set_defaults(handler=cmd_html)

    p_probe = sub.add_parser("probe", help="evaluate an expression")
    common(p_probe)
    p_probe.add_argument("expression")
    p_probe.set_defaults(handler=cmd_probe)

    p_fmt = sub.add_parser("fmt", help="canonically format a program")
    p_fmt.add_argument("file")
    p_fmt.add_argument("-i", "--in-place", action="store_true")
    p_fmt.set_defaults(handler=cmd_fmt)

    p_save = sub.add_parser(
        "save", help="run, interact, and save a session image"
    )
    common(p_save, actions=True)
    p_save.add_argument("-o", "--output", required=True)
    p_save.set_defaults(handler=cmd_save)

    p_resume = sub.add_parser(
        "resume", help="load a session image (optionally with new source)"
    )
    p_resume.add_argument("image")
    p_resume.add_argument(
        "--source", help="override the image's source (edit-while-suspended)"
    )
    p_resume.add_argument("--latency", type=float, default=DEFAULT_LATENCY)
    p_resume.add_argument("--width", type=int, default=48)
    p_resume.set_defaults(handler=cmd_resume)

    p_ide = sub.add_parser("ide", help="open the tkinter live viewer")
    common(p_ide)
    jsonl_option(p_ide)
    p_ide.set_defaults(handler=cmd_ide)

    p_serve = sub.add_parser(
        "serve",
        help="run the multi-session JSON API server (see docs/SERVER.md)",
    )
    p_serve.add_argument("file", help="default app served to create requests")
    p_serve.add_argument(
        "--port", type=int, default=8737,
        help="TCP port (0 picks an ephemeral port)",
    )
    p_serve.add_argument("--bind", default="127.0.0.1")
    p_serve.add_argument(
        "--pool-size", type=int, default=16,
        help="resident sessions before LRU eviction to session images",
    )
    p_serve.add_argument(
        "--port-file", metavar="PATH", default=None,
        help="write the bound port to PATH (for scripts using --port 0)",
    )
    p_serve.add_argument(
        "--latency", type=float, default=DEFAULT_LATENCY,
        help="simulated web latency in virtual seconds",
    )
    p_serve.add_argument(
        "--journal-dir", metavar="PATH", default=None,
        help="write-ahead journal + checkpoints here; on boot, recover "
             "every journaled session (docs/RESILIENCE.md)",
    )
    p_serve.add_argument(
        "--checkpoint-every", type=int, default=50,
        help="journaled events per session between image checkpoints",
    )
    p_serve.add_argument(
        "--journal-fsync", choices=("none", "interval", "always"),
        default="none",
        help="journal durability: 'none' trusts the OS page cache "
             "(default; survives process death), 'interval' fsyncs at "
             "most once a second, 'always' fsyncs every append "
             "(survives machine death, costs latency)",
    )
    p_serve.add_argument(
        "--repair", action="store_true",
        help="live repair (repro.repair): when an update rolls back or "
             "a breaker opens, search candidate fixes on a background "
             "thread and surface them on the repair op",
    )
    p_serve.add_argument(
        "--fault-policy", choices=("record", "raise"), default="record",
        help="'record' keeps faulting sessions alive with a fault "
             "screen; 'raise' surfaces faults as typed protocol errors",
    )
    p_serve.add_argument(
        "--fuel", type=int, default=DEFAULT_FUEL,
        help="evaluation fuel per transition (FuelExhausted beyond it)",
    )
    p_serve.add_argument(
        "--deadline", type=float, default=None,
        help="virtual-seconds budget per transition "
             "(DeadlineExceeded beyond it)",
    )
    p_serve.add_argument(
        "--quarantine-after", type=int, default=3,
        help="consecutive faults before a session's circuit breaker "
             "opens (it then serves its last-good display, degraded)",
    )
    p_serve.add_argument(
        "--cluster-workers", type=int, default=0, metavar="N",
        help="shard the host across N worker processes behind one HTTP "
             "front (repro.cluster): consistent-hash routing, per-worker "
             "write-ahead journals, kill-9-proof respawn, and a shared "
             "cross-session memo cache; --journal-dir anchors the "
             "per-worker journals (0 = single-process)",
    )
    p_serve.add_argument(
        "--no-shared-cache", action="store_true",
        help="cluster mode only: disable the cross-process memo cache",
    )
    backend_option(p_serve)
    jsonl_option(p_serve)
    p_serve.set_defaults(handler=cmd_serve)

    return parser


def main(argv=None, out=None):
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args, out)
    except (SyntaxProblem, TypeProblem) as problem:
        print("error: {}".format(problem), file=out)
        return 1
    except ReproError as error:
        print("error: {}".format(error), file=out)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
