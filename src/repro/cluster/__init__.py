"""repro.cluster — sharded multi-process serving with a shared memo cache.

The single-process server (:mod:`repro.serve`) hosts many sessions in
one process; this package shards that host across N worker processes:

* :mod:`.ring` — consistent hashing, token → worker slot;
* :mod:`.transport` — length-prefixed frames over stdlib TCP;
* :mod:`.worker` — one :class:`~repro.serve.host.SessionHost` behind a
  frame socket, write-ahead journaled, ``python -m``-spawnable;
* :mod:`.supervisor` — spawns/watches/revives workers, rebalances
  tokens on retire, runs the shared memo cache server;
* :mod:`.memoshare` — the cross-process memo tier
  (:class:`~repro.cluster.memoshare.TieredMemoStore`);
* :mod:`.frontend` — the HTTP-facing router.

``kill -9`` of any worker is invisible beyond latency: the slot's
write-ahead journal (:mod:`repro.resilience`) rebuilds every session in
the respawn, byte-identical, with strictly increasing display
generations.  Sessions running the same app warm each other through
the shared digest-keyed memo cache — within a worker via one
:class:`~repro.incremental.store.MemoStore`, across workers via the
supervisor's :class:`~repro.cluster.memoshare.CacheServer`.
"""

from .frontend import ClusterRouter, WorkerUnavailable
from .memoshare import CacheClient, CacheServer, TieredMemoStore
from .ring import HashRing
from .supervisor import ClusterSupervisor, WorkerDied
from .transport import FrameClient, FrameServer, TransportError
from .worker import Worker, adopt_session, worker_main

__all__ = [
    "CacheClient",
    "CacheServer",
    "ClusterRouter",
    "ClusterSupervisor",
    "FrameClient",
    "FrameServer",
    "HashRing",
    "TieredMemoStore",
    "TransportError",
    "Worker",
    "WorkerDied",
    "WorkerUnavailable",
    "adopt_session",
    "worker_main",
]
