"""The cluster front: one HTTP face, N workers behind it.

:class:`ClusterRouter` is the routing half of the front process.  It
plugs into the same HTTP layer a single host uses
(:func:`repro.serve.app.make_server` accepts either), decodes nothing
the worker wouldn't: a protocol request is forwarded **verbatim** as a
JSON frame to the worker owning its token on the consistent-hash ring,
and the worker's reply frame is the HTTP response body.  Two ops are
handled at the front:

* ``create`` — the front mints the token itself (so it can hash-route
  the create before any worker holds state) and forwards a create
  *under that token*; the worker-side handler is idempotent per token,
  which makes crash-retry of a create safe;
* ``stats`` — aggregated across workers: summed session counts, summed
  *counters* (gauges are reported as per-worker series, never summed),
  per-worker breakdowns, cache-tier stats and the cluster's own
  counters; a ``trace_id`` field makes it double as the trace fetch —
  the response carries the stitched cross-process span tree.

Every forwarded request is stamped with a fresh ``trace_id`` and the
front's op span id (the ``"_trace"`` frame header); worker spans open
under that id, so one request is one tree across three processes, and
the HTTP response's ``trace_id`` is the client's handle on it.  The
front also satisfies the HTTP layer's ``metrics_text()`` hook: ``GET
/metrics`` is the fleet-wide Prometheus document, per-worker snapshots
pulled over the internal ``__metrics__`` op and merged kind-correctly.

``__``-prefixed ops (``__status__``/``__drain__``/``__adopt__``) are
the supervisor's private vocabulary — the front refuses them with a
typed ``BadRequest``, so the public HTTP surface cannot reach them.

**Failure handling** is revive-and-retry: a transport error on a
forward means the worker died, so the front asks the supervisor to
respawn the slot (journal recovery makes the replacement complete) and
retries the request once.  Delivery is therefore *at-least-once*: an op
executed but unacknowledged at crash time may run twice — the same
contract crash recovery itself has, since the write-ahead journal
replays exactly such ops.  Acknowledged state is never lost either way.
"""

from __future__ import annotations

import os
import secrets

from ..core.errors import ReproError
from ..obs.histo import Histogram
from ..obs.metrics import render_prometheus
from ..obs.sinks import filter_trace
from ..obs.trace import GAUGES, clock
from ..serve.protocol import (
    PROTOCOL_VERSION, BadRequest, error_response, _OPS,
)
from .supervisor import WorkerDied
from .transport import TransportError, decode_json, encode_json


class WorkerUnavailable(ReproError):
    """The owning worker is down and could not be revived in time."""


#: Ops the front answers itself rather than forwarding.
_FRONT_OPS = ("create", "stats")


class ClusterRouter:
    """Routes decoded protocol requests to workers; aggregates stats.

    Satisfies the same face contract :class:`repro.serve.app._HostFace`
    does — ``dispatch`` / ``healthz`` / ``tracer`` — so the HTTP layer
    is identical for one host or a fleet.
    """

    def __init__(self, supervisor):
        self.supervisor = supervisor
        self.tracer = supervisor.tracer
        if self.tracer.enabled and self.tracer.id_prefix is None:
            # Make front span ids self-describing next to the workers'
            # ("f8912-3" beside "w0.8920-17") in a stitched trace.
            self.tracer.id_prefix = "f{}".format(os.getpid())

    def _count(self, name, amount=1):
        self.supervisor._count(name, amount)

    # -- the face contract --------------------------------------------------

    def dispatch(self, request):
        try:
            return self._dispatch(request)
        except ReproError as error:
            op = request.get("op") if isinstance(request, dict) else None
            return error_response(op, error, tracer=self.tracer)

    def healthz(self):
        return self.supervisor.healthz()

    def drain(self):
        """Stop the whole fleet gracefully (the HTTP layer's shutdown)."""
        self.supervisor.stop()

    # -- routing ------------------------------------------------------------

    def _dispatch(self, request):
        if not isinstance(request, dict):
            raise BadRequest("request must be a JSON object")
        op = request.get("op")
        if isinstance(op, str) and op.startswith("__"):
            raise BadRequest(
                "op {!r} is cluster-internal".format(op)
            )
        version = request.get("protocol", PROTOCOL_VERSION)
        if version != PROTOCOL_VERSION:
            raise BadRequest(
                "unsupported protocol version {!r} (this server speaks "
                "{})".format(version, PROTOCOL_VERSION)
            )
        if op not in _OPS:
            raise BadRequest(
                "unknown op {!r}; valid ops: {}".format(
                    op, ", ".join(sorted(_OPS))
                )
            )
        if op == "stats":
            return self._stats(request)
        # Every routed request gets a trace identity at the front: the
        # trace_id names the end-to-end request, and the front's op span
        # id rides along as the remote parent for the worker's spans.
        trace_id = "t-" + secrets.token_hex(6)
        span = (self.tracer.span("op.{}".format(op), trace_id=trace_id)
                if self.tracer.enabled else None)
        started = clock()
        try:
            trace = {
                "id": trace_id,
                "parent": span.span_id if span is not None else None,
            }
            if op == "create":
                response = self._create(request, trace)
            else:
                token = request.get("token")
                if not isinstance(token, str) or not token:
                    raise BadRequest(
                        "op {!r} requires field 'token'".format(op)
                    )
                response = self._forward(
                    self.supervisor.slot_for(token), request, trace
                )
        finally:
            if span is not None:
                span.finish()
                # "front.op.*" (client-facing: routing + transport +
                # worker) stays a separate family from the workers'
                # "op.*" (service time only) so merging per-worker
                # snapshots never mixes the two distributions.
                self.tracer.observe(
                    "front.op.{}".format(op), clock() - started
                )
        if isinstance(response, dict):
            # Clients (and the metrics-smoke test) correlate their
            # request with the cluster-wide trace through this id.
            response.setdefault("trace_id", trace_id)
        return response

    def _create(self, request, trace=None):
        token = request.get("token")
        if token is None:
            request = dict(request)
            token = request["token"] = "s-" + secrets.token_hex(8)
        elif not isinstance(token, str) or not token:
            raise BadRequest("create: 'token' must be a string")
        return self._forward(self.supervisor.slot_for(token), request, trace)

    def _forward(self, slot, request, trace=None):
        if trace is not None:
            request = dict(request)
            request["_trace"] = trace
        payload = encode_json(request)
        started = clock()
        try:
            reply = self.supervisor.pool_for(slot).request(payload)
        except TransportError:
            # The worker died under us.  Respawn the slot (recovery
            # replays its journal, so the replacement already holds
            # every acknowledged mutation) and retry exactly once.
            self._count("cluster.worker_retries")
            try:
                self.supervisor.revive(slot)
                reply = self.supervisor.pool_for(slot).request(payload)
            except (TransportError, WorkerDied, ReproError) as error:
                raise WorkerUnavailable(
                    "worker {} is unavailable: {}".format(slot, error)
                ) from error
        finally:
            if self.tracer.enabled:
                self.tracer.observe("frame.roundtrip", clock() - started)
        self._count("cluster.requests_routed")
        return decode_json(reply)

    # -- aggregation --------------------------------------------------------

    def _stats(self, request=None):
        worker_stats = self.supervisor.worker_stats()
        totals = {"sessions": 0, "resident": 0, "evicted": 0,
                  "quarantined": 0}
        metrics = {}
        gauges = {}
        for slot, stats in worker_stats.items():
            if not isinstance(stats, dict):
                continue
            for key in totals:
                value = stats.get(key)
                if isinstance(value, (int, float)):
                    totals[key] += value
            # Counters sum across workers; gauges must not (four
            # workers' update_reuse_ratio added together is a nonsense
            # ratio above 1.0) — they become per-worker series instead.
            worker_gauges = stats.get("gauges") or {}
            for name, value in (stats.get("metrics") or {}).items():
                if not isinstance(value, (int, float)):
                    continue
                if name in worker_gauges or name in GAUGES:
                    gauges.setdefault(name, {})[str(slot)] = value
                else:
                    metrics[name] = metrics.get(name, 0) + value
        # The cluster's own counters (routed/retries/respawns/...) live
        # on the supervisor's tracer, beside the workers' summed ones.
        for name, value in self.supervisor.metrics().items():
            if not isinstance(value, (int, float)):
                continue
            if name in GAUGES:
                gauges.setdefault(name, {})["front"] = value
            else:
                metrics[name] = metrics.get(name, 0) + value
        stats = dict(totals)
        stats["workers"] = {
            str(slot): s for slot, s in sorted(worker_stats.items())
        }
        if self.supervisor.cache is not None:
            stats["shared_cache"] = self.supervisor.cache.stats()
        stats["metrics"] = metrics
        stats["gauges"] = gauges
        response = {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "op": "stats",
            "stats": stats,
        }
        trace_id = (request or {}).get("trace_id")
        if isinstance(trace_id, str) and trace_id:
            # `stats` doubles as the trace-fetch op: hand back the
            # stitched cross-process span tree for one request.
            response["trace"] = self.trace_spans(trace_id)
        return response

    def trace_spans(self, trace_id):
        """One distributed trace, stitched: the front's spans for
        ``trace_id`` plus every worker's, as serialized span dicts.
        Worker spans parent under front span ids, so rebuilding with
        :func:`repro.obs.spans_from_dicts` +
        :func:`repro.obs.format_span_tree` renders one tree."""
        spans = [
            span.to_dict()
            for span in filter_trace(self.tracer.spans(), trace_id)
        ]
        spans.extend(self.supervisor.worker_traces(trace_id))
        return spans

    def metrics_text(self):
        """The cluster-wide Prometheus document for ``GET /metrics``.

        Per-worker snapshots are pulled over the internal
        ``__metrics__`` frame op and merged here: counters by sum,
        histograms bucket-wise (the merged p95 is exactly the p95 of
        the union of observations, to bucket resolution), gauges as
        labeled per-worker series — never summed.
        """
        counters, gauges, histograms = (
            self.supervisor.observability_snapshot()
        )
        gauges = {
            name: {"front": value}
            for name, value in gauges.items()
            if isinstance(value, (int, float))
        }
        for slot, payload in sorted(
            self.supervisor.worker_metrics().items()
        ):
            label = str(slot)
            for name, value in (payload.get("counters") or {}).items():
                if isinstance(value, (int, float)):
                    counters[name] = counters.get(name, 0) + value
            for name, value in (payload.get("gauges") or {}).items():
                if isinstance(value, (int, float)):
                    gauges.setdefault(name, {})[label] = value
            for name, data in (payload.get("histograms") or {}).items():
                try:
                    histogram = Histogram.from_dict(data)
                except (ValueError, TypeError):
                    continue  # foreign schema: refuse, don't mis-merge
                if name in histograms:
                    histograms[name].merge(histogram)
                else:
                    histograms[name] = histogram
        gauges.update(self.supervisor.slot_gauges())
        if self.supervisor.cache is not None:
            # The shared memo tier lives in the front process: its
            # cumulative counts are ordinary counters, its occupancy a
            # gauge.
            cache_stats = self.supervisor.cache.stats()
            for key in ("gets", "hits", "puts", "evictions",
                        "lease_waits", "lease_hits"):
                counters["cluster.cache.{}".format(key)] = cache_stats[key]
            gauges["cluster.cache.entries"] = {
                "front": cache_stats["entries"]
            }
        return render_prometheus(
            counters=counters, gauges=gauges, histograms=histograms
        )
