"""The cluster front: one HTTP face, N workers behind it.

:class:`ClusterRouter` is the routing half of the front process.  It
plugs into the same HTTP layer a single host uses
(:func:`repro.serve.app.make_server` accepts either), decodes nothing
the worker wouldn't: a protocol request is forwarded **verbatim** as a
JSON frame to the worker owning its token on the consistent-hash ring,
and the worker's reply frame is the HTTP response body.  Two ops are
handled at the front:

* ``create`` — the front mints the token itself (so it can hash-route
  the create before any worker holds state) and forwards a create
  *under that token*; the worker-side handler is idempotent per token,
  which makes crash-retry of a create safe;
* ``stats`` — aggregated across workers: summed session counts, summed
  numeric metrics, per-worker breakdowns, cache-tier stats and the
  cluster's own counters.

``__``-prefixed ops (``__status__``/``__drain__``/``__adopt__``) are
the supervisor's private vocabulary — the front refuses them with a
typed ``BadRequest``, so the public HTTP surface cannot reach them.

**Failure handling** is revive-and-retry: a transport error on a
forward means the worker died, so the front asks the supervisor to
respawn the slot (journal recovery makes the replacement complete) and
retries the request once.  Delivery is therefore *at-least-once*: an op
executed but unacknowledged at crash time may run twice — the same
contract crash recovery itself has, since the write-ahead journal
replays exactly such ops.  Acknowledged state is never lost either way.
"""

from __future__ import annotations

import secrets

from ..core.errors import ReproError
from ..serve.protocol import (
    PROTOCOL_VERSION, BadRequest, error_response, _OPS,
)
from .supervisor import WorkerDied
from .transport import TransportError, decode_json, encode_json


class WorkerUnavailable(ReproError):
    """The owning worker is down and could not be revived in time."""


#: Ops the front answers itself rather than forwarding.
_FRONT_OPS = ("create", "stats")


class ClusterRouter:
    """Routes decoded protocol requests to workers; aggregates stats.

    Satisfies the same face contract :class:`repro.serve.app._HostFace`
    does — ``dispatch`` / ``healthz`` / ``tracer`` — so the HTTP layer
    is identical for one host or a fleet.
    """

    def __init__(self, supervisor):
        self.supervisor = supervisor
        self.tracer = supervisor.tracer

    def _count(self, name, amount=1):
        self.supervisor._count(name, amount)

    # -- the face contract --------------------------------------------------

    def dispatch(self, request):
        try:
            return self._dispatch(request)
        except ReproError as error:
            op = request.get("op") if isinstance(request, dict) else None
            return error_response(op, error, tracer=self.tracer)

    def healthz(self):
        return self.supervisor.healthz()

    def drain(self):
        """Stop the whole fleet gracefully (the HTTP layer's shutdown)."""
        self.supervisor.stop()

    # -- routing ------------------------------------------------------------

    def _dispatch(self, request):
        if not isinstance(request, dict):
            raise BadRequest("request must be a JSON object")
        op = request.get("op")
        if isinstance(op, str) and op.startswith("__"):
            raise BadRequest(
                "op {!r} is cluster-internal".format(op)
            )
        version = request.get("protocol", PROTOCOL_VERSION)
        if version != PROTOCOL_VERSION:
            raise BadRequest(
                "unsupported protocol version {!r} (this server speaks "
                "{})".format(version, PROTOCOL_VERSION)
            )
        if op not in _OPS:
            raise BadRequest(
                "unknown op {!r}; valid ops: {}".format(
                    op, ", ".join(sorted(_OPS))
                )
            )
        if op == "stats":
            return self._stats()
        if op == "create":
            return self._create(request)
        token = request.get("token")
        if not isinstance(token, str) or not token:
            raise BadRequest(
                "op {!r} requires field 'token'".format(op)
            )
        return self._forward(self.supervisor.slot_for(token), request)

    def _create(self, request):
        token = request.get("token")
        if token is None:
            request = dict(request)
            token = request["token"] = "s-" + secrets.token_hex(8)
        elif not isinstance(token, str) or not token:
            raise BadRequest("create: 'token' must be a string")
        return self._forward(self.supervisor.slot_for(token), request)

    def _forward(self, slot, request):
        payload = encode_json(request)
        try:
            reply = self.supervisor.pool_for(slot).request(payload)
        except TransportError:
            # The worker died under us.  Respawn the slot (recovery
            # replays its journal, so the replacement already holds
            # every acknowledged mutation) and retry exactly once.
            self._count("cluster.worker_retries")
            try:
                self.supervisor.revive(slot)
                reply = self.supervisor.pool_for(slot).request(payload)
            except (TransportError, WorkerDied, ReproError) as error:
                raise WorkerUnavailable(
                    "worker {} is unavailable: {}".format(slot, error)
                ) from error
        self._count("cluster.requests_routed")
        return decode_json(reply)

    # -- aggregation --------------------------------------------------------

    def _stats(self):
        worker_stats = self.supervisor.worker_stats()
        totals = {"sessions": 0, "resident": 0, "evicted": 0,
                  "quarantined": 0}
        metrics = {}
        for stats in worker_stats.values():
            if not isinstance(stats, dict):
                continue
            for key in totals:
                value = stats.get(key)
                if isinstance(value, (int, float)):
                    totals[key] += value
            for name, value in (stats.get("metrics") or {}).items():
                if isinstance(value, (int, float)):
                    metrics[name] = metrics.get(name, 0) + value
        # The cluster's own counters (routed/retries/respawns/...) live
        # on the supervisor's tracer, beside the workers' summed ones.
        for name, value in self.supervisor.metrics().items():
            if isinstance(value, (int, float)):
                metrics[name] = metrics.get(name, 0) + value
        stats = dict(totals)
        stats["workers"] = {
            str(slot): s for slot, s in sorted(worker_stats.items())
        }
        if self.supervisor.cache is not None:
            stats["shared_cache"] = self.supervisor.cache.stats()
        stats["metrics"] = metrics
        return {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "op": "stats",
            "stats": stats,
        }
