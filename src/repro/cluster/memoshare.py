"""The cross-process memo tier: one cache server, N worker clients.

:class:`~repro.incremental.store.MemoStore` entries are pure facts —
"this digest applied to this argument under these read values produced
these boxes" — so nothing about them is process-local.  This module
serves them across the cluster: the supervisor process runs a
:class:`CacheServer` (a pickle-over-frames key/value LRU), and each
worker's :class:`TieredMemoStore` backs its in-process store (L1) with
the server (L2).  The first worker to render a program's frame pays for
it; every other worker imports the entry instead of re-executing — the
cluster-wide version of "N sessions running the same app warm each
other".

**Version hygiene.**  Store write-version ticks are only unique within
one process, so an imported entry's read stamps are meaningless in the
importing process — every slot is re-stamped ``-1`` on import, which can
never equal a real version, forcing the first probe down the value-
compare path (and re-stamping locally on success).  Entries on the
server carry the server's **epoch**: ``clear`` (the native-rebind nuke)
bumps it, and every entry from an older epoch is lazily rejected — a
stale entry can never be re-imported after an invalidation.

**Key encoding.**  Memo keys are ``(digest, argument value)`` tuples of
program values; they cross the process boundary as their pickle bytes.
Pickle is not canonical in general, but for these value types it is
deterministic in practice — and the failure mode of a non-matching
encoding is a spurious *miss* (the entry is re-executed and
re-published), never a spurious hit: correctness stays with the
digest + read-set validation, the bytes are only a cache address.

The hot path stays cheap: ``get`` consults L2 only on an L1 miss, and
``put`` publishes through a background thread — a render never blocks
on the cache server's socket.
"""

from __future__ import annotations

import pickle
import queue
import threading
import time
from collections import OrderedDict

from ..core.errors import ReproError
from ..incremental.store import REMOTE_ORIGIN, MemoStore
from ..obs.trace import NULL_TRACER, clock
from .transport import ClientPool, FrameServer, TransportError

_PROTOCOL = pickle.HIGHEST_PROTOCOL


class CacheServer:
    """The shared tier: a bounded LRU of pickled memo entries.

    Requests and replies are pickled tuples::

        ("get", key_bytes)         -> ("hit", blob) | ("miss",)
        ("put", key_bytes, blob)   -> ("ok",)
        ("put_many", [(key, blob)…]) -> ("ok",)
        ("clear",)                 -> ("ok",)
        ("stats",)                 -> ("stats", {...})

    Entries are stored with the epoch current at put time; ``clear``
    bumps the epoch, invalidating everything in O(1) — stale entries
    are evicted lazily as gets touch them.

    **Single-flight leases.**  When a fleet opens the same app on every
    worker at once, each worker's cold render would miss on the same
    keys and redundantly recompute them.  The first ``get`` to miss a
    key takes a *lease* (and computes); concurrent ``get``\\ s for the
    leased key wait up to ``lease_timeout`` for the holder's publish
    and usually leave with a hit.  A holder that never publishes (death,
    unpicklable entry) just lets the lease expire — waiters fall back
    to a miss and compute themselves; the lease is a latency hint, not
    a lock anyone can be stuck on.
    """

    def __init__(self, max_entries=65536, bind="127.0.0.1", port=0,
                 lease_timeout=0.25, tracer=None):
        if max_entries < 1:
            raise ReproError("max_entries must be at least 1")
        self._entries = OrderedDict()   # key bytes -> (epoch, blob)
        self._max_entries = max_entries
        self._lock = threading.Lock()
        self._epoch = 1
        self._leases = {}               # key bytes -> (Event, taken_at)
        self.lease_timeout = lease_timeout
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.gets = 0
        self.hits = 0
        self.puts = 0
        self.evictions = 0
        self.lease_waits = 0
        self.lease_hits = 0
        self._server = FrameServer(self._handle, bind=bind, port=port)

    @property
    def address(self):
        return self._server.address

    def start(self):
        self._server.start()
        return self

    def stop(self, drain_timeout=2.0):
        return self._server.stop(drain_timeout=drain_timeout)

    # -- request handling ---------------------------------------------------

    def _handle(self, payload):
        started = clock()
        try:
            request = pickle.loads(payload)
            kind = request[0]
            if kind == "get":
                reply = self._get(request[1])
            elif kind == "put":
                reply = self._put(request[1], request[2])
            elif kind == "put_many":
                for key, blob in request[1]:
                    reply = self._put(key, blob)
            elif kind == "clear":
                reply = self._clear()
            elif kind == "stats":
                reply = ("stats", self.stats())
            else:
                reply = ("error", "unknown request {!r}".format(kind))
        except Exception as error:  # a bad frame must not kill the tier
            reply = ("error", "{}: {}".format(type(error).__name__, error))
        if self.tracer.enabled:
            # Server-side service time — the front's half of the cache
            # latency story (the workers' halves are cache.get/cache.put).
            self.tracer.observe("cache.server", clock() - started)
        return pickle.dumps(reply, _PROTOCOL)

    def _get(self, key):
        with self._lock:
            self.gets += 1
            hit = self._lookup(key)
            if hit is not None:
                return hit
            now = time.monotonic()
            lease = self._leases.get(key)
            if lease is None or now - lease[1] > self.lease_timeout:
                # First (or re-)claimant: compute it, we'll wait on you.
                self._leases[key] = (threading.Event(), now)
                return ("miss",)
            event, taken_at = lease
            self.lease_waits += 1
            remaining = self.lease_timeout - (now - taken_at)
        # Wait *outside* the lock for the holder's publish; each waiter
        # occupies only its own connection's handler thread.
        event.wait(remaining)
        with self._lock:
            hit = self._lookup(key)
            if hit is not None:
                self.lease_hits += 1
                return hit
            return ("miss",)

    def _lookup(self, key):
        """Hit tuple for a live entry, else ``None`` (lock held)."""
        record = self._entries.get(key)
        if record is None:
            return None
        epoch, blob = record
        if epoch != self._epoch:
            # A pre-clear survivor: reject and drop it for good.
            del self._entries[key]
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return ("hit", blob)

    def _put(self, key, blob):
        with self._lock:
            self.puts += 1
            if (key not in self._entries
                    and len(self._entries) >= self._max_entries):
                self._entries.popitem(last=False)
                self.evictions += 1
            self._entries[key] = (self._epoch, blob)
            self._entries.move_to_end(key)
            lease = self._leases.pop(key, None)
        if lease is not None:
            lease[0].set()  # release waiters to the fresh entry
        return ("ok",)

    def _clear(self):
        with self._lock:
            self._epoch += 1
            self._entries.clear()
            leases, self._leases = self._leases, {}
        for event, _taken_at in leases.values():
            event.set()  # waiters re-check, see nothing, and miss
        return ("ok",)

    def stats(self):
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self._max_entries,
                "epoch": self._epoch,
                "gets": self.gets,
                "hits": self.hits,
                "puts": self.puts,
                "evictions": self.evictions,
                "lease_waits": self.lease_waits,
                "lease_hits": self.lease_hits,
            }


class CacheClient:
    """A worker's connection to the :class:`CacheServer`.

    Gets are synchronous (they gate a render decision); puts ride a
    background publisher thread so the render path never waits on the
    socket.  Any transport failure degrades to cache-off — misses and
    dropped publishes, counted, never raised into the session.
    """

    def __init__(self, address, pool_size=2, timeout=5.0, tracer=None):
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._pool = ClientPool(address, size=pool_size, timeout=timeout)
        self._publish_queue = queue.Queue(maxsize=1024)
        self._publisher = threading.Thread(
            target=self._publish_loop, name="memo-publisher", daemon=True
        )
        self._publisher.start()
        self._closed = False

    def _roundtrip(self, request):
        payload = pickle.dumps(request, _PROTOCOL)
        reply = pickle.loads(self._pool.request(payload))
        if reply and reply[0] == "error":
            raise TransportError("cache server error: {}".format(reply[1]))
        return reply

    def get(self, key_bytes):
        """The pickled entry for ``key_bytes``, or ``None``."""
        started = clock()
        try:
            reply = self._roundtrip(("get", key_bytes))
        except (TransportError, OSError, pickle.PickleError):
            self.tracer.add("cluster.memo.remote_errors")
            return None
        finally:
            if self.tracer.enabled:
                self.tracer.observe("cache.get", clock() - started)
        if reply[0] == "hit":
            return reply[1]
        return None

    def put(self, key_bytes, blob):
        """Queue one publish; drops (counted) when the queue is full."""
        try:
            self._publish_queue.put_nowait((key_bytes, blob))
        except queue.Full:
            self.tracer.add("cluster.memo.publish_errors")

    def _publish_loop(self):
        while True:
            item = self._publish_queue.get()
            if item is None:
                return
            # Coalesce whatever else is already queued into one frame —
            # a cold render publishes dozens of entries back to back,
            # and one round trip per entry is pure scheduling overhead.
            batch = [item]
            while len(batch) < 64:
                try:
                    extra = self._publish_queue.get_nowait()
                except queue.Empty:
                    break
                if extra is None:
                    self._publish_queue.put(None)  # re-arm shutdown
                    break
                batch.append(extra)
            started = clock()
            try:
                if len(batch) == 1:
                    self._roundtrip(("put", batch[0][0], batch[0][1]))
                else:
                    self._roundtrip(("put_many", batch))
                self.tracer.add("cluster.memo.publishes", len(batch))
            except (TransportError, OSError, pickle.PickleError):
                self.tracer.add("cluster.memo.publish_errors", len(batch))
            finally:
                if self.tracer.enabled:
                    self.tracer.observe("cache.put", clock() - started)

    def clear(self):
        try:
            self._roundtrip(("clear",))
        except (TransportError, OSError, pickle.PickleError):
            self.tracer.add("cluster.memo.remote_errors")

    def stats(self):
        try:
            return self._roundtrip(("stats",))[1]
        except (TransportError, OSError, pickle.PickleError):
            return None

    def flush(self, timeout=5.0):
        """Best-effort wait until queued publishes have been sent."""
        deadline = threading.Event()
        # The queue has no join-with-timeout; poll emptiness cheaply.
        import time

        end = time.monotonic() + timeout
        while time.monotonic() < end:
            if self._publish_queue.empty():
                return True
            deadline.wait(0.01)
        return self._publish_queue.empty()

    def close(self):
        if not self._closed:
            self._closed = True
            self._publish_queue.put(None)
            self._pool.close()


class TieredMemoStore(MemoStore):
    """A worker's per-program store with the cache server as L2.

    Local behaviour is exactly :class:`MemoStore` (bounded LRU, thread
    safe).  On a local miss, the remote tier is consulted; an import
    re-stamps every read slot to ``-1`` (force value validation — see
    the module docstring) and tags the entry
    :data:`~repro.incremental.store.REMOTE_ORIGIN` so a later validated
    hit counts as a shared hit.  Every local ``put`` is published
    asynchronously.  ``clear`` nukes both tiers — it only fires on
    native rebinds, which invalidate the program everywhere.
    """

    #: After this many consecutive remote misses the store assumes the
    #: program is cold *everywhere* (it is the first to render) and
    #: stops paying a round trip per probe…
    MISS_STREAK = 8
    #: …except for one probe in every PROBE_EVERY misses, so it notices
    #: as soon as some other worker has published.  Any hit resets.
    PROBE_EVERY = 16

    def __init__(self, client, max_entries=4096, tracer=NULL_TRACER):
        super().__init__(max_entries=max_entries, tracer=tracer)
        self._client = client
        # Benign races: a stale streak read costs one extra round trip.
        self._miss_streak = 0
        self._skipped = 0

    @staticmethod
    def encode_key(key):
        return pickle.dumps(key, _PROTOCOL)

    def get(self, key):
        entry = super().get(key)
        if entry is not None or self._client is None:
            return entry
        try:
            key_bytes = self.encode_key(key)
        except Exception:
            return None  # an unpicklable key cannot live remotely
        if self._miss_streak >= self.MISS_STREAK:
            self._skipped += 1
            if self._skipped % self.PROBE_EVERY:
                self.tracer.add("cluster.memo.remote_skips")
                return None
        blob = self._client.get(key_bytes)
        if blob is None:
            self._miss_streak += 1
            self.tracer.add("cluster.memo.remote_misses")
            return None
        self._miss_streak = 0
        self._skipped = 0
        try:
            entry = pickle.loads(blob)
        except Exception:
            self.tracer.add("cluster.memo.remote_errors")
            return None
        for slot in entry.reads:
            slot[1] = -1  # foreign version stamps never validate by int
        entry.origin = REMOTE_ORIGIN
        super().put(key, entry)
        self.tracer.add("cluster.memo.remote_hits")
        return entry

    def put(self, key, entry):
        super().put(key, entry)
        if self._client is None:
            return
        try:
            key_bytes = self.encode_key(key)
            blob = pickle.dumps(entry, _PROTOCOL)
        except Exception:
            self.tracer.add("cluster.memo.publish_errors")
            return
        self._client.put(key_bytes, blob)

    def clear(self):
        super().clear()
        if self._client is not None:
            self._client.clear()

    def invalidate_natives(self, names):
        """Native rebinds invalidate the program *everywhere*, but the
        remote tier stores opaque blobs and cannot be filtered by call
        set — so the shared tier is cleared wholesale while the local
        tier still gets the precise treatment."""
        names = frozenset(names)
        dropped = super().invalidate_natives(names)
        if names and self._client is not None:
            self._client.clear()
        return dropped

    def stats(self):
        stats = super().stats()
        if self._client is not None:
            stats["remote"] = self._client.stats()
        return stats
