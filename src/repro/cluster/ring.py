"""Consistent hashing: session tokens → worker slots.

The front process must route every request for a token to the *same*
worker (sessions are stateful), and removing a worker must move only
that worker's tokens (rebalance-on-retire must not shuffle the whole
fleet through journal recovery).  A classic consistent-hash ring gives
both: each slot is hashed onto the ring at ``replicas`` points, a token
routes to the first slot point at or clockwise-after its own hash, and
deleting a slot reassigns exactly the arcs that slot owned.

Routing is pure computation over an immutable structure — the front
swaps in a new ring atomically on membership change, so lookups never
take a lock.
"""

from __future__ import annotations

import bisect
import hashlib

from ..core.errors import ReproError


def _hash(text):
    """64-bit ring position for ``text`` (sha256, stable across runs)."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """An immutable consistent-hash ring over worker slot names.

    ``slots`` are arbitrary hashable names (the cluster uses integer
    worker indices).  ``replicas`` virtual points per slot keep the
    token ranges statistically even; 64 bounds the worst slot's share
    within a few percent of fair for small fleets.
    """

    __slots__ = ("_slots", "_points", "_hashes")

    def __init__(self, slots, replicas=64):
        self._slots = tuple(sorted(set(slots), key=str))
        if not self._slots:
            raise ReproError("a HashRing needs at least one slot")
        if replicas < 1:
            raise ReproError("replicas must be at least 1")
        points = []
        for slot in self._slots:
            for replica in range(replicas):
                points.append((_hash("{}#{}".format(slot, replica)), slot))
        points.sort()
        self._points = points
        self._hashes = [point[0] for point in points]

    @property
    def slots(self):
        return self._slots

    def __len__(self):
        return len(self._slots)

    def __contains__(self, slot):
        return slot in self._slots

    def lookup(self, token, exclude=()):
        """The slot owning ``token``; ``exclude`` walks past dead slots.

        With ``exclude``, the token falls to the next *included* slot
        clockwise — the neighbour that would adopt its sessions on a
        permanent retire — so callers can preview or perform rebalance
        without building a new ring.
        """
        excluded = set(exclude)
        live = [slot for slot in self._slots if slot not in excluded]
        if not live:
            raise ReproError("every ring slot is excluded")
        if len(live) == 1:
            return live[0]
        position = bisect.bisect_right(self._hashes, _hash(token))
        for step in range(len(self._points)):
            _point_hash, slot = self._points[
                (position + step) % len(self._points)
            ]
            if slot not in excluded:
                return slot
        raise ReproError("unreachable: no live slot found")  # pragma: no cover

    def without(self, slot):
        """A new ring minus ``slot`` (token moves are exactly its arcs)."""
        if slot not in self._slots:
            raise ReproError("slot {!r} is not on the ring".format(slot))
        remaining = [s for s in self._slots if s != slot]
        replicas = len(self._points) // len(self._slots)
        return HashRing(remaining, replicas=replicas)

    def spread(self, tokens):
        """slot → token count for ``tokens`` (balance introspection)."""
        counts = {slot: 0 for slot in self._slots}
        for token in tokens:
            counts[self.lookup(token)] += 1
        return counts
