"""The cluster supervisor: spawn, watch, revive, rebalance.

One supervisor owns N worker *slots*.  Each slot is a subprocess
(``python -m repro.cluster.worker``) with a stable identity — its
journal directory, its config file, its port file all live under
``<journal_root>/worker-<slot>/`` — so a dead worker is replaced by
**respawning the slot in place**: the new process recovers every session
from the slot's write-ahead journal and the front's connection pool is
retargeted at the new port.  ``kill -9`` of any worker is therefore
invisible beyond latency: nothing acknowledged is lost, display
generations keep strictly increasing (``repro.resilience``'s floor), and
the replayed HTML is byte-identical.

The supervisor also runs the cluster's shared memo tier
(:class:`~repro.cluster.memoshare.CacheServer`) — it is the one process
guaranteed to outlive any worker.

**Rebalance** (:meth:`ClusterSupervisor.retire`) removes a slot
permanently: the ring drops it first (new traffic already routes
around), the worker is drained, and each of its journaled tokens is
adopted by the slot now owning it on the shrunken ring — exactly the
arcs the retired slot owned move, nothing else (consistent hashing's
promise, :mod:`repro.cluster.ring`).

A monitor thread polls every worker (process liveness each tick, a
``__status__`` frame over the socket) and revives silently-dead ones;
``cluster.worker_respawns`` counts every revival.
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys
import tempfile
import threading
import time

from ..core.errors import ReproError
from ..obs.trace import NULL_TRACER
from ..resilience.journal import Journal
from .memoshare import CacheServer
from .ring import HashRing
from .transport import ClientPool, TransportError

#: How long a spawn may take to publish its port before it is declared
#: stillborn.  Generous: a cold worker may replay a long journal first.
SPAWN_TIMEOUT = 60.0

#: Respawn backoff (per slot): a worker that dies within
#: RESPAWN_STABLE_SECONDS of its spawn is crash-looping, and each
#: consecutive rapid death doubles the delay before the *next* respawn
#: (base * 2^(streak-1), capped, ±25% jitter so a fleet of crash-loopers
#: doesn't thunder back in lockstep).  A worker that stays up past the
#: stability window resets its streak.
RESPAWN_BACKOFF_BASE = 0.5
RESPAWN_BACKOFF_CAP = 30.0
RESPAWN_STABLE_SECONDS = 5.0


class WorkerDied(ReproError):
    """A worker process exited (or never came up) when it was needed."""


class _Slot:
    """One worker slot: directories, the live process, its pools."""

    __slots__ = ("slot", "directory", "journal_dir", "config_path",
                 "port_file", "log_path", "process", "pool", "ping",
                 "port", "restarts", "retired", "lock", "last_ping",
                 "last_spawn", "crash_streak", "backoff_until")

    def __init__(self, slot, directory):
        self.slot = slot
        self.directory = directory
        self.journal_dir = os.path.join(directory, "journal")
        self.config_path = os.path.join(directory, "config.json")
        self.port_file = os.path.join(directory, "port")
        self.log_path = os.path.join(directory, "worker.log")
        self.process = None
        self.pool = None        # forwarding connections (front threads)
        self.ping = None        # one short-timeout probe connection
        self.port = None
        self.restarts = 0
        self.retired = False
        self.lock = threading.Lock()   # serializes spawn/revive/retire
        # monotonic time of the last successful __status__ round trip;
        # healthz reports its age so a wedged-but-alive worker (process
        # up, socket unresponsive) is visible before it is dead.
        self.last_ping = None
        # Respawn backoff state: when this slot last spawned, how many
        # consecutive *rapid* deaths it has suffered, and (when armed)
        # the monotonic time before which revive refuses to respawn.
        self.last_spawn = None
        self.crash_streak = 0
        self.backoff_until = None

    @property
    def alive(self):
        return self.process is not None and self.process.poll() is None


def _python_path():
    """PYTHONPATH for worker children: wherever *this* repro lives."""
    import repro

    src_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)
    ))
    existing = os.environ.get("PYTHONPATH")
    if existing:
        return src_root + os.pathsep + existing
    return src_root


class ClusterSupervisor:
    """Owns the worker fleet, the hash ring and the shared memo cache.

    ``source`` is the default app every worker serves (the ``create``
    op may still carry its own).  ``journal_root`` anchors each slot's
    journal directory; by default a fresh temp directory, but pointing
    it somewhere durable makes the whole cluster crash-recoverable.
    """

    def __init__(
        self,
        source=None,
        workers=2,
        journal_root=None,
        pool_size=16,
        checkpoint_every=25,
        quarantine_after=3,
        session_kwargs=None,
        fault_policy="record",
        fuel=None,
        deadline=None,
        latency=None,
        shared_cache=True,
        cache_entries=65536,
        memo_entries=4096,
        bind="127.0.0.1",
        connections_per_worker=4,
        ping_interval=1.0,
        drain_timeout=5.0,
        tracer=None,
        repair=None,
        journal_fsync="none",
    ):
        if workers < 1:
            raise ReproError("a cluster needs at least one worker")
        self.source = source
        self.bind = bind
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics_lock = threading.Lock()
        self.journal_root = journal_root or tempfile.mkdtemp(
            prefix="repro-cluster-"
        )
        self._worker_config = {
            "pool_size": pool_size,
            "checkpoint_every": checkpoint_every,
            "quarantine_after": quarantine_after,
            "session_kwargs": dict(session_kwargs or {}),
            "fault_policy": fault_policy,
            "fuel": fuel,
            "deadline": deadline,
            "latency": latency,
            "memo_entries": memo_entries,
            "drain_timeout": drain_timeout,
            # Live repair (repro.repair): True or a RepairBudget-field
            # dict arms automatic search on every worker; searches run
            # on worker background threads, off the request path.
            "repair": (
                dataclasses.asdict(repair)
                if dataclasses.is_dataclass(repair) else repair
            ),
            "journal_fsync": journal_fsync,
        }
        self._connections_per_worker = connections_per_worker
        self._ping_interval = ping_interval
        self._drain_timeout = drain_timeout
        self.cache = None
        if shared_cache:
            self.cache = CacheServer(
                max_entries=cache_entries, bind=bind, tracer=self.tracer
            )
        self._slots = {}
        for index in range(workers):
            directory = os.path.join(
                self.journal_root, "worker-{}".format(index)
            )
            os.makedirs(directory, exist_ok=True)
            self._slots[index] = _Slot(index, directory)
        self.ring = HashRing(self._slots)
        self._stopping = threading.Event()
        self._monitor = None

    def _count(self, name, amount=1):
        with self._metrics_lock:
            self.tracer.add(name, amount)

    # -- lifecycle ----------------------------------------------------------

    def start(self):
        if self.cache is not None:
            self.cache.start()
        for slot in self._slots.values():
            self._spawn(slot)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="cluster-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def stop(self):
        """Drain every worker gracefully, then stop the cache tier."""
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=self._ping_interval * 3)
        for slot in self._slots.values():
            with slot.lock:
                self._stop_slot(slot)
        if self.cache is not None:
            self.cache.stop()

    def _stop_slot(self, slot):
        """Slot lock held: ask for a drain, escalate if ignored."""
        if slot.process is None:
            return
        if slot.alive and slot.ping is not None:
            try:
                slot.ping.request_json({"op": "__drain__"})
            except TransportError:
                pass
        try:
            slot.process.wait(timeout=self._drain_timeout + 2.0)
        except subprocess.TimeoutExpired:
            slot.process.terminate()
            try:
                slot.process.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                slot.process.kill()
                slot.process.wait()
        if slot.pool is not None:
            slot.pool.close()
        if slot.ping is not None:
            slot.ping.close()

    # -- spawning -----------------------------------------------------------

    def _config_for(self, slot):
        config = dict(self._worker_config)
        config.update({
            "slot": slot.slot,
            "source": self.source,
            "bind": self.bind,
            "journal_dir": slot.journal_dir,
            "port_file": slot.port_file,
            "cache_address": (
                list(self.cache.address) if self.cache is not None else None
            ),
        })
        return config

    def _spawn(self, slot):
        """Slot lock held (or single-threaded start): launch + handshake."""
        with open(slot.config_path, "w") as handle:
            json.dump(self._config_for(slot), handle)
        try:
            os.remove(slot.port_file)
        except OSError:
            pass
        env = dict(os.environ)
        env["PYTHONPATH"] = _python_path()
        log = open(slot.log_path, "ab")
        try:
            slot.process = subprocess.Popen(
                [sys.executable, "-m", "repro.cluster.worker",
                 slot.config_path],
                stdout=log, stderr=log, env=env,
            )
        finally:
            log.close()
        slot.last_spawn = time.monotonic()
        slot.port = self._await_port(slot)
        address = (self.bind, slot.port)
        if slot.pool is None:
            slot.pool = ClientPool(
                address, size=self._connections_per_worker
            )
        else:
            slot.pool.retarget(address)
        if slot.ping is None:
            slot.ping = ClientPool(address, size=1, timeout=5.0)
        else:
            slot.ping.retarget(address)

    def _await_port(self, slot):
        import time

        deadline = time.monotonic() + SPAWN_TIMEOUT
        while time.monotonic() < deadline:
            if os.path.exists(slot.port_file):
                try:
                    with open(slot.port_file) as handle:
                        return int(handle.read().strip())
                except (OSError, ValueError):
                    pass  # racing the atomic rename; retry
            if slot.process.poll() is not None:
                raise WorkerDied(
                    "worker {} exited with status {} before "
                    "listening (log: {})".format(
                        slot.slot, slot.process.returncode, slot.log_path
                    )
                )
            time.sleep(0.02)
        raise WorkerDied(
            "worker {} did not publish a port within {}s".format(
                slot.slot, SPAWN_TIMEOUT
            )
        )

    # -- routing + liveness -------------------------------------------------

    def slot_for(self, token):
        """The slot index owning ``token`` on the current ring."""
        return self.ring.lookup(token)

    def pool_for(self, slot_index):
        slot = self._slots[slot_index]
        if slot.pool is None:
            raise WorkerDied(
                "worker {} has never been spawned".format(slot_index)
            )
        return slot.pool

    def revive(self, slot_index):
        """Respawn a dead worker in place; returns True when it respawned.

        The slot's journal directory survives the corpse, so the
        replacement recovers every session before listening — by the
        time the port file reappears, all acknowledged state is back.
        Rechecks liveness under the slot lock: concurrent front threads
        all hitting a dead worker fold into one respawn.

        A crash-looping worker (dead again within
        ``RESPAWN_STABLE_SECONDS`` of its spawn) is respawned under
        exponential backoff: each rapid death arms a jittered delay
        window during which further revive attempts raise
        :class:`WorkerDied` *without* spawning — the monitor's next
        ticks and on-demand front revives cost a clock read, not a
        subprocess, so a worker that dies instantly at boot cannot
        hot-spin the supervisor.
        """
        import random

        slot = self._slots[slot_index]
        with slot.lock:
            if slot.retired:
                raise WorkerDied(
                    "worker {} is retired".format(slot_index)
                )
            if slot.alive:
                return False
            now = time.monotonic()
            if slot.backoff_until is not None and now < slot.backoff_until:
                raise WorkerDied(
                    "worker {} is in respawn backoff for {:.1f}s more "
                    "(crash streak {})".format(
                        slot_index, slot.backoff_until - now,
                        slot.crash_streak,
                    )
                )
            if slot.process is not None:
                try:
                    slot.process.wait(timeout=0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    pass
            rapid = (
                slot.last_spawn is not None
                and now - slot.last_spawn < RESPAWN_STABLE_SECONDS
            )
            slot.crash_streak = slot.crash_streak + 1 if rapid else 0
            self._spawn(slot)
            slot.restarts += 1
            self._count("cluster.worker_respawns")
            if slot.crash_streak > 0:
                delay = min(
                    RESPAWN_BACKOFF_CAP,
                    RESPAWN_BACKOFF_BASE * 2 ** (slot.crash_streak - 1),
                ) * random.uniform(0.75, 1.25)
                slot.backoff_until = time.monotonic() + delay
                self._count("cluster.worker_respawn_backoffs")
            else:
                slot.backoff_until = None
            return True

    def _monitor_loop(self):
        while not self._stopping.wait(self._ping_interval):
            for slot in self._slots.values():
                if slot.retired or self._stopping.is_set():
                    continue
                if not slot.alive:
                    try:
                        self.revive(slot.slot)
                    except (WorkerDied, ReproError):
                        pass  # next tick retries; front revives on demand
                elif slot.ping is not None:
                    # Liveness beyond the process table: a __status__
                    # round trip proves the worker *answers*.  Its age
                    # (healthz's last_ping_age_seconds) is the only
                    # signal for a wedged-but-running worker.
                    try:
                        slot.ping.request_json({"op": "__status__"})
                        slot.last_ping = time.monotonic()
                    except TransportError:
                        pass  # age keeps growing; healthz shows it

    # -- rebalance ----------------------------------------------------------

    def retire(self, slot_index):
        """Remove a slot permanently, moving its tokens to their heirs.

        Ring first (new creates and requests already route around the
        retiree), then drain, then adoption: each journaled token is
        replayed into the slot that now owns it.  Returns the list of
        ``(token, new_slot)`` moves.
        """
        slot = self._slots[slot_index]
        with slot.lock:
            if slot.retired:
                raise ReproError(
                    "worker {} is already retired".format(slot_index)
                )
            if len(self.ring) == 1:
                raise ReproError("cannot retire the last worker")
            self.ring = self.ring.without(slot_index)
            slot.retired = True
            self._stop_slot(slot)
        moves = []
        journal = Journal(slot.journal_dir)
        for token in journal.tokens():
            heir = self.ring.lookup(token)
            response = self.pool_for(heir).request_json({
                "op": "__adopt__",
                "token": token,
                "journal_dir": slot.journal_dir,
            })
            if response.get("ok") and response.get("adopted"):
                moves.append((token, heir))
        return moves

    # -- introspection ------------------------------------------------------

    def healthz(self):
        """Cluster liveness: per-worker state plus per-worker healthz."""
        workers = []
        all_alive = True
        for slot in sorted(self._slots.values(), key=lambda s: s.slot):
            info = {
                "slot": slot.slot,
                "alive": slot.alive,
                "retired": slot.retired,
                "restarts": slot.restarts,
                "pid": (slot.process.pid
                        if slot.process is not None else None),
            }
            if slot.backoff_until is not None:
                remaining = slot.backoff_until - time.monotonic()
                if remaining > 0:
                    info["respawn_backoff_seconds"] = round(remaining, 3)
                    info["crash_streak"] = slot.crash_streak
            if slot.retired:
                workers.append(info)
                continue
            if not slot.alive:
                all_alive = False
            elif slot.ping is not None:
                try:
                    status = slot.ping.request_json({"op": "__status__"})
                    slot.last_ping = time.monotonic()
                    info["healthz"] = status.get("healthz")
                except TransportError:
                    info["alive"] = False
                    all_alive = False
            # Age of the last successful liveness ping (monitor loop or
            # this call): a growing age on an "alive" worker means
            # wedged, not healthy — degraded-but-up, made visible.
            info["last_ping_age_seconds"] = (
                round(time.monotonic() - slot.last_ping, 3)
                if slot.last_ping is not None else None
            )
            workers.append(info)
        payload = {
            "ok": all_alive,
            "role": "cluster",
            "workers": workers,
            "ring_slots": list(self.ring.slots),
        }
        if self.cache is not None:
            payload["cache_entries"] = self.cache.stats()["entries"]
        return payload

    def worker_stats(self):
        """Each live worker's ``stats`` op response payload, by slot."""
        stats = {}
        for slot in self._slots.values():
            if slot.retired or slot.pool is None:
                continue
            try:
                response = slot.ping.request_json({"op": "stats"})
            except TransportError:
                continue
            if response.get("ok"):
                stats[slot.slot] = response.get("stats")
        return stats

    def metrics(self):
        with self._metrics_lock:
            return self.tracer.metrics()

    def observability_snapshot(self):
        """``(counters, gauges, histograms)`` of the front process's own
        tracer (routing counters, cache-server latencies, …) — the
        front-side contribution to ``/metrics``."""
        with self._metrics_lock:
            return (
                dict(self.tracer.counters),
                dict(self.tracer.gauges),
                self.tracer.histogram_snapshots(),
            )

    def worker_metrics(self):
        """Each live worker's ``__metrics__`` payload, by slot."""
        payloads = {}
        for slot in self._slots.values():
            if slot.retired or slot.ping is None:
                continue
            try:
                response = slot.ping.request_json({"op": "__metrics__"})
            except TransportError:
                continue
            if response.get("ok"):
                payloads[slot.slot] = response
        return payloads

    def worker_traces(self, trace_id):
        """Serialized span dicts for ``trace_id`` from every live
        worker — the remote halves of one distributed trace."""
        spans = []
        for slot in sorted(self._slots.values(), key=lambda s: s.slot):
            if slot.retired or slot.ping is None:
                continue
            try:
                response = slot.ping.request_json(
                    {"op": "__trace__", "trace_id": trace_id}
                )
            except TransportError:
                continue
            if response.get("ok"):
                spans.extend(response.get("spans") or ())
        return spans

    def slot_gauges(self):
        """Per-slot liveness gauges for ``/metrics``: up/respawns/ping
        age, each as a labeled per-worker series (never summed)."""
        now = time.monotonic()
        up, respawns, ping_age = {}, {}, {}
        for slot in sorted(self._slots.values(), key=lambda s: s.slot):
            label = str(slot.slot)
            up[label] = 0 if slot.retired else int(slot.alive)
            respawns[label] = slot.restarts
            if slot.last_ping is not None:
                ping_age[label] = round(now - slot.last_ping, 3)
        gauges = {
            "cluster.worker.up": up,
            "cluster.worker.respawns": respawns,
        }
        if ping_age:
            gauges["cluster.worker.ping_age_seconds"] = ping_age
        return gauges
