"""Length-prefixed frames over stdlib TCP sockets.

The cluster's one wire primitive: a **frame** is a 4-byte big-endian
length followed by that many payload bytes.  Protocol ops ride as JSON
frames (the same :mod:`repro.serve.protocol` objects HTTP carries —
one codec, two transports); the shared memo tier rides as pickle
frames.  Everything is loopback-only by default: workers bind
``127.0.0.1`` ephemeral ports and publish them through port files.

Three pieces:

* :func:`send_frame` / :func:`recv_frame` — the framing itself;
* :class:`FrameServer` — a threaded accept loop (one thread per
  connection, mirroring :class:`ThreadingHTTPServer`) that answers each
  request frame with ``handler(payload)``'s reply frame, tracks
  in-flight requests and drains them on :meth:`~FrameServer.stop`;
* :class:`FrameClient` / :class:`ClientPool` — persistent request/reply
  connections; the pool hands concurrent front threads independent
  connections so one slow op never serializes a whole worker's traffic.
"""

from __future__ import annotations

import json
import queue
import socket
import struct
import threading

from ..core.errors import ReproError

_HEADER = struct.Struct(">I")

#: Frames above this are refused — a corrupt header must not allocate
#: gigabytes.  Session images ride in frames, so the cap is generous.
MAX_FRAME_BYTES = 256 * 1024 * 1024


class TransportError(ReproError):
    """The peer vanished or spoke garbage mid-frame."""


def send_frame(sock, payload):
    """Write one length-prefixed frame (a single ``sendall``)."""
    if len(payload) > MAX_FRAME_BYTES:
        raise TransportError(
            "frame of {} bytes exceeds the {} byte cap".format(
                len(payload), MAX_FRAME_BYTES
            )
        )
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exactly(sock, count):
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock):
    """One frame's payload, or ``None`` on clean EOF between frames."""
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise TransportError(
            "peer announced a {} byte frame (cap {})".format(
                length, MAX_FRAME_BYTES
            )
        )
    payload = _recv_exactly(sock, length)
    if payload is None:
        raise TransportError("peer closed mid-frame")
    return payload


def encode_json(obj):
    return json.dumps(obj, separators=(",", ":")).encode("utf-8")


def decode_json(payload):
    return json.loads(payload.decode("utf-8"))


class FrameServer:
    """Threaded request/reply server over frames.

    ``handler(payload: bytes) -> bytes`` runs on a per-connection
    thread; a handler exception closes that connection (the client sees
    a transport error and retries or reports) but never kills the
    server.  :meth:`stop` closes the listener, optionally waits for
    in-flight handlers to drain, then closes lingering connections —
    the graceful-shutdown contract workers rely on.
    """

    def __init__(self, handler, bind="127.0.0.1", port=0, backlog=64):
        self._handler = handler
        self._listener = socket.create_server(
            (bind, port), backlog=backlog, reuse_port=False
        )
        self._address = self._listener.getsockname()
        self._connections = set()
        self._lock = threading.Lock()
        self._in_flight = 0
        self._drained = threading.Event()
        self._drained.set()
        self._stopping = False
        self._accept_thread = None

    @property
    def address(self):
        """``(host, port)`` the server is listening on."""
        return self._address

    def start(self):
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="frame-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self):
        while True:
            try:
                connection, _peer = self._listener.accept()
            except OSError:
                return  # listener closed: shutdown
            with self._lock:
                if self._stopping:
                    connection.close()
                    return
                self._connections.add(connection)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name="frame-conn",
                daemon=True,
            )
            thread.start()

    def _serve_connection(self, connection):
        try:
            while True:
                try:
                    payload = recv_frame(connection)
                except (TransportError, OSError):
                    return
                if payload is None:
                    return
                with self._lock:
                    self._in_flight += 1
                    self._drained.clear()
                try:
                    reply = self._handler(payload)
                finally:
                    with self._lock:
                        self._in_flight -= 1
                        if self._in_flight == 0:
                            self._drained.set()
                try:
                    send_frame(connection, reply)
                except OSError:
                    return
        except Exception:
            return  # a handler bug poisons one connection, not the server
        finally:
            with self._lock:
                self._connections.discard(connection)
            try:
                connection.close()
            except OSError:
                pass

    def stop(self, drain_timeout=5.0):
        """Stop accepting, drain in-flight handlers, close connections.

        Returns ``True`` iff every in-flight request finished within
        ``drain_timeout`` (the caller logs a hard cut otherwise).
        """
        with self._lock:
            self._stopping = True
        try:
            self._listener.close()
        except OSError:
            pass
        drained = self._drained.wait(drain_timeout)
        with self._lock:
            connections = list(self._connections)
        for connection in connections:
            try:
                connection.close()
            except OSError:
                pass
        return drained


class FrameClient:
    """One persistent request/reply connection (serialized by a lock)."""

    def __init__(self, address, timeout=30.0):
        self.address = tuple(address)
        self.timeout = timeout
        self._lock = threading.Lock()
        self._sock = None

    def _connect(self):
        sock = socket.create_connection(self.address, timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def request(self, payload):
        """Send one frame, wait for the reply frame.

        Raises :class:`TransportError` when the peer is gone — callers
        (the front's forwarding layer) translate that into revive-and-
        retry or a typed protocol error, never a hang.
        """
        with self._lock:
            try:
                if self._sock is None:
                    self._sock = self._connect()
                send_frame(self._sock, payload)
                reply = recv_frame(self._sock)
            except (OSError, TransportError) as error:
                self.close_locked()
                raise TransportError(
                    "worker connection to {}:{} failed: {}".format(
                        self.address[0], self.address[1], error
                    )
                ) from error
            if reply is None:
                self.close_locked()
                raise TransportError(
                    "worker at {}:{} closed the connection".format(
                        self.address[0], self.address[1]
                    )
                )
            return reply

    def close_locked(self):
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self):
        with self._lock:
            self.close_locked()


class ClientPool:
    """A bounded pool of :class:`FrameClient` connections to one peer.

    ``request`` borrows a connection (blocking when all ``size`` are in
    use — natural backpressure per worker), performs one round trip and
    returns it.  A failed connection is returned too: it reconnects
    lazily on its next use, so a respawned worker needs no pool rebuild
    beyond its new address being set via :meth:`retarget`.
    """

    def __init__(self, address, size=4, timeout=30.0):
        self._timeout = timeout
        self._idle = queue.Queue()
        self._clients = []
        self._address = tuple(address)
        for _ in range(max(1, size)):
            client = FrameClient(self._address, timeout=timeout)
            self._clients.append(client)
            self._idle.put(client)

    def retarget(self, address):
        """Point every pooled connection at a new address (respawn)."""
        self._address = tuple(address)
        for client in self._clients:
            with client._lock:
                client.address = self._address
                client.close_locked()

    def request(self, payload):
        client = self._idle.get()
        try:
            return client.request(payload)
        finally:
            self._idle.put(client)

    def request_json(self, obj):
        return decode_json(self.request(encode_json(obj)))

    def close(self):
        for client in self._clients:
            client.close()
