"""One cluster worker: a :class:`SessionHost` behind a frame socket.

A worker is ``python -m repro.cluster.worker <config.json>`` — its own
process, its own journal directory, its own ephemeral port published
through a **port file** (written atomically once the socket listens; the
supervisor's spawn handshake polls for it).  The front forwards protocol
requests as JSON frames; the worker answers with exactly the responses
:func:`repro.serve.protocol.handle_request` would produce over HTTP —
one codec, two transports.

Three internal ops ride the same socket but never the public HTTP face
(the front refuses ``__``-prefixed ops):

* ``__status__`` — liveness probe: pid, slot, :meth:`SessionHost.healthz`,
  metrics and memo stats;
* ``__drain__``  — graceful shutdown: stop accepting, finish in-flight
  requests, flush the memo publisher, close the journal, exit 0;
* ``__adopt__``  — rebalance: replay one token out of a *retired*
  worker's journal into this host (see :func:`adopt_session`);
* ``__metrics__`` — counters, gauges and latency histograms in
  mergeable form, pulled by the front's ``GET /metrics`` aggregation;
* ``__trace__``  — the worker's finished spans for one ``trace_id``,
  serialized for the front's cross-process trace stitching.

Public (non-``__``) requests arrive stamped with a ``"_trace"`` header
— ``{"id": trace_id, "parent": front_span_id}`` — which the worker pops
and turns into an ``rpc.<op>`` span opened *under the front's span id*
(:meth:`repro.obs.trace.Tracer.span_under`), so every span this worker
records for the request parents into the front's trace tree.

**Crash contract.**  The worker write-ahead journals every state-
changing op (``repro.resilience``), so ``kill -9`` loses nothing
acknowledged: the supervisor respawns the slot over the same journal
directory, :func:`repro.resilience.recover` rebuilds every session, and
the generation floor keeps display generations strictly increasing
across the death — a polling client can never see ``not_modified`` for
changed content.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading

from ..core.errors import EvalError, ReproError
from ..obs.sinks import filter_trace
from ..obs.trace import Tracer
from ..resilience.journal import (
    Journal, _collate, _replay_event, recover,
)
from ..serve.host import SessionHost
from ..serve.protocol import error_response, handle_request
from ..stdlib.web import DEFAULT_LATENCY, make_services, web_host_impls
from .memoshare import CacheClient, TieredMemoStore
from .transport import FrameServer, decode_json, encode_json


def adopt_session(host, foreign_dir, token):
    """Replay ``token`` from a *retired* worker's journal into ``host``.

    This is rebalance's data path: the supervisor drains (or buries) the
    old worker first, so the foreign journal is quiescent — then the
    adopting worker rebuilds the session exactly like crash recovery
    does (checkpoint, then the event tail), with its own journal
    detached so replayed events are not re-journaled.  Once live, the
    session is re-rooted: a fresh ``create`` + checkpoint in the
    adopter's own journal makes future recoveries local, and the
    generation floor (``foreign.last_seq() + 2``) is strictly past
    anything the old worker could have acknowledged.

    Returns ``True`` when the token is (now) served here; ``False`` when
    the foreign journal holds nothing recoverable for it.
    """
    if host.has_token(token):
        return True
    foreign = Journal(foreign_dir)
    logs = [
        log for log in _collate(foreign.records_for(token,
                                                    include_images=True))
        if log.token == token
    ]
    if not logs:
        return False
    log = logs[0]
    if log.destroyed:
        return False
    own_journal, host.journal = host.journal, None
    try:
        if log.checkpoint is not None:
            host.restore(token, image=log.checkpoint, title=log.title)
        elif log.created and log.source is not None:
            host.restore(token, source=log.source, title=log.title)
        else:
            return False
        for seq, op, args in log.events:
            if seq <= log.checkpoint_seq:
                continue
            try:
                _replay_event(host, token, op, args)
            except EvalError:
                pass  # the fault replays into the session, as live
            except ReproError:
                pass  # failed identically live; the client saw it
    finally:
        host.journal = own_journal
    host.complete_recovery(token, foreign.last_seq() + 2)
    if host.journal is not None:
        with host.session(token) as entry:
            host.journal.record_create(
                token, entry.session.source, entry.title
            )
            host._checkpoint(entry)
    return True


class Worker:
    """The in-process half of a worker: host + frame server + drain."""

    def __init__(self, config):
        self.config = config
        self.slot = config["slot"]
        # The id prefix makes span ids globally unique across the
        # cluster ("w3.1234-17"), so this worker's spans stitch into
        # the front's trace tree without id collisions.
        self.tracer = Tracer(
            id_prefix="w{}.{}".format(self.slot, os.getpid())
        )
        cache_address = config.get("cache_address")
        self.cache_client = None
        memo_store = None
        if cache_address is not None:
            self.cache_client = CacheClient(
                tuple(cache_address), tracer=self.tracer
            )
            memo_store = TieredMemoStore(
                self.cache_client,
                max_entries=config.get("memo_entries", 4096),
                tracer=self.tracer,
            )
        latency = config.get("latency")
        if latency is None:
            latency = DEFAULT_LATENCY
        # The same session posture ``repro serve`` runs single-process:
        # optimizations on, faults recorded + budgeted + supervised.
        # Budget objects don't cross the JSON config, so the worker
        # rebuilds one from the plain fuel/deadline numbers.
        from ..resilience import Budget

        session_kwargs = {
            "reuse_boxes": True,
            "memo_render": True,
            "fault_policy": config.get("fault_policy", "record"),
            "supervised": True,
        }
        budget_kwargs = {}
        if config.get("fuel") is not None:
            budget_kwargs["fuel"] = config["fuel"]
        session_kwargs["budget"] = Budget(
            deadline=config.get("deadline"), **budget_kwargs
        )
        session_kwargs.update(config.get("session_kwargs") or {})
        # Live repair: True or a RepairBudget-field dict in the config
        # arms automatic candidate search on this worker (searches run
        # on background threads against throwaway replayed systems —
        # never the request path).
        repair = config.get("repair")
        if isinstance(repair, dict):
            from ..repair import RepairBudget

            repair = RepairBudget(**repair)
        self.host = SessionHost(
            pool_size=config.get("pool_size", 16),
            default_source=config.get("source"),
            make_host_impls=web_host_impls,
            make_services=lambda: make_services(latency=latency),
            tracer=self.tracer,
            session_kwargs=session_kwargs,
            quarantine_after=config.get("quarantine_after", 3),
            memo_store=memo_store,
            repair=repair,
        )
        self.recovery = None
        journal_dir = config.get("journal_dir")
        if journal_dir is not None:
            journal = Journal(
                journal_dir,
                checkpoint_every=config.get("checkpoint_every", 25),
                tracer=self.tracer,
                fsync=config.get("journal_fsync", "none") or "none",
            )
            self.recovery = recover(self.host, journal)
        self._drain = threading.Event()
        self.server = FrameServer(
            self._handle, bind=config.get("bind", "127.0.0.1")
        )

    # -- request handling ---------------------------------------------------

    def _handle(self, payload):
        try:
            request = decode_json(payload)
        except (ValueError, UnicodeDecodeError):
            return encode_json({
                "ok": False,
                "error": {"type": "BadRequest",
                          "message": "frame is not valid JSON"},
            })
        op = request.get("op") if isinstance(request, dict) else None
        # The front's trace header rides inside the frame: popped here
        # so the protocol dispatcher never sees it.
        trace = (request.pop("_trace", None)
                 if isinstance(request, dict) else None)
        try:
            if op == "__status__":
                response = self._status()
            elif op == "__drain__":
                self._drain.set()
                response = {"ok": True, "op": "__drain__",
                            "slot": self.slot}
            elif op == "__adopt__":
                response = self._adopt(request)
            elif op == "__metrics__":
                response = self._metrics()
            elif op == "__trace__":
                response = self._trace(request)
            elif isinstance(trace, dict) and self.tracer.enabled:
                # Open this request's span under the front's op span id:
                # the host's own op.* spans nest beneath it, so the
                # whole worker subtree parents into the front's trace.
                with self.tracer.span_under(
                    trace.get("parent"), "rpc.{}".format(op),
                    trace_id=trace.get("id"), slot=self.slot,
                ):
                    response = handle_request(self.host, request)
            else:
                response = handle_request(self.host, request)
        except ReproError as error:
            response = error_response(op, error, tracer=self.tracer)
        except Exception as error:  # a worker bug, never a dead socket
            response = {
                "ok": False,
                "error": {"type": "InternalError",
                          "message": "{}: {}".format(
                              type(error).__name__, error)},
            }
        return encode_json(response)

    def _status(self):
        report = self.recovery
        return {
            "ok": True,
            "op": "__status__",
            "slot": self.slot,
            "pid": os.getpid(),
            "healthz": self.host.healthz(),
            "memo": (self.host.memo_store.stats()
                     if self.host.memo_store is not None else None),
            "recovered": (report.sessions if report is not None else 0),
        }

    def _metrics(self):
        """``__metrics__``: this worker's counters/gauges/histograms in
        mergeable form — what the front aggregates into ``/metrics``."""
        counters, gauges, histograms = self.host.observability_snapshot()
        return {
            "ok": True,
            "op": "__metrics__",
            "slot": self.slot,
            "counters": counters,
            "gauges": gauges,
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in histograms.items()
            },
        }

    def _trace(self, request):
        """``__trace__``: this worker's finished spans for one
        distributed trace, serialized for cross-process stitching."""
        trace_id = request.get("trace_id")
        spans = filter_trace(self.tracer.spans(), trace_id)
        return {
            "ok": True,
            "op": "__trace__",
            "slot": self.slot,
            "spans": [span.to_dict() for span in spans],
        }

    def _adopt(self, request):
        token = request.get("token")
        foreign_dir = request.get("journal_dir")
        if not isinstance(token, str) or not isinstance(foreign_dir, str):
            return {
                "ok": False, "op": "__adopt__",
                "error": {"type": "BadRequest",
                          "message": "__adopt__ needs 'token' and "
                                     "'journal_dir' strings"},
            }
        adopted = adopt_session(self.host, foreign_dir, token)
        if adopted:
            self.host._count("cluster.tokens_rebalanced")
        return {"ok": True, "op": "__adopt__", "slot": self.slot,
                "token": token, "adopted": adopted}

    # -- lifecycle ----------------------------------------------------------

    def start(self):
        self.server.start()
        return self

    @property
    def address(self):
        return self.server.address

    def publish_port(self, port_file):
        """Write the port atomically: readers never see a partial file."""
        tmp = port_file + ".tmp"
        with open(tmp, "w") as handle:
            handle.write("{}\n".format(self.address[1]))
        os.replace(tmp, port_file)

    def request_drain(self):
        self._drain.set()

    def wait(self):
        self._drain.wait()

    def shutdown(self, drain_timeout=5.0):
        """The graceful half of the crash contract: drain, flush, close."""
        drained = self.server.stop(drain_timeout=drain_timeout)
        if self.cache_client is not None:
            self.cache_client.flush(timeout=2.0)
            self.cache_client.close()
        if self.host.journal is not None:
            self.host.journal.close()
        return drained


def worker_main(config):
    worker = Worker(config).start()

    def _on_signal(_signum, _frame):
        worker.request_drain()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    port_file = config.get("port_file")
    if port_file is not None:
        worker.publish_port(port_file)
    worker.wait()
    drained = worker.shutdown(
        drain_timeout=config.get("drain_timeout", 5.0)
    )
    return 0 if drained else 1


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.cluster.worker <config.json>",
              file=sys.stderr)
        return 2
    with open(argv[0]) as handle:
        config = json.load(handle)
    return worker_main(config)


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
