"""Closure compilation of the core calculus (the non-tree-walking backend).

The paper's relations (Figs. 6–9) are implemented twice in
:mod:`repro.eval.machine` — the faithful small-stepper and the CEK
machine — and both *walk the AST on every run*.  This package lowers a
code version **once** to nested Python closures: one compiled thunk per
declaration/function body, variables resolved to integer indices into a
flat environment list at compile time, and global reads/writes resolved
to integer *slots* into a per-run cache over the authoritative
:class:`~repro.system.state.Store` (whose write-versioning keeps memo
probes O(read-set) integer compares, unchanged).

:class:`Compiled` satisfies the same evaluator protocol the system
transitions consume (``run_state`` / ``run_render`` / ``run_pure``) and
is behaviourally indistinguishable from the tree machines: byte-identical
renders, identical faults (fuel via the shared
:meth:`~repro.resilience.supervisor.Budget.charge`), identical
journal/provenance events — asserted by the differential hypothesis
suite in ``tests/compile/``.  Select it with ``backend="compiled"`` on
:class:`repro.api.LiveSession` (see :mod:`repro.eval.backends`).
"""

from .machine import Compiled

__all__ = ["Compiled"]
