"""The closure-compiled evaluator.

One :class:`Compiled` instance is built per *code version* (the system
rebuilds its evaluator on UPDATE, so compile-once-per-version falls out
of the existing transition structure).  Compilation lowers every
expression to a Python closure ``fn(rt, env) -> value`` where

* ``env`` is a flat list — every lambda parameter and let-binder was
  resolved to an integer index at compile time;
* ``rt`` is the per-run mutable context (mode, store, queue, current
  box, occurrence counters, the global *slot cache*, and the step/fuel
  accounting shared with the tree machines via
  :meth:`~repro.resilience.supervisor.Budget.charge`).

Global reads resolve to integer slots: the first read of a run goes
through :meth:`~repro.system.state.Store.lookup` (so provenance read
logs and write-version stamps are identical to the tree machines) and
caches the value; later reads are a list index.  Writes go through
:meth:`~repro.system.state.Store.assign` (identical version ticks) and
refresh the cache only when a read already populated it — keeping the
run's *first-read* order, and therefore the deduplicated provenance
read set, byte-identical to the tree-walker's.

Tail calls — which every surface-language loop lowers to — return a
:class:`_TailCall` sentinel unwound by a trampoline, so compiled loops
run in constant Python stack exactly like the CEK machine.  Runtime
values are the closed AST values of :mod:`repro.core.ast` (never a
separate representation): a lambda value is reconstructed by
substituting its captured environment values into the original ``Lam``
node, which — because whole-program evaluation only ever substitutes
*closed* values, where capture-avoidance never renames — yields the
exact AST the substitution machines produce.  That is what makes
renders, stores, handlers crossing runs through box attributes, and
memo entries indistinguishable across backends.

Faults keep exact parity: every ``StuckExpression`` / ``EvalError``
message matches the tree machines character-for-character (primitive
application defers to the same ``_apply_builtin`` / ``apply_prim``).
The one documented divergence is the *step count* behind
``FuelExhausted``: this machine charges one step per function
application (the only recursion source), so a divergent program still
exhausts any fuel budget, but at a different count than the per-node
machines — differential tests compare fault *types* for fuel and exact
messages for everything else.
"""

from __future__ import annotations

from ..boxes.tree import Box, make_root
from ..core import ast
from ..core.defs import Code
from ..core.effects import PURE, RENDER, STATE
from ..core.errors import ReproError, StuckExpression
from ..core.prims import PRIM_SIGS
from ..eval.machine import DEFAULT_FUEL, _check_queue, _OccurrenceCounter
from ..eval.memo import replay_items
from ..eval.natives import EMPTY_NATIVES, _apply_builtin, apply_prim
from ..eval.values import truthy
from ..obs.trace import NULL_TRACER
from ..resilience.supervisor import Budget

#: Dynamic-unit cache bound: lambda values are compiled on first
#: application and cached by node identity; edit thunks mint a fresh
#: lambda per keystroke, so the cache is cleared (not evicted — entries
#: are tiny and recompilation is cheap) past this many entries.
_DYN_CACHE_LIMIT = 1024

_UNIT = ast.UNIT_VALUE
_Num = ast.Num


class _TailCall:
    """A tail application, returned to the trampoline instead of made."""

    __slots__ = ("run", "env")

    def __init__(self, run, env):
        self.run = run
        self.env = env


class _Run:
    """Mutable per-run context threaded through every compiled closure."""

    __slots__ = (
        "mode", "store", "queue", "box", "counters", "slots", "steps", "fuel",
    )

    def __init__(self, mode, store, queue, box, counters, slots, fuel):
        self.mode = mode
        self.store = store
        self.queue = queue
        self.box = box
        self.counters = counters
        self.slots = slots
        self.steps = 0
        self.fuel = fuel


class _Frame:
    """Compile-time frame layout: allocates env indices for one unit."""

    __slots__ = ("size",)

    def __init__(self, size=0):
        self.size = size

    def bind(self):
        index = self.size
        self.size += 1
        return index


def _invoke(run, rt, env):
    """The trampoline: bounce tail calls without growing the host stack."""
    result = run(rt, env)
    while type(result) is _TailCall:
        result = result.run(rt, result.env)
    return result


class Compiled:
    """The compiled machine: same evaluator protocol, closures not trees.

    Construction compiles every function body and page init/render
    lambda of ``code``; evaluation then never inspects AST nodes on the
    hot path (values are still AST, but flow through untouched).
    """

    def __init__(self, code, natives=EMPTY_NATIVES, services=None, memo=None,
                 tracer=NULL_TRACER):
        if not isinstance(code, Code):
            raise ReproError("Compiled expects Code")
        self.code = code
        self.natives = natives
        self.services = services
        self.memo = memo
        self.tracer = tracer
        # Global slots: name → integer index, plus the compile-time
        # fallback initializer (EP-GLOBAL-2 reads it when the store has
        # no entry yet — global inits are values by construction).
        self._slot_of = {}
        self._init_of = {}
        for index, definition in enumerate(code.globals()):
            self._slot_of[definition.name] = index
            self._init_of[definition.name] = definition.init
        self._n_slots = len(self._slot_of)
        #: Function name → (run, frame_size); one unit per declaration.
        self._units = {}
        #: id(lam) → (lam, run, frame_size) for lambda *values* applied
        #: dynamically (handlers, page bodies, edit thunks).
        self._dyn_units = {}
        for definition in code.functions():
            if isinstance(definition.body, ast.Lam):
                self._function_unit(definition.name)
        for page in code.pages():
            if isinstance(page.init, ast.Lam):
                self._lam_unit(page.init)
            if isinstance(page.render, ast.Lam):
                self._lam_unit(page.render)

    # -- compiled-unit management ---------------------------------------------

    def invalidate(self):
        """Drop every compiled unit (the UPDATE hook releases caches)."""
        self._units.clear()
        self._dyn_units.clear()

    def _function_unit(self, name):
        """The compiled unit for function ``name`` (body must be a Lam)."""
        unit = self._units.get(name)
        if unit is None:
            lam = self.code.function(name).body
            frame = _Frame(1)
            scope = {lam.param: 0}
            run = self._compile(lam.body, scope, frame, True)
            unit = (run, frame.size)
            self._units[name] = unit
        return unit

    def _lam_unit(self, lam):
        """The compiled unit for a lambda *value*, cached by identity.

        Identity, not equality: structurally equal ``Boxed`` nodes can
        carry different ``box_id``s (``box_id`` is ``compare=False``),
        so equal-looking lambdas must not share a unit.
        """
        key = id(lam)
        hit = self._dyn_units.get(key)
        if hit is not None and hit[0] is lam:
            return hit[1], hit[2]
        frame = _Frame(1)
        scope = {lam.param: 0}
        run = self._compile(lam.body, scope, frame, True)
        if len(self._dyn_units) >= _DYN_CACHE_LIMIT:
            self._dyn_units.clear()
        self._dyn_units[key] = (lam, run, frame.size)
        return run, frame.size

    def _apply_lam(self, lam, value, rt):
        """Apply a lambda value (trampolined; charges one application)."""
        if not isinstance(lam, ast.Lam):
            raise StuckExpression(
                "application of a non-function: {!r}".format(lam)
            )
        run, size = self._lam_unit(lam)
        rt.steps = steps = rt.steps + 1
        if steps > rt.fuel:
            Budget.charge(steps, rt.fuel, "compiled")
        env = [None] * size
        env[0] = value
        return _invoke(run, rt, env)

    # -- the compiler -----------------------------------------------------------

    def _compile(self, expr, scope, frame, tail):
        """Compile ``expr`` to a closure ``fn(rt, env) -> value``.

        ``scope`` maps in-scope variable names to env indices; ``frame``
        allocates indices for let-binders.  Only closures compiled with
        ``tail=True`` may return a :class:`_TailCall`; non-tail
        sub-expressions always trampoline internally.
        """
        if type(expr) is ast.Var:
            index = scope.get(expr.name)
            if index is None:
                # An open variable is a value to the tree machines (the
                # enclosing application substitutes it before it is
                # reached); unbound here means genuinely open — return
                # the node itself, exactly as they would.
                return lambda rt, env: expr
            return lambda rt, env: env[index]
        if expr.is_value():
            return self._compile_value(expr, scope)
        kind = type(expr)
        if kind is ast.App:
            return self._compile_app(expr, scope, frame, tail)
        if kind is ast.GlobalRead:
            return self._compile_read(expr.name)
        if kind is ast.Prim:
            return self._compile_prim(expr, scope, frame)
        if kind is ast.If:
            cond_fn = self._compile(expr.cond, scope, frame, False)
            then_fn = self._compile(expr.then_branch, scope, frame, tail)
            else_fn = self._compile(expr.else_branch, scope, frame, tail)

            def run_if(rt, env):
                if truthy(cond_fn(rt, env)):
                    return then_fn(rt, env)
                return else_fn(rt, env)

            return run_if
        if kind is ast.FunRef:
            return self._compile_funref(expr.name)
        if kind is ast.Proj:
            target_fn = self._compile(expr.tuple_expr, scope, frame, False)
            index = expr.index

            def run_proj(rt, env):
                value = target_fn(rt, env)
                if not isinstance(value, ast.Tuple):
                    raise StuckExpression("projection from a non-tuple")
                if index > len(value.items):
                    raise StuckExpression(
                        "projection index {} out of range".format(index)
                    )
                return value.items[index - 1]

            return run_proj
        if kind is ast.Tuple:
            item_fns = tuple(
                self._compile(item, scope, frame, False)
                for item in expr.items
            )

            def run_tuple(rt, env):
                return ast.Tuple(tuple(fn(rt, env) for fn in item_fns))

            return run_tuple
        if kind is ast.ListLit:
            item_fns = tuple(
                self._compile(item, scope, frame, False)
                for item in expr.items
            )
            element_type = expr.element_type

            def run_list(rt, env):
                return ast.ListLit(
                    tuple(fn(rt, env) for fn in item_fns), element_type
                )

            return run_list
        if kind is ast.GlobalWrite:
            return self._compile_write(expr, scope, frame)
        if kind is ast.Push:
            page = expr.page
            arg_fn = self._compile(expr.arg, scope, frame, False)

            def run_push(rt, env):
                if rt.mode is not STATE:
                    raise StuckExpression("push outside state mode")
                arg = arg_fn(rt, env)
                from ..system.events import PushEvent

                _check_queue(rt.queue).enqueue(PushEvent(page, arg))
                return _UNIT

            return run_push
        if kind is ast.Pop:
            def run_pop(rt, env):
                if rt.mode is not STATE:
                    raise StuckExpression("pop outside state mode")
                from ..system.events import PopEvent

                _check_queue(rt.queue).enqueue(PopEvent())
                return _UNIT

            return run_pop
        if kind is ast.Post:
            value_fn = self._compile(expr.value, scope, frame, False)

            def run_post(rt, env):
                if rt.mode is not RENDER:
                    raise StuckExpression("post outside render mode")
                rt.box.append_leaf(value_fn(rt, env))
                return _UNIT

            return run_post
        if kind is ast.SetAttr:
            attr = expr.attr
            value_fn = self._compile(expr.value, scope, frame, False)

            def run_attr(rt, env):
                if rt.mode is not RENDER:
                    raise StuckExpression(
                        "box attribute set outside render mode"
                    )
                rt.box.append_attr(attr, value_fn(rt, env))
                return _UNIT

            return run_attr
        if kind is ast.Boxed:
            return self._compile_boxed(expr, scope, frame)

        def run_stuck(rt, env):
            raise StuckExpression("no rule for {!r}".format(expr))

        return run_stuck

    def _compile_value(self, expr, scope):
        """A value: constant unless it captures in-scope variables.

        Values may contain free variables (a lambda body's inner lambda,
        a tuple of variables): the tree machines would have substituted
        them by the time the node is reached, so the compiled machine
        substitutes the captured environment values here.  All runtime
        values are closed, so substitution never alpha-renames and the
        result is the exact AST the substitution machines build.
        """
        captured = [
            (name, scope[name])
            for name in sorted(ast.free_vars(expr), key=lambda n: scope.get(n, -1))
            if name in scope
        ]
        if not captured:
            return lambda rt, env: expr

        def run_capture(rt, env):
            value = expr
            for name, index in captured:
                value = ast.subst(value, name, env[index])
            return value

        return run_capture

    def _compile_read(self, name):
        slot = self._slot_of.get(name)
        if slot is None:
            # Not declared in this code version: the store may still
            # hold it (EP-GLOBAL-1), otherwise the read is stuck.
            def run_read_unknown(rt, env):
                value = rt.store.lookup(name)
                if value is None:
                    raise StuckExpression(
                        "undefined global '{}'".format(name)
                    )
                return value

            return run_read_unknown
        init = self._init_of[name]

        def run_read(rt, env):
            slots = rt.slots
            value = slots[slot]
            if value is None:
                # First read of this run: go through the store so the
                # provenance read log sees it, then cache.
                value = rt.store.lookup(name)
                if value is None:
                    value = init
                slots[slot] = value
            return value

        return run_read

    def _compile_write(self, expr, scope, frame):
        name = expr.name
        slot = self._slot_of.get(name)
        value_fn = self._compile(expr.value, scope, frame, False)

        def run_write(rt, env):
            if rt.mode is not STATE:
                raise StuckExpression(
                    "assignment to '{}' outside state mode".format(name)
                )
            value = value_fn(rt, env)
            rt.store.assign(name, value)
            if slot is not None and rt.slots[slot] is not None:
                # Refresh only a cache a read already populated — a
                # write must not suppress the *first* read's store
                # lookup, or the provenance read set would shrink.
                rt.slots[slot] = value
            return _UNIT

        return run_write

    def _compile_boxed(self, expr, scope, frame):
        box_id = expr.box_id
        body_fn = self._compile(expr.body, scope, frame, False)

        def run_boxed(rt, env):
            if rt.mode is not RENDER:
                raise StuckExpression("boxed outside render mode")
            child = Box(
                box_id=box_id, occurrence=rt.counters.next_for(box_id)
            )
            parent = rt.box
            rt.box = child
            try:
                value = body_fn(rt, env)
            finally:
                rt.box = parent
            # Reached only on success: a faulting body abandons the
            # child unappended, exactly like the tree machines.
            parent.append_child(child)
            return value

        return run_boxed

    def _compile_funref(self, name):
        """A bare function reference evaluates to its (lambda) body."""
        definition = self.code.function(name)
        if definition is None:
            def run_undefined(rt, env):
                raise StuckExpression(
                    "undefined function '{}'".format(name)
                )

            return run_undefined
        body = definition.body
        if body.is_value():
            return lambda rt, env: body
        # A non-value body (e.g. an alias FunRef) is its own closed unit.
        frame = _Frame(0)
        run = self._compile(body, {}, frame, False)
        size = frame.size

        def run_funref(rt, env):
            return run(rt, [None] * size)

        return run_funref

    def _compile_app(self, expr, scope, frame, tail):
        fn, arg = expr.fn, expr.arg
        arg_fn = self._compile(arg, scope, frame, False)
        if isinstance(fn, ast.FunRef):
            name = fn.name
            definition = self.code.function(name)
            if definition is None:
                # The callee is resolved before the argument runs, so
                # the argument's effects must not happen (EP-FUN parity).
                def run_undefined(rt, env):
                    raise StuckExpression(
                        "undefined function '{}'".format(name)
                    )

                return run_undefined
            if isinstance(definition.body, ast.Lam):
                plain = self._compile_fn_call(name, arg_fn, tail)
                if self.memo is not None and self.memo.eligible(name):
                    return self._compile_memo_call(name, arg_fn, plain)
                return plain
        if isinstance(fn, ast.Lam):
            # A syntactic let: bind the parameter in the current frame —
            # no lambda value is ever built, no substitution happens.
            index = frame.bind()
            shadowed = scope.get(fn.param)
            scope[fn.param] = index
            body_fn = self._compile(fn.body, scope, frame, tail)
            if shadowed is None:
                del scope[fn.param]
            else:
                scope[fn.param] = shadowed

            def run_let(rt, env):
                env[index] = arg_fn(rt, env)
                return body_fn(rt, env)

            return run_let
        fn_fn = self._compile(fn, scope, frame, False)
        if tail:
            def run_app_tail(rt, env):
                lam = fn_fn(rt, env)
                value = arg_fn(rt, env)
                if not isinstance(lam, ast.Lam):
                    raise StuckExpression(
                        "application of a non-function: {!r}".format(lam)
                    )
                run, size = self._lam_unit(lam)
                rt.steps = steps = rt.steps + 1
                if steps > rt.fuel:
                    Budget.charge(steps, rt.fuel, "compiled")
                env2 = [None] * size
                env2[0] = value
                return _TailCall(run, env2)

            return run_app_tail

        def run_app(rt, env):
            lam = fn_fn(rt, env)
            value = arg_fn(rt, env)
            return self._apply_lam(lam, value, rt)

        return run_app

    def _compile_fn_call(self, name, arg_fn, tail):
        """A direct call ``f v`` to a declared function with a Lam body."""
        units = self._units

        if tail:
            def run_call_tail(rt, env):
                value = arg_fn(rt, env)
                rt.steps = steps = rt.steps + 1
                if steps > rt.fuel:
                    Budget.charge(steps, rt.fuel, "compiled")
                unit = units.get(name)
                if unit is None:  # invalidated mid-flight; recompile
                    unit = self._function_unit(name)
                env2 = [None] * unit[1]
                env2[0] = value
                return _TailCall(unit[0], env2)

            return run_call_tail

        def run_call(rt, env):
            value = arg_fn(rt, env)
            rt.steps = steps = rt.steps + 1
            if steps > rt.fuel:
                Budget.charge(steps, rt.fuel, "compiled")
            unit = units.get(name)
            if unit is None:
                unit = self._function_unit(name)
            env2 = [None] * unit[1]
            env2[0] = value
            return _invoke(unit[0], rt, env2)

        return run_call

    def _compile_memo_call(self, name, arg_fn, plain):
        """Memo interception for an eligible render-function call site.

        Mirrors the CEK machine's ``_F_MEMO_ARG`` / ``_F_MEMO_CAP``
        frames: probe after the argument is evaluated; on a hit replay
        the cached box items (renumbered through this run's occurrence
        counters); on a miss run the body and capture the items it
        appended to the current box.  Never a tail call — the capture
        happens after the body returns.
        """
        memo = self.memo
        units = self._units

        def run_memo(rt, env):
            if rt.mode is not RENDER:
                return plain(rt, env)
            value = arg_fn(rt, env)
            rt.steps = steps = rt.steps + 1
            if steps > rt.fuel:
                Budget.charge(steps, rt.fuel, "compiled")
            entry = memo.probe(name, value, rt.store)
            box = rt.box
            if entry is not None:
                box._check_mutable()
                box.items.extend(replay_items(entry.items, rt.counters))
                return entry.value
            start = len(box.items)
            unit = units.get(name)
            if unit is None:
                unit = self._function_unit(name)
            env2 = [None] * unit[1]
            env2[0] = value
            result = _invoke(unit[0], rt, env2)
            memo.store_result(
                name, value, rt.store, box.items[start:], result
            )
            return result

        return run_memo

    def _compile_prim(self, expr, scope, frame):
        op = expr.op
        arg_fns = tuple(
            self._compile(arg, scope, frame, False) for arg in expr.args
        )
        sig = PRIM_SIGS.get(op) or self.natives.signature(op)
        if sig is None:
            # Unknown operator: still evaluate the arguments first, as
            # the sequence machinery of the tree machines does.
            def run_unknown(rt, env):
                for fn in arg_fns:
                    fn(rt, env)
                raise StuckExpression("unknown operator '{}'".format(op))

            return run_unknown
        effect = sig.effect
        if op in PRIM_SIGS:
            fast = _FAST_BUILTINS.get(op)
            if fast is not None and len(arg_fns) == 2 and effect is PURE:
                first_fn, second_fn = arg_fns

                def run_fast(rt, env):
                    return fast(first_fn(rt, env), second_fn(rt, env))

                return run_fast

            if effect is PURE:
                def run_builtin(rt, env):
                    return _apply_builtin(
                        op, tuple(fn(rt, env) for fn in arg_fns)
                    )

                return run_builtin

            def run_builtin_effect(rt, env):
                args = tuple(fn(rt, env) for fn in arg_fns)
                if rt.mode is not effect:
                    raise StuckExpression(
                        "operator '{}' has effect {} but mode is {}".format(
                            op, effect, rt.mode
                        )
                    )
                return _apply_builtin(op, args)

            return run_builtin_effect
        natives = self.natives
        services = self.services

        def run_native(rt, env):
            args = tuple(fn(rt, env) for fn in arg_fns)
            if effect is not PURE and rt.mode is not effect:
                raise StuckExpression(
                    "operator '{}' has effect {} but mode is {}".format(
                        op, effect, rt.mode
                    )
                )
            return apply_prim(op, args, natives=natives, services=services)

        return run_native

    # -- run entry --------------------------------------------------------------

    def _run(self, expr, mode, store, queue, box, counters, fuel):
        rt = _Run(mode, store, queue, box, counters,
                  [None] * self._n_slots, fuel)
        try:
            # The system's entry shapes are `App(lam, value)` (THUNK /
            # PUSH / RENDER all apply a page or handler lambda), which
            # hits the identity-cached unit for the lambda.  Anything
            # else (probes, tests) compiles as a one-shot unit.
            if (
                type(expr) is ast.App
                and isinstance(expr.fn, ast.Lam)
                and expr.arg.is_value()
            ):
                return self._apply_lam(expr.fn, expr.arg, rt)
            frame = _Frame(0)
            run = self._compile(expr, {}, frame, False)
            return _invoke(run, rt, [None] * frame.size)
        finally:
            self.tracer.add("eval_steps", rt.steps)

    # -- Evaluator protocol -----------------------------------------------------

    def run_state(self, store, queue, expr, fuel=DEFAULT_FUEL):
        """``(C, S, Q, e) →s* (C, S', Q', v)`` — returns the final value."""
        return self._run(
            expr, STATE, store, queue, None, _OccurrenceCounter(), fuel
        )

    def run_render(self, store, expr, fuel=DEFAULT_FUEL):
        """``(C, S, ε, e) →r* (C, S, B, v)`` — returns the root box."""
        root = make_root()
        self._run(
            expr, RENDER, store, None, root, _OccurrenceCounter(), fuel
        )
        return root.freeze()

    def run_pure(self, store, expr, fuel=DEFAULT_FUEL):
        """``(C, S, e) →p* (C, S, v)``."""
        return self._run(
            expr, PURE, store, None, None, _OccurrenceCounter(), fuel
        )


def _make_fast_builtins():
    """Inline bodies for the hottest pure binary builtins.

    Each fast path handles the well-typed case and falls back to
    ``_apply_builtin`` for anything else, so error messages (and any
    future semantics tweaks to the slow path) stay authoritative.
    """
    from ..eval.natives import bool_value

    def fast_add(a, b):
        if type(a) is _Num and type(b) is _Num:
            return _Num(a.value + b.value)
        return _apply_builtin("add", (a, b))

    def fast_sub(a, b):
        if type(a) is _Num and type(b) is _Num:
            return _Num(a.value - b.value)
        return _apply_builtin("sub", (a, b))

    def fast_mul(a, b):
        if type(a) is _Num and type(b) is _Num:
            return _Num(a.value * b.value)
        return _apply_builtin("mul", (a, b))

    def fast_lt(a, b):
        if type(a) is _Num and type(b) is _Num:
            return bool_value(a.value < b.value)
        return _apply_builtin("lt", (a, b))

    def fast_le(a, b):
        if type(a) is _Num and type(b) is _Num:
            return bool_value(a.value <= b.value)
        return _apply_builtin("le", (a, b))

    def fast_gt(a, b):
        if type(a) is _Num and type(b) is _Num:
            return bool_value(a.value > b.value)
        return _apply_builtin("gt", (a, b))

    def fast_ge(a, b):
        if type(a) is _Num and type(b) is _Num:
            return bool_value(a.value >= b.value)
        return _apply_builtin("ge", (a, b))

    def fast_concat(a, b):
        if type(a) is ast.Str and type(b) is ast.Str:
            return ast.Str(a.value + b.value)
        return _apply_builtin("concat", (a, b))

    return {
        "add": fast_add,
        "sub": fast_sub,
        "mul": fast_mul,
        "lt": fast_lt,
        "le": fast_le,
        "gt": fast_gt,
        "ge": fast_ge,
        "concat": fast_concat,
    }


_FAST_BUILTINS = _make_fast_builtins()
