"""The core calculus of the paper (Figs. 6 and 7).

Re-exports the most commonly used names so client code can write
``from repro.core import Num, App, Code, NUMBER, PURE`` without knowing the
module layout.
"""

from .ast import (
    App,
    Boxed,
    Expr,
    FunRef,
    GlobalRead,
    GlobalWrite,
    If,
    Lam,
    ListLit,
    Num,
    Pop,
    Post,
    Prim,
    Proj,
    Push,
    SetAttr,
    Str,
    Tuple,
    UNIT_VALUE,
    Var,
    children,
    contains_lambda,
    free_vars,
    fresh_name,
    is_closed,
    rebuild,
    size,
    subst,
    walk,
)
from .defs import Code, Def, EMPTY_CODE, FunDef, GlobalDef, PageDef
from .effects import (
    ALL_EFFECTS,
    Effect,
    PURE,
    RENDER,
    STATE,
    join,
    join_all,
    parse_effect,
    subeffect,
)
from .errors import (
    DeadlineExceeded,
    EffectProblem,
    EvalError,
    FuelExhausted,
    InjectedFault,
    NativeError,
    ReproError,
    SessionQuarantined,
    StuckExpression,
    SyntaxProblem,
    SystemError_,
    TypeProblem,
    UpdateRejected,
)
from .names import START_PAGE
from .prims import PRIM_SIGS, PrimSig, lookup_prim, match_signature
from .pretty import pretty, pretty_code, pretty_def, pretty_type
from .types import (
    FunType,
    ListType,
    NUMBER,
    NumberType,
    STRING,
    StringType,
    TupleType,
    Type,
    UNIT,
    fun,
    is_subtype,
    list_of,
    tuple_of,
)

__all__ = [name for name in dir() if not name.startswith("_")]
