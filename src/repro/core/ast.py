"""Expression syntax of the core calculus (Fig. 6).

    v ::= n | s | x | (v1, ..., vn) | λ(x : τ). e | [v1, ..., vn]
    e ::= v | e1 e2 | f | (e1, ..., en) | e.n | g | g := e
        | push p e | pop | boxed e | post e | box.a := e
        | if e then e else e | op(e1, ..., en)

Two conservative extensions over the paper's grammar (see DESIGN.md §2):

* ``if`` — the paper encodes conditionals with thunks ("conditionals via
  lambda abstractions and thunks", §4.1); we keep that encoding expressible
  but give the lowering a direct conditional so that lowered code stays
  readable.  The condition is a number; zero is false (there is no bool in
  Fig. 6's type grammar).
* ``op(e...)`` / list literals — primitive operators (arithmetic, string,
  list operations and effectful natives such as the simulated web).  Each
  operator carries a declared type signature *and effect* in
  ``repro.core.prims`` / the native registry, so the effect discipline is
  preserved.

Nodes are immutable (frozen dataclasses); structural equality is ``==``.
``Boxed`` additionally carries a non-compared ``box_id`` used by the IDE to
map boxes in the live view back to the boxed statement that created them
(Fig. 2's UI-code navigation); it is erased metadata as far as the calculus
is concerned.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from .effects import Effect
from .errors import ReproError
from .pickling import SlotStatePickle
from .types import Type

_fresh_counter = itertools.count()


def fresh_name(base="x"):
    """Return a variable name guaranteed distinct from any source name.

    Fresh names contain ``%`` which the surface lexer never produces, so
    alpha-renaming cannot capture programmer-written variables.
    """
    return "{}%{}".format(base, next(_fresh_counter))


class Expr(SlotStatePickle):
    """Base class of all expressions."""

    __slots__ = ()

    def is_value(self):
        """Is this expression a value ``v`` in the sense of Fig. 6?"""
        return False


# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Num(Expr):
    """Number literal ``n``."""

    value: float
    __slots__ = ("value",)

    def __post_init__(self):
        if isinstance(self.value, bool) or not isinstance(
            self.value, (int, float)
        ):
            raise ReproError("Num takes a number, got {!r}".format(self.value))
        object.__setattr__(self, "value", float(self.value))

    def is_value(self):
        return True


@dataclass(frozen=True)
class Str(Expr):
    """String literal ``s``."""

    value: str
    __slots__ = ("value",)

    def __post_init__(self):
        if not isinstance(self.value, str):
            raise ReproError("Str takes a string, got {!r}".format(self.value))

    def is_value(self):
        return True


@dataclass(frozen=True)
class Var(Expr):
    """Variable ``x`` (bound by a lambda)."""

    name: str
    __slots__ = ("name",)

    def is_value(self):
        return True


@dataclass(frozen=True)
class Tuple(Expr):
    """Tuple ``(e1, ..., en)``; a value when every component is a value.

    The empty tuple is the unit value ``()``.
    """

    items: tuple
    __slots__ = ("items",)

    def __post_init__(self):
        if not isinstance(self.items, tuple):
            object.__setattr__(self, "items", tuple(self.items))

    def is_value(self):
        return all(item.is_value() for item in self.items)


@dataclass(frozen=True)
class Lam(Expr):
    """Lambda ``λ(x : τ). e`` annotated with its latent effect ``µ``.

    Rule T-LAM types the body under an effect ``µ1`` that becomes the
    effect on the arrow; we carry that ``µ1`` as an annotation so type
    checking stays syntax-directed (inference would also be possible but
    the paper's surface language always knows the intended effect: handlers
    are ``s``, render thunks are ``r``).
    """

    param: str
    param_type: Type
    body: Expr
    effect: Effect
    __slots__ = ("param", "param_type", "body", "effect")

    def is_value(self):
        return True


@dataclass(frozen=True)
class ListLit(Expr):
    """List literal ``[e1, ..., en] : list τ``; a value when items are values.

    The element type annotation makes typing of the empty list
    syntax-directed.
    """

    items: tuple
    element_type: Type
    __slots__ = ("items", "element_type")

    def __post_init__(self):
        if not isinstance(self.items, tuple):
            object.__setattr__(self, "items", tuple(self.items))

    def is_value(self):
        return all(item.is_value() for item in self.items)


# ---------------------------------------------------------------------------
# Non-value expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class App(Expr):
    """Application ``e1 e2`` (EP-APP)."""

    fn: Expr
    arg: Expr
    __slots__ = ("fn", "arg")


@dataclass(frozen=True)
class FunRef(Expr):
    """Reference to a global function ``f`` (EP-FUN) or a registered native."""

    name: str
    __slots__ = ("name",)


@dataclass(frozen=True)
class Proj(Expr):
    """Projection ``e.n`` with 1-based index ``n`` (EP-TUPLE)."""

    tuple_expr: Expr
    index: int
    __slots__ = ("tuple_expr", "index")

    def __post_init__(self):
        if not isinstance(self.index, int) or self.index < 1:
            raise ReproError(
                "projection index must be a positive int, got {!r}".format(
                    self.index
                )
            )


@dataclass(frozen=True)
class GlobalRead(Expr):
    """Read of global variable ``g`` (EP-GLOBAL-1/2)."""

    name: str
    __slots__ = ("name",)


@dataclass(frozen=True)
class GlobalWrite(Expr):
    """Assignment ``g := e`` (ES-ASSIGN); only legal under effect ``s``."""

    name: str
    value: Expr
    __slots__ = ("name", "value")


@dataclass(frozen=True)
class Push(Expr):
    """``push p e`` — enqueue a push event for page ``p`` (ES-PUSH)."""

    page: str
    arg: Expr
    __slots__ = ("page", "arg")


@dataclass(frozen=True)
class Pop(Expr):
    """``pop`` — enqueue a pop event (ES-POP)."""

    __slots__ = ()


@dataclass(frozen=True)
class Boxed(Expr):
    """``boxed e`` — run ``e`` in a fresh box, nest it in the current one
    (ER-BOXED); only legal under effect ``r``.

    ``box_id`` identifies the boxed *statement* for the IDE's UI-code
    navigation; it does not participate in structural equality.
    """

    # No __slots__ here: a dataclass field default is implemented as a class
    # attribute, which conflicts with a same-named slot.
    body: Expr
    box_id: object = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Post(Expr):
    """``post e`` — append a value to the current box's content (ER-POST)."""

    value: Expr
    __slots__ = ("value",)


@dataclass(frozen=True)
class SetAttr(Expr):
    """``box.a := e`` — set attribute ``a`` of the current box (ER-ATTR)."""

    attr: str
    value: Expr
    __slots__ = ("attr", "value")


@dataclass(frozen=True)
class If(Expr):
    """``if e then e1 else e2`` over numbers; non-zero is true (extension)."""

    cond: Expr
    then_branch: Expr
    else_branch: Expr
    __slots__ = ("cond", "then_branch", "else_branch")


@dataclass(frozen=True)
class Prim(Expr):
    """Primitive/native operator application ``op(e1, ..., en)``.

    Pure operators (arithmetic, string, list) step under →p; natives with a
    state effect (e.g. the simulated web request) step under →s only.
    """

    op: str
    args: tuple
    __slots__ = ("op", "args")

    def __post_init__(self):
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))


#: The unit value ``()``.
UNIT_VALUE = Tuple(())


# ---------------------------------------------------------------------------
# Generic traversal
# ---------------------------------------------------------------------------


def children(expr):
    """Return the immediate sub-expressions of ``expr`` (left to right)."""
    if isinstance(expr, (Num, Str, Var, FunRef, Pop, GlobalRead)):
        return ()
    if isinstance(expr, Tuple):
        return expr.items
    if isinstance(expr, ListLit):
        return expr.items
    if isinstance(expr, Lam):
        return (expr.body,)
    if isinstance(expr, App):
        return (expr.fn, expr.arg)
    if isinstance(expr, Proj):
        return (expr.tuple_expr,)
    if isinstance(expr, GlobalWrite):
        return (expr.value,)
    if isinstance(expr, Push):
        return (expr.arg,)
    if isinstance(expr, Boxed):
        return (expr.body,)
    if isinstance(expr, Post):
        return (expr.value,)
    if isinstance(expr, SetAttr):
        return (expr.value,)
    if isinstance(expr, If):
        return (expr.cond, expr.then_branch, expr.else_branch)
    if isinstance(expr, Prim):
        return expr.args
    raise ReproError("unknown expression node: {!r}".format(expr))


def rebuild(expr, new_children):
    """Rebuild ``expr`` with ``new_children`` substituted for its children."""
    new_children = tuple(new_children)
    if isinstance(expr, (Num, Str, Var, FunRef, Pop, GlobalRead)):
        assert not new_children
        return expr
    if isinstance(expr, Tuple):
        return Tuple(new_children)
    if isinstance(expr, ListLit):
        return ListLit(new_children, expr.element_type)
    if isinstance(expr, Lam):
        (body,) = new_children
        return Lam(expr.param, expr.param_type, body, expr.effect)
    if isinstance(expr, App):
        fn, arg = new_children
        return App(fn, arg)
    if isinstance(expr, Proj):
        (tuple_expr,) = new_children
        return Proj(tuple_expr, expr.index)
    if isinstance(expr, GlobalWrite):
        (value,) = new_children
        return GlobalWrite(expr.name, value)
    if isinstance(expr, Push):
        (arg,) = new_children
        return Push(expr.page, arg)
    if isinstance(expr, Boxed):
        (body,) = new_children
        return Boxed(body, box_id=expr.box_id)
    if isinstance(expr, Post):
        (value,) = new_children
        return Post(value)
    if isinstance(expr, SetAttr):
        (value,) = new_children
        return SetAttr(expr.attr, value)
    if isinstance(expr, If):
        cond, then_branch, else_branch = new_children
        return If(cond, then_branch, else_branch)
    if isinstance(expr, Prim):
        return Prim(expr.op, new_children)
    raise ReproError("unknown expression node: {!r}".format(expr))


def walk(expr):
    """Yield ``expr`` and every descendant, pre-order."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(children(node)))


def free_vars(expr):
    """The set of free variable names of ``expr``."""
    if isinstance(expr, Var):
        return {expr.name}
    if isinstance(expr, Lam):
        return free_vars(expr.body) - {expr.param}
    result = set()
    for child in children(expr):
        result |= free_vars(child)
    return result


def subst(expr, name, value):
    """Capture-avoiding substitution ``expr[value/name]`` (EP-APP).

    ``value`` must be a value.  Alpha-renames binders whose parameter would
    capture a free variable of ``value``.
    """
    if not value.is_value():
        raise ReproError("substitution requires a value, got {!r}".format(value))
    return _subst(expr, name, value, free_vars(value))


def _subst(expr, name, value, value_free):
    if isinstance(expr, Var):
        return value if expr.name == name else expr
    if isinstance(expr, Lam):
        if expr.param == name:
            return expr  # shadowed; substitution stops here
        if expr.param in value_free:
            renamed = fresh_name(expr.param.split("%")[0])
            body = _subst(expr.body, expr.param, Var(renamed), {renamed})
            expr = Lam(renamed, expr.param_type, body, expr.effect)
        return Lam(
            expr.param,
            expr.param_type,
            _subst(expr.body, name, value, value_free),
            expr.effect,
        )
    kids = children(expr)
    if not kids:
        return expr
    new_kids = [_subst(child, name, value, value_free) for child in kids]
    if all(new is old for new, old in zip(new_kids, kids)):
        return expr
    return rebuild(expr, new_kids)


def is_closed(expr):
    """Does ``expr`` have no free variables?"""
    return not free_vars(expr)


def size(expr):
    """Number of AST nodes, used by benchmarks to bucket program sizes."""
    return sum(1 for _ in walk(expr))


def contains_lambda(expr):
    """Does any lambda occur in ``expr``?

    Used by tests for the "no stale code" guarantee: after an UPDATE the
    store and page stack must contain no function values (Section 4.2).
    """
    return any(isinstance(node, Lam) for node in walk(expr))
