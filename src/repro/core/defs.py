"""Program definitions ``d`` and the code component ``C`` (Fig. 7).

    d ::= global g : τ = v
        | fun f : τ is e
        | page p(τ) init e1 render e2

    C ::= ε | C d

``Code`` is an immutable, insertion-ordered collection of definitions with
one shared namespace (rule T-C-* requires that no name is defined twice).
Live editing produces a *new* ``Code`` value on every keystroke; the UPDATE
transition of Fig. 9 then swaps it in wholesale — there is deliberately no
in-place mutation of a running program's code.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import ast
from .effects import Effect, RENDER, STATE
from .errors import ReproError
from .types import FunType, Type, UNIT, fun


class Def:
    """Base class of program definitions."""

    __slots__ = ()


@dataclass(frozen=True)
class GlobalDef(Def):
    """``global g : τ = v`` — a model-state variable with its initial value.

    The initial value must be a *value* (Fig. 7) and the type must be
    →-free (rule T-C-GLOBAL) so that no closure can ever live in the store.
    """

    name: str
    type: Type
    init: ast.Expr
    __slots__ = ("name", "type", "init")

    def __post_init__(self):
        if not self.init.is_value():
            raise ReproError(
                "initial value of global '{}' must be a value".format(self.name)
            )


@dataclass(frozen=True)
class FunDef(Def):
    """``fun f : τ1 -µ> τ2 is e`` — a named, possibly recursive function.

    ``e`` is an expression (usually a lambda) that must type *purely* as
    the declared function type (rule T-C-FUN).  Recursion — and therefore
    every loop of the surface language — goes through this table via
    rule EP-FUN: ``f → e``.
    """

    name: str
    type: FunType
    body: ast.Expr
    __slots__ = ("name", "type", "body")

    def __post_init__(self):
        if not isinstance(self.type, FunType):
            raise ReproError(
                "function '{}' must declare a function type".format(self.name)
            )


@dataclass(frozen=True)
class PageDef(Def):
    """``page p(τ) init e1 render e2``.

    ``init`` types as ``τ -s> ()`` and runs once when the page is pushed
    (rule PUSH); ``render`` types as ``τ -r> ()`` and runs every time the
    display must be refreshed (rule RENDER).  The argument type ``τ`` must
    be →-free (rule T-C-PAGE) so page arguments survive code updates
    without retaining stale closures.
    """

    name: str
    arg_type: Type
    init: ast.Expr
    render: ast.Expr
    __slots__ = ("name", "arg_type", "init", "render")

    @property
    def init_type(self):
        return fun(self.arg_type, UNIT, STATE)

    @property
    def render_type(self):
        return fun(self.arg_type, UNIT, RENDER)


class Code:
    """The program ``C``: an immutable named collection of definitions.

    Supports the paper's lookup forms — ``C(p) = (fi, fr)`` becomes
    :meth:`page`, ``fun f : τ is e ∈ C`` becomes :meth:`function`, and
    ``global g : τ = v ∈ C`` becomes :meth:`global_`.
    """

    __slots__ = ("_defs",)

    def __init__(self, defs=()):
        table = {}
        for definition in defs:
            if not isinstance(definition, Def):
                raise ReproError(
                    "not a definition: {!r}".format(definition)
                )
            if definition.name in table:
                raise ReproError(
                    "duplicate definition of '{}'".format(definition.name)
                )
            table[definition.name] = definition
        self._defs = table

    # -- collection protocol ------------------------------------------------

    def __iter__(self):
        return iter(self._defs.values())

    def __len__(self):
        return len(self._defs)

    def __contains__(self, name):
        return name in self._defs

    def __eq__(self, other):
        return isinstance(other, Code) and self._defs == other._defs

    def __hash__(self):
        return hash(tuple(self._defs.items()))

    def __repr__(self):
        return "Code({} defs: {})".format(
            len(self._defs), ", ".join(self._defs)
        )

    def defined_names(self):
        """``Defs(C)`` of Fig. 11 — all defined names, in definition order."""
        return tuple(self._defs)

    # -- typed lookups --------------------------------------------------------

    def lookup(self, name):
        """Return the definition named ``name`` or ``None``."""
        return self._defs.get(name)

    def global_(self, name):
        """Return the :class:`GlobalDef` named ``name`` or ``None``."""
        definition = self._defs.get(name)
        return definition if isinstance(definition, GlobalDef) else None

    def function(self, name):
        """Return the :class:`FunDef` named ``name`` or ``None``."""
        definition = self._defs.get(name)
        return definition if isinstance(definition, FunDef) else None

    def page(self, name):
        """Return the :class:`PageDef` named ``name`` or ``None``."""
        definition = self._defs.get(name)
        return definition if isinstance(definition, PageDef) else None

    def globals(self):
        """All global-variable definitions, in definition order."""
        return tuple(d for d in self if isinstance(d, GlobalDef))

    def functions(self):
        """All function definitions, in definition order."""
        return tuple(d for d in self if isinstance(d, FunDef))

    def pages(self):
        """All page definitions, in definition order."""
        return tuple(d for d in self if isinstance(d, PageDef))

    # -- functional updates (used by the live editor) -------------------------

    def with_def(self, definition):
        """A new ``Code`` with ``definition`` added or replaced by name."""
        defs = [d for d in self if d.name != definition.name]
        defs.append(definition)
        return Code(defs)

    def without(self, name):
        """A new ``Code`` with any definition named ``name`` removed."""
        return Code(d for d in self if d.name != name)


#: The empty program ``ε``.
EMPTY_CODE = Code()
