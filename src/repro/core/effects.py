"""The effect lattice ``µ ::= p | r | s`` (Fig. 6).

Effects classify *what an expression is allowed to do*:

* ``p`` (pure)   — no side effects; may read code and store (EP-GLOBAL-*).
* ``s`` (state)  — may additionally write globals and push/pop pages
  (ES-ASSIGN, ES-PUSH, ES-POP).
* ``r`` (render) — may additionally create boxes, post content and set box
  attributes (ER-BOXED, ER-POST, ER-ATTR), but may *not* write globals.

The sub-effect order is the flat lattice ``p ⊑ s`` and ``p ⊑ r`` with ``s``
and ``r`` incomparable.  This incomparability *is* the model/view
separation: no expression can both mutate the model and build the view.

Rule T-SUB of Fig. 10 lets a pure function be used wherever a stateful or
render function is expected; :func:`subeffect` is the relation it appeals
to.
"""

from __future__ import annotations

import enum

from .errors import ReproError


class Effect(enum.Enum):
    """One of the three effect modes of the calculus."""

    PURE = "p"
    STATE = "s"
    RENDER = "r"

    def __str__(self):
        return self.value

    def __repr__(self):
        return "Effect.{}".format(self.name)


PURE = Effect.PURE
STATE = Effect.STATE
RENDER = Effect.RENDER

ALL_EFFECTS = (PURE, STATE, RENDER)


def parse_effect(text):
    """Parse the one-letter effect syntax used by Fig. 6 (``p``/``s``/``r``)."""
    for effect in ALL_EFFECTS:
        if text == effect.value:
            return effect
    raise ReproError("unknown effect: {!r}".format(text))


def subeffect(lower, upper):
    """Return ``True`` when ``lower ⊑ upper`` in the effect lattice.

    ``p`` is below everything; ``s`` and ``r`` are only below themselves.
    """
    return lower is PURE or lower is upper


def join(left, right):
    """Least upper bound of two effects, or ``None`` if it does not exist.

    ``join(s, r)`` is ``None``: there is deliberately no effect that permits
    both mutating the model and building the view.
    """
    if subeffect(left, right):
        return right
    if subeffect(right, left):
        return left
    return None


def join_all(effects):
    """Fold :func:`join` over an iterable; ``None`` if any join fails."""
    result = PURE
    for effect in effects:
        result = join(result, effect)
        if result is None:
            return None
    return result


def allows_state(effect):
    """May an expression under ``effect`` take ES-* steps (assign/push/pop)?"""
    return effect is STATE


def allows_render(effect):
    """May an expression under ``effect`` take ER-* steps (boxed/post/attr)?"""
    return effect is RENDER
