"""Exception hierarchy for the whole library.

Every failure mode in the reproduction raises a subclass of
:class:`ReproError`, so callers can catch one base class at the API
boundary.  The hierarchy mirrors the phases of the system: syntax errors
from the surface parser, type errors from the type-and-effect checker
(Fig. 10/11 of the paper), evaluation errors from the machine (Fig. 8), and
system errors from the global transition relation (Fig. 9).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SpannedError(ReproError):
    """An error that can carry a source span (``repro.surface.span.Span``).

    The span is optional because errors can also originate from
    programmatically-constructed core terms that have no source text.
    """

    def __init__(self, message, span=None):
        super().__init__(message)
        self.message = message
        self.span = span

    def __str__(self):
        if self.span is not None:
            return "{}: {}".format(self.span, self.message)
        return self.message


class SyntaxProblem(SpannedError):
    """A lexical or grammatical error in surface-language source text."""


class TypeProblem(SpannedError):
    """A violation of the type-and-effect system (Fig. 10/11).

    ``rule`` names the typing rule whose premise failed (e.g. ``"T-ASSIGN"``)
    so tests and diagnostics can pinpoint exactly which part of the formal
    system rejected the program.
    """

    def __init__(self, message, rule=None, span=None):
        super().__init__(message, span=span)
        self.rule = rule

    def __str__(self):
        base = super().__str__()
        if self.rule is not None:
            return "[{}] {}".format(self.rule, base)
        return base


class EffectProblem(TypeProblem):
    """A type error caused specifically by an effect-discipline violation.

    For example: render code assigning a global variable, or an event
    handler creating a box.  These are the errors that enforce the paper's
    model/view separation.
    """


class EvalError(ReproError):
    """A runtime failure in expression evaluation.

    Well-typed programs cannot raise this except through explicit partial
    operations (division by zero, out-of-range projection on a *list*,
    fuel exhaustion); the metatheory tests rely on that.
    """


class FuelExhausted(EvalError):
    """Evaluation exceeded its step budget (used to bound divergence)."""


class StuckExpression(EvalError):
    """A non-value expression admits no evaluation step in the current mode.

    The progress property of Section 4.3 says this never happens for
    well-typed expressions; the metatheory test-suite asserts exactly that.
    """


class SystemError_(ReproError):
    """An illegal system-level transition was requested (Fig. 9).

    Named with a trailing underscore to avoid shadowing the Python builtin
    ``SystemError``.
    """


class UpdateRejected(SystemError_):
    """A code update did not satisfy ``C' |- C'`` and was refused.

    The UPDATE transition of Fig. 9 requires the incoming program to be
    well-typed; ill-typed programs never replace the running code, which is
    what keeps the live view continuously available while the programmer
    types through intermediate broken states.
    """

    def __init__(self, message, problems=()):
        super().__init__(message)
        self.problems = tuple(problems)


class NativeError(EvalError):
    """A native (host-implemented) function failed."""


class DeadlineExceeded(EvalError):
    """A single transition consumed more virtual time than its budget.

    Raised by the supervision layer (``repro.resilience``) when a
    :class:`~repro.resilience.supervisor.Budget` carries a virtual-clock
    deadline and one handler or render charged more simulated latency
    than the deadline allows — the live system's answer to "slow I/O
    must not wedge a session forever".
    """


class InjectedFault(EvalError):
    """A fault deliberately injected by the chaos harness.

    Only ever raised by :mod:`repro.resilience.chaos` under a seeded
    :class:`~repro.resilience.chaos.FaultPlan`; seeing one outside a
    chaos test means an injector leaked into production wiring.
    """


class SessionQuarantined(ReproError):
    """The session's circuit breaker is open.

    A session that faults repeatedly is quarantined by the
    :class:`~repro.serve.host.SessionHost`: interactions are refused
    with this typed error while ``render`` keeps serving the last-good
    display (degraded, but never a dead session).  A successful
    ``edit_source`` — the programmer fixing the bug — closes the
    breaker again.
    """
