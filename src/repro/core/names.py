"""Identifier kinds of the calculus (Fig. 6).

The paper distinguishes four identifier namespaces:

* ``g`` — global variables (the model state),
* ``f`` — global functions (the code),
* ``p`` — page names, with the distinguished page ``start``,
* ``a`` — box attributes (``ontap``, ``margin``, ...).

We keep identifiers as plain strings but centralize validation and the
well-known attribute names here so the rest of the library never hard-codes
string literals.
"""

from __future__ import annotations

import re

from .errors import ReproError

#: The page every program must define (rule T-SYS requires it).
START_PAGE = "start"

# ---------------------------------------------------------------------------
# Well-known box attributes.  The full attribute environment (with types and
# defaults) lives in ``repro.boxes.attributes``; these constants exist so
# call-sites reference a name rather than a literal.
# ---------------------------------------------------------------------------

#: Tap handler, type ``() -s> ()`` (rule TAP of Fig. 9 fires it).
ATTR_ONTAP = "ontap"
#: Edit handler for editable text boxes, type ``string -s> ()``.
ATTR_ONEDIT = "onedit"
ATTR_MARGIN = "margin"
ATTR_PADDING = "padding"
ATTR_BACKGROUND = "background"
ATTR_COLOR = "color"
ATTR_FONT_SIZE = "font size"
ATTR_HORIZONTAL = "horizontal"
ATTR_WIDTH = "width"
ATTR_BORDER = "border"
ATTR_EDITABLE = "editable"

_IDENT_RE = re.compile(r"[A-Za-z_$][A-Za-z0-9_$ ]*\Z")


def is_valid_identifier(name):
    """Return ``True`` when ``name`` is usable as an identifier.

    TouchDevelop identifiers may contain interior spaces ("display
    listentry" in Fig. 3); we allow the same, but not leading/trailing
    whitespace or an empty name.
    """
    return (
        isinstance(name, str)
        and bool(_IDENT_RE.match(name))
        and not name.endswith(" ")
    )


def check_identifier(name, kind="identifier"):
    """Validate ``name`` and return it; raise :class:`ReproError` if invalid."""
    if not is_valid_identifier(name):
        raise ReproError("invalid {}: {!r}".format(kind, name))
    return name
