"""Pickle support for the frozen, slotted value classes.

Expressions (:mod:`repro.core.ast`), types (:mod:`repro.core.types`)
and box-tree items (:mod:`repro.boxes.tree`) are immutable value
classes: frozen dataclasses with explicit ``__slots__``, or (for
:class:`~repro.boxes.tree.Box`) a slotted class whose ``__setattr__``
enforces freeze-after-render.  That combination is not picklable by
default — protocol-2 state restore assigns slots with ``setattr``,
which the immutability guards refuse.

:class:`SlotStatePickle` fixes exactly that: state is captured as a
plain name → value dict over every slot in the MRO (plus ``__dict__``
for hybrid classes), and restored with ``object.__setattr__`` —
bypassing the guards once, at materialization, which is the same thing
``__init__`` does via ``object.__setattr__`` on frozen dataclasses.
Value semantics are unaffected: unpickling builds a structurally equal
(``==``) instance, which is all the hash-consed-by-value classes
promise anyway.

This is what lets memo entries — whose values, read sets and box
fragments are precisely these classes — cross process boundaries in the
cluster's shared cache tier (:mod:`repro.cluster.memoshare`).
"""

from __future__ import annotations


class SlotStatePickle:
    """Mixin: dict-shaped pickle state restored via ``object.__setattr__``.

    Safe for any mix of ``__slots__`` and ``__dict__`` down the MRO;
    unset slots are simply absent from the state.
    """

    __slots__ = ()

    def __getstate__(self):
        state = {}
        for klass in type(self).__mro__:
            for name in getattr(klass, "__slots__", ()):
                if hasattr(self, name):
                    state[name] = getattr(self, name)
        instance_dict = getattr(self, "__dict__", None)
        if instance_dict:
            state.update(instance_dict)
        return state

    def __setstate__(self, state):
        for name, value in state.items():
            object.__setattr__(self, name, value)
