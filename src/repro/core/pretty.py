"""Pretty-printer for core types, expressions and programs.

Produces text close to the paper's notation (Fig. 6/7): ``λ(x : τ). e``,
``boxed e``, ``g := e``, ``push p e``, ``fun f : τ is e`` and so on.  The
printer is used by diagnostics, by ``examples/update_semantics_tour.py``
and by tests that lock down the shape of lowered code.
"""

from __future__ import annotations

from . import ast
from .defs import Code, FunDef, GlobalDef, PageDef
from .errors import ReproError

# Precedence levels, loosest to tightest.
_PREC_TOP = 0      # if/lambda/assign bodies
_PREC_APP = 10     # application, prefix keywords
_PREC_PROJ = 20    # projection
_PREC_ATOM = 30


def pretty_type(type_):
    """Render a type; delegates to the types' own ``__str__``."""
    return str(type_)


def pretty(expr, indent=0):
    """Render an expression on a single logical line."""
    return _pp(expr, _PREC_TOP)


def _parens(text, inner_prec, outer_prec):
    if inner_prec < outer_prec:
        return "({})".format(text)
    return text


def _pp(expr, prec):
    if isinstance(expr, ast.Num):
        value = expr.value
        if value == int(value):
            return str(int(value))
        return repr(value)
    if isinstance(expr, ast.Str):
        return '"{}"'.format(expr.value.replace("\\", "\\\\").replace('"', '\\"'))
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.Tuple):
        return "({})".format(", ".join(_pp(e, _PREC_TOP) for e in expr.items))
    if isinstance(expr, ast.ListLit):
        return "[{}] : list {}".format(
            ", ".join(_pp(e, _PREC_TOP) for e in expr.items), expr.element_type
        )
    if isinstance(expr, ast.Lam):
        text = "λ{}({} : {}). {}".format(
            "" if expr.effect.value == "p" else expr.effect.value,
            expr.param,
            expr.param_type,
            _pp(expr.body, _PREC_TOP),
        )
        return _parens(text, _PREC_TOP, prec)
    if isinstance(expr, ast.App):
        text = "{} {}".format(_pp(expr.fn, _PREC_APP), _pp(expr.arg, _PREC_PROJ))
        return _parens(text, _PREC_APP, prec)
    if isinstance(expr, ast.FunRef):
        return "•{}".format(expr.name)
    if isinstance(expr, ast.Proj):
        text = "{}.{}".format(_pp(expr.tuple_expr, _PREC_PROJ), expr.index)
        return _parens(text, _PREC_PROJ, prec)
    if isinstance(expr, ast.GlobalRead):
        return "□{}".format(expr.name)
    if isinstance(expr, ast.GlobalWrite):
        text = "□{} := {}".format(expr.name, _pp(expr.value, _PREC_TOP))
        return _parens(text, _PREC_TOP, prec)
    if isinstance(expr, ast.Push):
        text = "push {} {}".format(expr.page, _pp(expr.arg, _PREC_PROJ))
        return _parens(text, _PREC_APP, prec)
    if isinstance(expr, ast.Pop):
        return "pop"
    if isinstance(expr, ast.Boxed):
        text = "boxed {}".format(_pp(expr.body, _PREC_PROJ))
        return _parens(text, _PREC_APP, prec)
    if isinstance(expr, ast.Post):
        text = "post {}".format(_pp(expr.value, _PREC_PROJ))
        return _parens(text, _PREC_APP, prec)
    if isinstance(expr, ast.SetAttr):
        text = "box.{} := {}".format(expr.attr, _pp(expr.value, _PREC_TOP))
        return _parens(text, _PREC_TOP, prec)
    if isinstance(expr, ast.If):
        text = "if {} then {} else {}".format(
            _pp(expr.cond, _PREC_TOP),
            _pp(expr.then_branch, _PREC_TOP),
            _pp(expr.else_branch, _PREC_TOP),
        )
        return _parens(text, _PREC_TOP, prec)
    if isinstance(expr, ast.Prim):
        return "{}({})".format(
            expr.op, ", ".join(_pp(a, _PREC_TOP) for a in expr.args)
        )
    raise ReproError("cannot pretty-print {!r}".format(expr))


def pretty_def(definition):
    """Render one program definition in the style of Fig. 7."""
    if isinstance(definition, GlobalDef):
        return "global {} : {} = {}".format(
            definition.name, definition.type, pretty(definition.init)
        )
    if isinstance(definition, FunDef):
        return "fun {} : {} is {}".format(
            definition.name, definition.type, pretty(definition.body)
        )
    if isinstance(definition, PageDef):
        return "page {}({}) init {} render {}".format(
            definition.name,
            definition.arg_type,
            pretty(definition.init),
            pretty(definition.render),
        )
    raise ReproError("cannot pretty-print definition {!r}".format(definition))


def pretty_code(code):
    """Render a whole program, one definition per line."""
    if not isinstance(code, Code):
        raise ReproError("pretty_code expects Code, got {!r}".format(code))
    return "\n".join(pretty_def(d) for d in code)
