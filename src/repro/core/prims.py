"""Signature table for primitive operators.

The paper's calculus is intentionally minimal, but its examples freely use
``math → floor``, string concatenation ``||``, ``math → mod`` and iteration
over collections (Figs. 3–5).  We provide these as *primitive operators*:
each has a declared signature (parameter types, result type) and a declared
effect, so the type-and-effect discipline of Fig. 10 extends to them —
a pure operator types under any µ, an ``s``-effect native (like the
simulated web request) only types under ``s`` and therefore can never be
called from render code.

List operations are polymorphic; we express that with a tiny type-variable
mechanism (:class:`TVar`) and one-level structural matching — just enough
machinery, no general Hindley-Milner.
"""

from __future__ import annotations

from dataclasses import dataclass

from .effects import Effect, PURE
from .errors import TypeProblem
from .types import (
    ListType,
    NUMBER,
    STRING,
    TupleType,
    Type,
    UNIT,
    is_subtype,
    list_of,
)


@dataclass(frozen=True)
class TVar(Type):
    """A signature-local type variable (only valid inside :class:`PrimSig`)."""

    name: str
    __slots__ = ("name",)

    def is_function_free(self):
        # TVars never occur in user-facing types; instantiation decides.
        return True

    def __str__(self):
        return "'" + self.name


A = TVar("a")
B = TVar("b")


@dataclass(frozen=True)
class PrimSig:
    """Signature of a primitive operator: ``op : (params) -effect> result``."""

    name: str
    params: tuple
    result: Type
    effect: Effect = PURE
    doc: str = ""

    def __post_init__(self):
        if not isinstance(self.params, tuple):
            object.__setattr__(self, "params", tuple(self.params))

    @property
    def arity(self):
        return len(self.params)


def _match(pattern, actual, bindings):
    """Match ``actual`` against ``pattern``, binding TVars. True on success."""
    if isinstance(pattern, TVar):
        bound = bindings.get(pattern.name)
        if bound is None:
            bindings[pattern.name] = actual
            return True
        return bound == actual
    if isinstance(pattern, ListType) and isinstance(actual, ListType):
        return _match(pattern.element, actual.element, bindings)
    if isinstance(pattern, TupleType) and isinstance(actual, TupleType):
        return len(pattern.elements) == len(actual.elements) and all(
            _match(p, a, bindings)
            for p, a in zip(pattern.elements, actual.elements)
        )
    # Rigid position: plain subtyping suffices.
    return is_subtype(actual, pattern)


def _instantiate(pattern, bindings):
    if isinstance(pattern, TVar):
        try:
            return bindings[pattern.name]
        except KeyError:
            raise TypeProblem(
                "unresolved type variable '{}' in primitive signature".format(
                    pattern.name
                )
            )
    if isinstance(pattern, ListType):
        return list_of(_instantiate(pattern.element, bindings))
    if isinstance(pattern, TupleType):
        return TupleType(
            tuple(_instantiate(p, bindings) for p in pattern.elements)
        )
    return pattern


def match_signature(sig, arg_types):
    """Instantiate ``sig`` against ``arg_types``; return the result type.

    Raises :class:`TypeProblem` (rule name ``T-PRIM``) on arity or type
    mismatch.
    """
    if len(arg_types) != sig.arity:
        raise TypeProblem(
            "{} expects {} argument(s), got {}".format(
                sig.name, sig.arity, len(arg_types)
            ),
            rule="T-PRIM",
        )
    bindings = {}
    for index, (pattern, actual) in enumerate(zip(sig.params, arg_types)):
        if not _match(pattern, actual, bindings):
            raise TypeProblem(
                "{}: argument {} has type {}, expected {}".format(
                    sig.name, index + 1, actual, pattern
                ),
                rule="T-PRIM",
            )
    return _instantiate(sig.result, bindings)


def _sig(name, params, result, doc):
    return PrimSig(name, tuple(params), result, PURE, doc)


#: All built-in pure operators, keyed by name.
PRIM_SIGS = {
    sig.name: sig
    for sig in [
        # -- arithmetic ----------------------------------------------------
        _sig("add", [NUMBER, NUMBER], NUMBER, "n1 + n2"),
        _sig("sub", [NUMBER, NUMBER], NUMBER, "n1 - n2"),
        _sig("mul", [NUMBER, NUMBER], NUMBER, "n1 * n2"),
        _sig("div", [NUMBER, NUMBER], NUMBER, "n1 / n2 (error on 0)"),
        _sig("mod", [NUMBER, NUMBER], NUMBER, "math->mod of Fig. 5"),
        _sig("pow", [NUMBER, NUMBER], NUMBER, "n1 ** n2"),
        _sig("neg", [NUMBER], NUMBER, "-n"),
        _sig("floor", [NUMBER], NUMBER, "math->floor of Sec. 3.1"),
        _sig("ceil", [NUMBER], NUMBER, "ceiling"),
        _sig("round", [NUMBER], NUMBER, "math->round of Sec. 3.1"),
        _sig("abs", [NUMBER], NUMBER, "absolute value"),
        _sig("sqrt", [NUMBER], NUMBER, "square root (error on negative)"),
        _sig("min", [NUMBER, NUMBER], NUMBER, "minimum"),
        _sig("max", [NUMBER, NUMBER], NUMBER, "maximum"),
        # -- comparisons & logic (numbers encode booleans; 0 is false) -----
        _sig("lt", [NUMBER, NUMBER], NUMBER, "n1 < n2"),
        _sig("le", [NUMBER, NUMBER], NUMBER, "n1 <= n2"),
        _sig("gt", [NUMBER, NUMBER], NUMBER, "n1 > n2"),
        _sig("ge", [NUMBER, NUMBER], NUMBER, "n1 >= n2"),
        _sig("eq", [A, A], NUMBER, "structural equality on ->-free values"),
        _sig("ne", [A, A], NUMBER, "structural disequality"),
        _sig("and", [NUMBER, NUMBER], NUMBER, "logical and (strict)"),
        _sig("or", [NUMBER, NUMBER], NUMBER, "logical or (strict)"),
        _sig("not", [NUMBER], NUMBER, "logical not"),
        # -- strings -------------------------------------------------------
        _sig("concat", [STRING, STRING], STRING, "the || of Figs. 3-5"),
        _sig("str_of_num", [NUMBER], STRING, "render a number as text"),
        _sig("num_of_str", [STRING], NUMBER, "parse a number (error if not)"),
        _sig("str_length", [STRING], NUMBER, "the ->count of Sec. 3.1"),
        _sig("str_sub", [STRING, NUMBER, NUMBER], STRING, "substring [i, j)"),
        _sig("str_contains", [STRING, STRING], NUMBER, "substring test"),
        _sig("str_upper", [STRING], STRING, "uppercase"),
        _sig("str_lower", [STRING], STRING, "lowercase"),
        _sig("str_repeat", [STRING, NUMBER], STRING, "repeat n times"),
        _sig("num_format", [NUMBER, NUMBER], STRING, "fixed-point format"),
        # -- lists ---------------------------------------------------------
        _sig("list_length", [list_of(A)], NUMBER, "number of elements"),
        _sig("list_get", [list_of(A), NUMBER], A, "0-based index (checked)"),
        _sig("list_append", [list_of(A), A], list_of(A), "append one element"),
        _sig("list_concat", [list_of(A), list_of(A)], list_of(A), "concatenate"),
        _sig("list_reverse", [list_of(A)], list_of(A), "reverse"),
        _sig("list_slice", [list_of(A), NUMBER, NUMBER], list_of(A), "[i, j)"),
        _sig("list_range", [NUMBER, NUMBER], list_of(NUMBER), "[i, j) as list"),
    ]
}


def lookup_prim(name):
    """Return the :class:`PrimSig` for ``name`` or ``None``."""
    return PRIM_SIGS.get(name)
