"""Expression evaluation (Fig. 8): the faithful and production machines."""

from .contexts import context_depth, decompose, plug, redex_of
from .machine import (
    BigStep,
    DEFAULT_FUEL,
    SmallStep,
    make_evaluator,
)
from .natives import (
    EMPTY_NATIVES,
    NativeTable,
    apply_prim,
    operator_signature,
)
from .values import (
    bool_value,
    check_value,
    format_for_post,
    from_python,
    to_python,
    truthy,
    value_type,
)

__all__ = [name for name in dir() if not name.startswith("_")]
