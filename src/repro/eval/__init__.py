"""Expression evaluation (Fig. 8): the machines behind the backend API.

The supported way to pick an evaluator is the backend layer
(:mod:`repro.eval.backends`): ``resolve_backend("tree"|"compiled")``
gives an :class:`EvalBackend` whose ``compile`` hook builds the machine
for one code version.  The machine classes themselves remain importable
for direct use (tests, metatheory, the faithful oracle).

``make_evaluator`` — the pre-backend construction helper — still
imports from here but raises :class:`DeprecationWarning`; new code
selects a backend instead.
"""

from .backends import (
    BACKENDS,
    CompiledBackend,
    EvalBackend,
    TreeBackend,
    resolve_backend,
)
from .contexts import context_depth, decompose, plug, redex_of
from .machine import (
    BigStep,
    DEFAULT_FUEL,
    SmallStep,
)
from .natives import (
    EMPTY_NATIVES,
    NativeTable,
    apply_prim,
    operator_signature,
)
from .values import (
    bool_value,
    check_value,
    format_for_post,
    from_python,
    to_python,
    truthy,
    value_type,
)

__all__ = [name for name in dir() if not name.startswith("_")]
__all__.append("make_evaluator")


def __getattr__(name):
    if name == "make_evaluator":
        import warnings

        warnings.warn(
            "make_evaluator is deprecated; resolve an EvalBackend "
            "instead (repro.eval.resolve_backend) and call its "
            "compile hook",
            DeprecationWarning,
            stacklevel=2,
        )
        from .machine import make_evaluator

        return make_evaluator
    raise AttributeError(
        "module {!r} has no attribute {!r}".format(__name__, name)
    )
