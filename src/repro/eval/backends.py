"""The pluggable evaluator API: one protocol, two machines.

Everything above the expression layer — the system transitions, live
sessions, the serve host, cluster workers — picks its evaluator through
an :class:`EvalBackend` instead of importing a machine class directly:

* **compile hook** — :meth:`EvalBackend.compile` builds an evaluator
  for one *code version* (the system calls it at construction and again
  on every UPDATE, so a backend that does real compilation compiles
  once per version);
* **step hooks** — the returned evaluator satisfies the protocol the
  transitions consume: ``run_state(store, queue, expr, fuel=…)``,
  ``run_render(store, expr, fuel=…)`` and ``run_pure(store, expr,
  fuel=…)``;
* **invalidate hook** — :meth:`EvalBackend.invalidate` is called with
  the *outgoing* evaluator when an UPDATE retires it, so backends
  holding compiled-unit caches release them promptly.

Two backends ship: ``"tree"`` (the CEK machine of
:mod:`repro.eval.machine` — also the oracle configuration, and the only
one the ``faithful`` small-stepper pairs with) and ``"compiled"`` (the
closure-compilation machine of :mod:`repro.compile`).  Select one with
the kw-only ``backend=`` option on :class:`repro.api.LiveSession` /
:class:`repro.api.SessionHost`, or ``--backend`` on ``repro run`` /
``repro serve`` (cluster serves pass it through to every worker).
"""

from __future__ import annotations

from ..core.errors import ReproError
from ..obs.trace import NULL_TRACER
from .machine import BigStep
from .natives import EMPTY_NATIVES


class EvalBackend:
    """Base class (and documentation) of the backend protocol."""

    #: Registry key and the value persisted in saved images.
    name = None

    def compile(self, code, natives=EMPTY_NATIVES, services=None, memo=None,
                tracer=NULL_TRACER):
        """Build an evaluator for ``code`` (one call per code version)."""
        raise NotImplementedError

    def invalidate(self, evaluator):
        """Release ``evaluator``'s per-code-version caches (UPDATE hook)."""

    def __repr__(self):
        return "<{} {!r}>".format(type(self).__name__, self.name)


class TreeBackend(EvalBackend):
    """The default backend: the CEK tree-walking machine."""

    name = "tree"

    def compile(self, code, natives=EMPTY_NATIVES, services=None, memo=None,
                tracer=NULL_TRACER):
        return BigStep(
            code, natives=natives, services=services, memo=memo,
            tracer=tracer,
        )


class CompiledBackend(EvalBackend):
    """The closure-compilation backend (:mod:`repro.compile`)."""

    name = "compiled"

    def compile(self, code, natives=EMPTY_NATIVES, services=None, memo=None,
                tracer=NULL_TRACER):
        from ..compile import Compiled

        return Compiled(
            code, natives=natives, services=services, memo=memo,
            tracer=tracer,
        )

    def invalidate(self, evaluator):
        invalidate = getattr(evaluator, "invalidate", None)
        if invalidate is not None:
            invalidate()


#: The named backends ``resolve_backend`` accepts.
BACKENDS = {
    TreeBackend.name: TreeBackend(),
    CompiledBackend.name: CompiledBackend(),
}


def resolve_backend(spec):
    """Coerce ``spec`` to an :class:`EvalBackend`.

    Accepts ``None`` (the default tree backend), a registered name, or
    an :class:`EvalBackend`-shaped instance (anything with a ``compile``
    hook — embedders can bring their own).
    """
    if spec is None:
        return BACKENDS["tree"]
    if isinstance(spec, str):
        backend = BACKENDS.get(spec)
        if backend is None:
            raise ReproError(
                "unknown eval backend {!r} (expected one of: {})".format(
                    spec, ", ".join(sorted(BACKENDS))
                )
            )
        return backend
    if callable(getattr(spec, "compile", None)):
        return spec
    raise ReproError(
        "backend must be a name or an EvalBackend, got {!r}".format(spec)
    )
