"""Evaluation contexts ``E`` (Fig. 6) and redex decomposition.

    E ::= [] | E e | v E | (v1, ..., vi, E, ej, ..., en) | E.n | g := E
        | push p E | post E | box.a := E

plus the contexts for the documented extensions (``if E then e else e``,
operator arguments, list-literal items).  ``boxed e`` is *not* a context:
rule ER-BOXED reduces its body to a value in one nested derivation, so the
whole ``boxed`` expression is treated as a redex.

The faithful small-step machine uses :func:`decompose` to split an
expression into a context (represented as a path of ``(node, child_index)``
pairs) and the redex in its hole, and :func:`plug` to put a reduct back.
Re-decomposing on every step costs O(depth) — that is the price of
faithfulness, which is why the production evaluator is the CEK machine in
:mod:`repro.eval.machine` instead.
"""

from __future__ import annotations

from ..core import ast
from ..core.errors import ReproError


def evaluation_positions(expr):
    """Indices (into ``ast.children``) that are evaluation positions.

    Left-to-right order; a later position is only active once all earlier
    positions hold values.  Returns ``()`` for nodes whose children are
    never evaluated in place (lambda bodies, ``boxed`` bodies, ``if``
    branches).
    """
    if isinstance(expr, (ast.Lam, ast.Boxed)):
        return ()
    if isinstance(expr, ast.If):
        return (0,)  # only the condition; branches stay unevaluated
    return tuple(range(len(ast.children(expr))))


def decompose(expr):
    """Split ``expr`` into ``(path, redex)`` such that ``plug`` restores it.

    ``path`` is a list of ``(node, child_index)`` pairs from the root to the
    redex.  Returns ``None`` when ``expr`` is already a value.
    """
    if expr.is_value():
        return None
    path = []
    node = expr
    while True:
        kids = ast.children(node)
        descend = None
        for index in evaluation_positions(node):
            child = kids[index]
            if not child.is_value():
                descend = (index, child)
                break
        if descend is None:
            return path, node
        index, child = descend
        if isinstance(child, (ast.Tuple, ast.ListLit)):
            # A non-value tuple/list is itself a context frame; keep
            # descending into it rather than treating it as a redex.
            path.append((node, index))
            node = child
            continue
        path.append((node, index))
        node = child


def plug(path, expr):
    """Rebuild the expression with ``expr`` in the hole described by ``path``."""
    for node, index in reversed(path):
        kids = list(ast.children(node))
        kids[index] = expr
        expr = ast.rebuild(node, kids)
    return expr


def redex_of(expr):
    """Just the redex of ``expr`` (or ``None`` for values); test helper."""
    split = decompose(expr)
    if split is None:
        return None
    return split[1]


def context_depth(expr):
    """Depth of the hole in ``expr``'s decomposition (0 when the whole
    expression is the redex); used to characterize small-step cost."""
    split = decompose(expr)
    if split is None:
        raise ReproError("values have no evaluation context")
    return len(split[0])
