"""The expression machines (Fig. 8).

Two implementations of the evaluation relations →p / →s / →r:

* :class:`SmallStep` — the paper's rules, literally: decompose into an
  evaluation context and a redex, reduce the redex, plug.  Used by the
  metatheory test-suite (preservation is checked *per step*) and as the
  reference in differential tests.  O(depth) per step.

* :class:`BigStep` — a CEK-style abstract machine with an explicit frame
  stack.  Same values, same effects, same traps, but one pass and constant
  Python stack (tail calls — and therefore all surface-language loops,
  which lower to tail recursion — run in constant space).  This is the
  production evaluator used by the system runtime.

Both machines enforce the *effect discipline operationally*: a
``g := v`` redex in render mode is stuck, a ``boxed`` redex in standard
mode is stuck, exactly as Fig. 8 provides no rule for them.  Well-typed
programs never hit these traps (progress, §4.3) — the metatheory tests
check that, and the traps are what make the check meaningful.
"""

from __future__ import annotations

from ..boxes.tree import Box, make_root
from ..core import ast
from ..core.defs import Code
from ..core.effects import Effect, PURE, RENDER, STATE
from ..core.errors import (
    EvalError,
    ReproError,
    StuckExpression,
)
from ..core.prims import PRIM_SIGS
from ..obs.trace import NULL_TRACER
from . import contexts
from .memo import replay_items
from .natives import EMPTY_NATIVES, apply_prim
from .values import truthy

#: Default step budget for a single run.  Large enough for every workload in
#: the repository; small enough that an accidentally divergent program (the
#: paper: "the execution of user code may of course diverge") fails fast.
DEFAULT_FUEL = 10_000_000


class _OccurrenceCounter:
    """Assigns dynamic occurrence numbers to boxes per render pass.

    A ``boxed`` statement inside a loop creates many boxes; numbering them
    in execution order is what lets the IDE select "the 7th box made by
    this statement" (Fig. 2 selects all of them collectively).
    """

    def __init__(self):
        self._next = {}

    def next_for(self, box_id):
        count = self._next.get(box_id, 0)
        self._next[box_id] = count + 1
        return count


def _check_queue(queue):
    if queue is None:
        raise ReproError("state-mode evaluation requires an event queue")
    return queue


class SmallStep:
    """The faithful small-step machine: one →µ step at a time.

    Construction fixes the code ``C`` and the native table; the mutable
    components (store, queue, box) are passed per call, mirroring how the
    relations of Fig. 8 thread them.
    """

    def __init__(self, code, natives=EMPTY_NATIVES, services=None,
                 tracer=NULL_TRACER):
        if not isinstance(code, Code):
            raise ReproError("SmallStep expects Code")
        self.code = code
        self.natives = natives
        self.services = services
        self.tracer = tracer

    # -- single steps ---------------------------------------------------------

    def step(self, expr, mode, store, queue=None, box=None, counters=None):
        """Perform one →µ step on ``expr``; returns the stepped expression.

        Raises :class:`StuckExpression` when no rule applies (and the
        expression is not a value).  Render-mode ``boxed`` redexes perform
        their entire nested reduction inside this one step, exactly as rule
        ER-BOXED's premise does.
        """
        split = contexts.decompose(expr)
        if split is None:
            raise StuckExpression("cannot step a value")
        path, redex = split
        reduct = self._reduce(redex, mode, store, queue, box, counters)
        return contexts.plug(path, reduct)

    def _reduce(self, redex, mode, store, queue, box, counters):
        # -- pure rules (available in every mode) ------------------------------
        if isinstance(redex, ast.FunRef):  # EP-FUN
            definition = self.code.function(redex.name)
            if definition is None:
                raise StuckExpression(
                    "undefined function '{}'".format(redex.name)
                )
            return definition.body
        if isinstance(redex, ast.App):  # EP-APP
            if not isinstance(redex.fn, ast.Lam):
                raise StuckExpression(
                    "application of a non-function: {!r}".format(redex.fn)
                )
            return ast.subst(redex.fn.body, redex.fn.param, redex.arg)
        if isinstance(redex, ast.Proj):  # EP-TUPLE
            target = redex.tuple_expr
            if not isinstance(target, ast.Tuple):
                raise StuckExpression("projection from a non-tuple")
            if redex.index > len(target.items):
                raise StuckExpression(
                    "projection index {} out of range".format(redex.index)
                )
            return target.items[redex.index - 1]
        if isinstance(redex, ast.GlobalRead):  # EP-GLOBAL-1/2
            value = store.lookup(redex.name)
            if value is not None:
                return value
            definition = self.code.global_(redex.name)
            if definition is None:
                raise StuckExpression(
                    "undefined global '{}'".format(redex.name)
                )
            return definition.init
        if isinstance(redex, ast.If):  # extension: numeric conditional
            return (
                redex.then_branch if truthy(redex.cond) else redex.else_branch
            )
        if isinstance(redex, ast.Prim):
            sig = PRIM_SIGS.get(redex.op) or self.natives.signature(redex.op)
            if sig is None:
                raise StuckExpression("unknown operator '{}'".format(redex.op))
            if sig.effect is not PURE and mode is not sig.effect:
                raise StuckExpression(
                    "operator '{}' has effect {} but mode is {}".format(
                        redex.op, sig.effect, mode
                    )
                )
            return apply_prim(
                redex.op, redex.args, natives=self.natives,
                services=self.services,
            )
        # -- standard-mode rules ----------------------------------------------
        if isinstance(redex, ast.GlobalWrite):  # ES-ASSIGN
            if mode is not STATE:
                raise StuckExpression(
                    "assignment to '{}' outside state mode".format(redex.name)
                )
            store.assign(redex.name, redex.value)
            return ast.UNIT_VALUE
        if isinstance(redex, ast.Push):  # ES-PUSH
            if mode is not STATE:
                raise StuckExpression("push outside state mode")
            from ..system.events import PushEvent

            _check_queue(queue).enqueue(PushEvent(redex.page, redex.arg))
            return ast.UNIT_VALUE
        if isinstance(redex, ast.Pop):  # ES-POP
            if mode is not STATE:
                raise StuckExpression("pop outside state mode")
            from ..system.events import PopEvent

            _check_queue(queue).enqueue(PopEvent())
            return ast.UNIT_VALUE
        # -- render-mode rules --------------------------------------------------
        if isinstance(redex, ast.Post):  # ER-POST
            if mode is not RENDER:
                raise StuckExpression("post outside render mode")
            box.append_leaf(redex.value)
            return ast.UNIT_VALUE
        if isinstance(redex, ast.SetAttr):  # ER-ATTR
            if mode is not RENDER:
                raise StuckExpression("box attribute set outside render mode")
            box.append_attr(redex.attr, redex.value)
            return ast.UNIT_VALUE
        if isinstance(redex, ast.Boxed):  # ER-BOXED (nested reduction)
            if mode is not RENDER:
                raise StuckExpression("boxed outside render mode")
            counters = counters if counters is not None else _OccurrenceCounter()
            child = Box(
                box_id=redex.box_id,
                occurrence=counters.next_for(redex.box_id),
            )
            value = self.run(
                redex.body, RENDER, store, box=child, counters=counters
            )
            box.append_child(child)
            return value
        raise StuckExpression("no rule for {!r}".format(redex))

    # -- multi-step drivers ----------------------------------------------------

    def run(self, expr, mode, store, queue=None, box=None, counters=None,
            fuel=DEFAULT_FUEL):
        """Reduce ``expr`` to a value under →µ*, threading the components."""
        from ..resilience.supervisor import Budget

        steps = 0
        try:
            while not expr.is_value():
                steps += 1
                if steps > fuel:
                    Budget.charge(steps, fuel, "small-step")
                expr = self.step(expr, mode, store, queue, box, counters)
        finally:
            # One counter update per run, not per step — the faithful
            # machine is slow enough without per-step bookkeeping.
            self.tracer.add("eval_steps", steps)
        return expr

    # -- Evaluator protocol (what system.transitions consumes) ------------------

    def run_state(self, store, queue, expr, fuel=DEFAULT_FUEL):
        """``(C, S, Q, e) →s* (C, S', Q', v)`` — returns the final value."""
        return self.run(expr, STATE, store, queue=queue, fuel=fuel)

    def run_render(self, store, expr, fuel=DEFAULT_FUEL):
        """``(C, S, ε, e) →r* (C, S, B, v)`` — returns the root box.

        The root is the paper's implicit top-level box: render code may set
        attributes before entering any ``boxed`` statement.
        """
        root = make_root()
        self.run(
            expr, RENDER, store, box=root, counters=_OccurrenceCounter(),
            fuel=fuel,
        )
        return root.freeze()

    def run_pure(self, store, expr, fuel=DEFAULT_FUEL):
        """``(C, S, e) →p* (C, S, v)``."""
        return self.run(expr, PURE, store, fuel=fuel)


# ---------------------------------------------------------------------------
# The CEK machine
# ---------------------------------------------------------------------------

# Frame tags.  Frames are plain tuples for speed; the first element is the
# tag, the rest is frame payload.
_F_APP_FN = 0       # (tag, arg_expr)           — evaluating the function
_F_APP_ARG = 1      # (tag, fn_value)           — evaluating the argument
_F_TUPLE = 2        # (tag, done, rest)         — evaluating tuple items
_F_LIST = 3         # (tag, done, rest, elem_t) — evaluating list items
_F_PROJ = 4         # (tag, index)
_F_WRITE = 5        # (tag, global_name)
_F_PUSH = 6         # (tag, page_name)
_F_POST = 7         # (tag,)
_F_ATTR = 8         # (tag, attr_name)
_F_IF = 9           # (tag, then_expr, else_expr)
_F_PRIM = 10        # (tag, op, done, rest)
_F_BOXED = 11       # (tag, parent_box)
_F_MEMO_ARG = 12    # (tag, fun_name, store)   — evaluating a memo call's arg
_F_MEMO_CAP = 13    # (tag, key, box, start)   — capturing a memo call's output


class BigStep:
    """CEK-style evaluator: same semantics as :class:`SmallStep`, one pass.

    Differential tests (``tests/eval/test_differential.py``) assert the two
    machines agree on result values, final stores, queue contents and box
    trees on randomized programs.

    ``memo`` optionally enables render-function memoization (the §5
    self-adjusting-computation sketch; see :mod:`repro.eval.memo`) —
    observable box trees stay structurally identical, asserted by
    ``tests/eval/test_memo.py``.
    """

    def __init__(self, code, natives=EMPTY_NATIVES, services=None, memo=None,
                 tracer=NULL_TRACER):
        if not isinstance(code, Code):
            raise ReproError("BigStep expects Code")
        self.code = code
        self.natives = natives
        self.services = services
        self.memo = memo
        self.tracer = tracer

    def _run(self, expr, mode, store, queue, box, counters, fuel):
        """The machine loop.  ``box`` is the current box in render mode."""
        stack = []
        control = expr
        is_value = control.is_value()
        steps = 0
        try:
            while True:
                steps += 1
                if steps > fuel:
                    from ..resilience.supervisor import Budget

                    Budget.charge(steps, fuel, "big-step")
                if not is_value:
                    control, is_value, box = self._eval(
                        control, mode, store, queue, box, counters, stack
                    )
                    continue
                if not stack:
                    return control
                control, is_value, box = self._apply_frame(
                    stack, control, mode, store, queue, box, counters
                )
        finally:
            # One counter update per machine run keeps the hot loop free
            # of instrumentation (the NullTracer call is a no-op anyway).
            self.tracer.add("eval_steps", steps)

    # -- eval dispatch: control is a non-value expression ------------------------

    def _eval(self, expr, mode, store, queue, box, counters, stack):
        if isinstance(expr, ast.App):
            if (
                self.memo is not None
                and mode is RENDER
                and isinstance(expr.fn, ast.FunRef)
                and self.memo.eligible(expr.fn.name)
            ):
                stack.append((_F_MEMO_ARG, expr.fn.name, store))
                return expr.arg, expr.arg.is_value(), box
            stack.append((_F_APP_FN, expr.arg))
            return expr.fn, expr.fn.is_value(), box
        if isinstance(expr, ast.FunRef):
            definition = self.code.function(expr.name)
            if definition is None:
                raise StuckExpression(
                    "undefined function '{}'".format(expr.name)
                )
            body = definition.body
            return body, body.is_value(), box
        if isinstance(expr, ast.Tuple):
            return self._start_sequence(
                expr.items, (_F_TUPLE,), stack, box
            )
        if isinstance(expr, ast.ListLit):
            return self._start_sequence(
                expr.items, (_F_LIST, expr.element_type), stack, box
            )
        if isinstance(expr, ast.Proj):
            stack.append((_F_PROJ, expr.index))
            target = expr.tuple_expr
            return target, target.is_value(), box
        if isinstance(expr, ast.GlobalRead):
            value = store.lookup(expr.name)
            if value is None:
                definition = self.code.global_(expr.name)
                if definition is None:
                    raise StuckExpression(
                        "undefined global '{}'".format(expr.name)
                    )
                value = definition.init
            return value, True, box
        if isinstance(expr, ast.GlobalWrite):
            if mode is not STATE:
                raise StuckExpression(
                    "assignment to '{}' outside state mode".format(expr.name)
                )
            stack.append((_F_WRITE, expr.name))
            return expr.value, expr.value.is_value(), box
        if isinstance(expr, ast.Push):
            if mode is not STATE:
                raise StuckExpression("push outside state mode")
            stack.append((_F_PUSH, expr.page))
            return expr.arg, expr.arg.is_value(), box
        if isinstance(expr, ast.Pop):
            if mode is not STATE:
                raise StuckExpression("pop outside state mode")
            from ..system.events import PopEvent

            _check_queue(queue).enqueue(PopEvent())
            return ast.UNIT_VALUE, True, box
        if isinstance(expr, ast.Post):
            if mode is not RENDER:
                raise StuckExpression("post outside render mode")
            stack.append((_F_POST,))
            return expr.value, expr.value.is_value(), box
        if isinstance(expr, ast.SetAttr):
            if mode is not RENDER:
                raise StuckExpression("box attribute set outside render mode")
            stack.append((_F_ATTR, expr.attr))
            return expr.value, expr.value.is_value(), box
        if isinstance(expr, ast.Boxed):
            if mode is not RENDER:
                raise StuckExpression("boxed outside render mode")
            child = Box(
                box_id=expr.box_id,
                occurrence=counters.next_for(expr.box_id),
            )
            stack.append((_F_BOXED, box))
            return expr.body, expr.body.is_value(), child
        if isinstance(expr, ast.If):
            stack.append((_F_IF, expr.then_branch, expr.else_branch))
            return expr.cond, expr.cond.is_value(), box
        if isinstance(expr, ast.Prim):
            return self._start_sequence(
                expr.args, (_F_PRIM, expr.op), stack, box, mode=mode
            )
        raise StuckExpression("no rule for {!r}".format(expr))

    def _start_sequence(self, items, frame_head, stack, box, mode=None):
        """Begin left-to-right evaluation of ``items`` (tuple/list/prim args)."""
        done = []
        rest = list(items)
        while rest and rest[0].is_value():
            done.append(rest.pop(0))
        if not rest:
            # Everything is already a value: finish immediately.
            value, box2 = self._finish_sequence(
                frame_head, done, None, mode, box
            )
            return value, True, box2
        first = rest.pop(0)
        stack.append(frame_head + (done, rest))
        return first, False, box

    def _finish_sequence(self, frame_head, done, queue, mode, box):
        tag = frame_head[0]
        if tag == _F_TUPLE:
            return ast.Tuple(tuple(done)), box
        if tag == _F_LIST:
            return ast.ListLit(tuple(done), frame_head[1]), box
        if tag == _F_PRIM:
            op = frame_head[1]
            sig = PRIM_SIGS.get(op) or self.natives.signature(op)
            if sig is None:
                raise StuckExpression("unknown operator '{}'".format(op))
            if sig.effect is not PURE and mode is not sig.effect:
                raise StuckExpression(
                    "operator '{}' has effect {} but mode is {}".format(
                        op, sig.effect, mode
                    )
                )
            result = apply_prim(
                op, tuple(done), natives=self.natives, services=self.services
            )
            return result, box
        raise ReproError("bad sequence frame {!r}".format(frame_head))

    # -- continuation dispatch: control is a value ---------------------------------

    def _apply_frame(self, stack, value, mode, store, queue, box, counters):
        frame = stack.pop()
        tag = frame[0]
        if tag == _F_APP_FN:
            arg = frame[1]
            stack.append((_F_APP_ARG, value))
            return arg, arg.is_value(), box
        if tag == _F_APP_ARG:
            fn = frame[1]
            if not isinstance(fn, ast.Lam):
                raise StuckExpression(
                    "application of a non-function: {!r}".format(fn)
                )
            body = ast.subst(fn.body, fn.param, value)
            return body, body.is_value(), box
        if tag in (_F_TUPLE, _F_LIST, _F_PRIM):
            head = frame[: -2]
            done, rest = frame[-2], frame[-1]
            done = done + [value]
            while rest and rest[0].is_value():
                done.append(rest.pop(0))
            if rest:
                first = rest.pop(0)
                stack.append(head + (done, rest))
                return first, False, box
            result, box2 = self._finish_sequence(head, done, queue, mode, box)
            return result, True, box2
        if tag == _F_PROJ:
            index = frame[1]
            if not isinstance(value, ast.Tuple):
                raise StuckExpression("projection from a non-tuple")
            if index > len(value.items):
                raise StuckExpression(
                    "projection index {} out of range".format(index)
                )
            result = value.items[index - 1]
            return result, True, box
        if tag == _F_WRITE:
            store.assign(frame[1], value)
            return ast.UNIT_VALUE, True, box
        if tag == _F_PUSH:
            from ..system.events import PushEvent

            _check_queue(queue).enqueue(PushEvent(frame[1], value))
            return ast.UNIT_VALUE, True, box
        if tag == _F_POST:
            box.append_leaf(value)
            return ast.UNIT_VALUE, True, box
        if tag == _F_ATTR:
            box.append_attr(frame[1], value)
            return ast.UNIT_VALUE, True, box
        if tag == _F_IF:
            branch = frame[1] if truthy(value) else frame[2]
            return branch, branch.is_value(), box
        if tag == _F_BOXED:
            parent = frame[1]
            parent.append_child(box)
            return value, True, parent
        if tag == _F_MEMO_ARG:
            name = frame[1]
            entry = self.memo.probe(name, value, frame[2])
            if entry is not None:
                box._check_mutable()
                box.items.extend(replay_items(entry.items, counters))
                return entry.value, True, box
            definition = self.code.function(name)
            if definition is None:
                raise StuckExpression(
                    "undefined function '{}'".format(name)
                )
            stack.append(
                (_F_MEMO_CAP, name, value, frame[2], box, len(box.items))
            )
            # Re-enter the normal path with the FunRef already resolved,
            # so this call is not intercepted a second time.
            call = ast.App(definition.body, value)
            return call, False, box
        if tag == _F_MEMO_CAP:
            _tag, name, arg, call_store, captured_box, start = frame
            self.memo.store_result(
                name, arg, call_store, captured_box.items[start:], value
            )
            return value, True, box
        raise ReproError("unknown frame tag {!r}".format(tag))

    # -- Evaluator protocol -------------------------------------------------------

    def run_state(self, store, queue, expr, fuel=DEFAULT_FUEL):
        """``(C, S, Q, e) →s* (C, S', Q', v)`` — returns the final value."""
        return self._run(
            expr, STATE, store, queue, None, _OccurrenceCounter(), fuel
        )

    def run_render(self, store, expr, fuel=DEFAULT_FUEL):
        """``(C, S, ε, e) →r* (C, S, B, v)`` — returns the root box."""
        root = make_root()
        self._run(
            expr, RENDER, store, None, root, _OccurrenceCounter(), fuel
        )
        return root.freeze()

    def run_pure(self, store, expr, fuel=DEFAULT_FUEL):
        """``(C, S, e) →p* (C, S, v)``."""
        return self._run(
            expr, PURE, store, None, None, _OccurrenceCounter(), fuel
        )


def make_evaluator(code, natives=EMPTY_NATIVES, services=None, faithful=False,
                   tracer=NULL_TRACER):
    """Factory: the production CEK machine, or the faithful small-stepper."""
    cls = SmallStep if faithful else BigStep
    return cls(code, natives=natives, services=services, tracer=tracer)
