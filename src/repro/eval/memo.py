"""Render-function memoization — the §5 self-adjusting-computation idea.

    "An intriguing avenue for future work is the application of research
    on self-adjusting computation, which would allow redundant parts of
    the render computation to be elided automatically."

The type system makes a simple version of this *sound by construction*:
a render-effect function's output (the boxes it appends + its return
value) can depend only on its argument and the global variables it reads
— render code cannot write state, touch services, or read the display.
So a call is a pure function of ``(argument, values of its global read
set)``, and that tuple is a complete memo key.

The read set is computed statically: the ``GlobalRead`` names in the
function's body, closed transitively over the functions it references.
The machine (``BigStep(memo=...)``) consults the cache at every
``f(args)`` call in render mode; on a hit it splices the cached box items
into the current box and skips execution entirely.

Invalidation is automatic and total: model changes are captured by the
key (the read-set values participate), and code changes create a fresh
machine — and therefore a fresh cache — via the UPDATE transition.

One observable caveat, asserted and documented in the tests: occurrence
numbers inside replayed subtrees are those of the original execution,
so with memoization on they identify *which call produced a box* rather
than global execution order.  ``box_id``-based navigation (the Fig. 2
feature) is unaffected.
"""

from __future__ import annotations

from ..core import ast
from ..core.defs import Code
from ..core.effects import RENDER
from ..core.errors import ReproError
from ..obs.trace import NULL_TRACER


def global_read_sets(code):
    """name → frozenset of globals each function may read (transitive)."""
    direct = {}
    references = {}
    for definition in code.functions():
        reads = set()
        refs = set()
        for node in ast.walk(definition.body):
            if isinstance(node, ast.GlobalRead):
                reads.add(node.name)
            elif isinstance(node, ast.FunRef):
                refs.add(node.name)
        direct[definition.name] = reads
        references[definition.name] = refs
    # Transitive closure (the call graph is small; iterate to fixpoint).
    changed = True
    while changed:
        changed = False
        for name, refs in references.items():
            for callee in refs:
                callee_reads = direct.get(callee, frozenset())
                if not callee_reads <= direct[name]:
                    direct[name] |= callee_reads
                    changed = True
    return {name: frozenset(reads) for name, reads in direct.items()}


class RenderMemo:
    """The per-code-version cache of render-function results."""

    def __init__(self, code, max_entries=4096, tracer=NULL_TRACER):
        if not isinstance(code, Code):
            raise ReproError("RenderMemo expects Code")
        self._read_sets = global_read_sets(code)
        self._eligible = {
            d.name
            for d in code.functions()
            if d.type.effect is RENDER and not d.name.startswith("$")
        }
        self._cache = {}
        self._max_entries = max_entries
        self.tracer = tracer
        self.hits = 0
        self.misses = 0

    def eligible(self, name):
        """Is ``name`` a memoizable (user-written, render-effect) function?"""
        return name in self._eligible

    def key_for(self, name, arg_value, store, code):
        """The complete memo key: function, argument, read-set values.

        Reads fall back to declared initial values (EP-GLOBAL-2), so a
        store assignment that *creates* an entry changes the key exactly
        when it changes what the function would see.
        """
        reads = []
        for global_name in sorted(self._read_sets.get(name, ())):
            value = store.lookup(global_name)
            if value is None:
                definition = code.global_(global_name)
                value = definition.init if definition else None
            reads.append((global_name, value))
        return (name, arg_value, tuple(reads))

    def lookup(self, key):
        entry = self._cache.get(key)
        if entry is not None:
            self.hits += 1
            self.tracer.add("memo_hits")
        return entry

    def store_result(self, key, items, value):
        if len(self._cache) >= self._max_entries:
            self._cache.clear()  # simple safety valve; keys are versioned
        self.misses += 1
        self.tracer.add("memo_misses")
        self._cache[key] = (tuple(items), value)

    def stats(self):
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._cache)}
