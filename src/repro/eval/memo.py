"""Render-function memoization — the §5 self-adjusting-computation idea.

    "An intriguing avenue for future work is the application of research
    on self-adjusting computation, which would allow redundant parts of
    the render computation to be elided automatically."

The type system makes a simple version of this *sound by construction*:
a render-effect function's output (the boxes it appends + its return
value) can depend only on its argument and the global variables it reads
— render code cannot write state, touch services, or read the display.
So a call is a pure function of ``(argument, values of its global read
set)``, and that tuple is a complete memo key.

The read set is computed statically: the ``GlobalRead`` names in the
function's body, closed transitively over the functions it references.
The machine (``BigStep(memo=...)``) consults the cache at every
``f(args)`` call in render mode; on a hit it splices the cached box items
into the current box and skips execution entirely.

**Entries survive code updates** (repro.incremental).  The cache is keyed
by ``(code digest, argument)`` — the digest hashes the function body
closed over its transitive ``FunRef``\\ s (:mod:`repro.incremental.digest`)
— and each entry carries a version-stamped snapshot of its read set.  A
probe replays the entry iff the digest is unchanged *and* every read
validates: by store write-version (an integer compare, the fast path) or,
when versions differ, by value.  The UPDATE transition swaps in a fresh
:class:`RenderMemo` per code version, but all versions share one
:class:`~repro.incremental.store.MemoStore`, so the first render after an
edit replays every call whose code and inputs did not change — the edit →
re-render loop pays only for what the edit touched.

The historical occurrence-number caveat is gone: replayed subtrees used
to keep the occurrence numbers of their original execution, so with
memoization on they identified *which call produced a box* rather than
global execution order.  :func:`replay_items` now re-stamps occurrences
from the current render pass's counters (copying a cached box only when
its number actually differs), so a memoized render is **byte-identical**
— HTML output included — to the unmemoized one; the property test in
``tests/incremental`` asserts exactly that.  ``box_id``-based navigation
(the Fig. 2 feature) was never affected, and box ids participate in the
digest so an edit that renumbers them safely misses.
"""

from __future__ import annotations

from ..boxes.tree import Box
from ..core import ast
from ..core.defs import Code
from ..core.effects import RENDER
from ..core.errors import ReproError
from ..incremental.digest import code_digests
from ..incremental.store import MemoEntry, MemoStore
from ..obs.trace import NULL_TRACER


def global_read_sets(code):
    """name → frozenset of globals each function may read (transitive)."""
    return _transitive_sets(code, _direct_global_reads)


def native_call_sets(code):
    """name → frozenset of *natives* each function may call (transitive).

    A native is any primitive operator not in the built-in signature
    table — its implementation is host Python, invisible to the code
    digests.  The set is what makes native-rebind invalidation precise:
    when an update rebinds native ``n``, only memo entries produced by
    functions that can reach ``n`` are suspect (see
    :meth:`~repro.incremental.store.MemoStore.invalidate_natives`).
    """
    from ..core.prims import PRIM_SIGS

    def direct(body):
        return {
            node.op
            for node in ast.walk(body)
            if isinstance(node, ast.Prim) and node.op not in PRIM_SIGS
        }

    return _transitive_sets(code, direct)


def _direct_global_reads(body):
    return {
        node.name
        for node in ast.walk(body)
        if isinstance(node, ast.GlobalRead)
    }


def _transitive_sets(code, direct_of):
    """Per-function facts closed over the transitive ``FunRef`` graph."""
    direct = {}
    references = {}
    for definition in code.functions():
        refs = set()
        for node in ast.walk(definition.body):
            if isinstance(node, ast.FunRef):
                refs.add(node.name)
        direct[definition.name] = set(direct_of(definition.body))
        references[definition.name] = refs
    # Transitive closure (the call graph is small; iterate to fixpoint).
    changed = True
    while changed:
        changed = False
        for name, refs in references.items():
            for callee in refs:
                callee_facts = direct.get(callee, frozenset())
                if not callee_facts <= direct[name]:
                    direct[name] |= callee_facts
                    changed = True
    return {name: frozenset(facts) for name, facts in direct.items()}


def replay_items(items, counters):
    """Cached box items, re-stamped with this render pass's occurrences.

    Replay must be observably identical to execution, and executing the
    call would have drawn fresh occurrence numbers from ``counters`` in
    document order.  Walk the cached subtrees in that same order,
    consuming the counters; a box whose cached number (and descendants)
    already match is returned as-is — the common all-hits re-render
    replays with zero copying — otherwise a shallow re-stamped copy is
    made (still far cheaper than re-execution: no machine steps, and
    leaves, attributes and unchanged subtrees stay shared).
    """
    out = []
    for item in items:
        if isinstance(item, Box):
            item = _renumber(item, counters)
        out.append(item)
    return out


def _renumber(box, counters):
    occurrence = counters.next_for(box.box_id)
    items = box.items
    new_items = None
    for index, item in enumerate(items):
        if isinstance(item, Box):
            replacement = _renumber(item, counters)
            if replacement is not item:
                if new_items is None:
                    new_items = list(items)
                new_items[index] = replacement
    if occurrence == box.occurrence and new_items is None:
        return box
    return Box(
        new_items if new_items is not None else list(items),
        box_id=box.box_id,
        occurrence=occurrence,
    )


class RenderMemo:
    """One code version's view of the (possibly shared) memo store.

    The per-version parts — digests, read sets, eligibility — are
    recomputed from ``code``; the entries live in ``store``, which the
    owning :class:`~repro.system.transitions.System` threads through
    UPDATE so they survive it.  Constructed without a ``store`` (tests,
    standalone machines) it owns a private one, which restores the old
    cache-per-machine behaviour.
    """

    def __init__(self, code, store=None, max_entries=4096,
                 tracer=NULL_TRACER):
        if not isinstance(code, Code):
            raise ReproError("RenderMemo expects Code")
        self.code = code
        self._read_sets = global_read_sets(code)
        self._native_sets = native_call_sets(code)
        self._digests = code_digests(code)
        self._eligible = {
            d.name
            for d in code.functions()
            if d.type.effect is RENDER and not d.name.startswith("$")
        }
        self.memo_store = (
            store if store is not None
            else MemoStore(max_entries, tracer=tracer)
        )
        self.tracer = tracer
        self.hits = 0
        self.misses = 0
        self.replayed_boxes = 0

    def eligible(self, name):
        """Is ``name`` a memoizable (user-written, render-effect) function?"""
        return name in self._eligible

    def _read_value(self, global_name, store):
        """What the function would see: store value, else declared init
        (rule EP-GLOBAL-2)."""
        value = store.lookup(global_name)
        if value is None:
            definition = self.code.global_(global_name)
            value = definition.init if definition else None
        return value

    def probe(self, name, arg_value, store):
        """The cached entry for ``name(arg_value)`` under ``store``, or
        ``None`` — counting a hit exactly when the entry validates.

        Validation per read slot: same write version (and not the
        never-assigned version ``0``) is a hit by integer compare;
        otherwise fall back to comparing the value the function would
        read *now* with the stamped one, refreshing the stamp when they
        agree so the next probe is integers again.  Version ``0`` always
        value-compares, because an unassigned global reads its declared
        init straight from the code — which an update can change while
        the function's own digest stays fixed.
        """
        entry = self.memo_store.get((self._digests.get(name), arg_value))
        if entry is None:
            return None
        for slot in entry.reads:
            global_name, version, value = slot
            current = store.version(global_name)
            if current == version and version != 0:
                continue
            if self._read_value(global_name, store) != value:
                return None
            slot[1] = current
        self.hits += 1
        self.replayed_boxes += entry.boxes
        self.tracer.add("memo_hits")
        # Shared stores (repro.cluster): a validated hit on an entry
        # another session produced is a cross-session warm hit — the
        # view counts it into the host's metrics.
        note = getattr(self.memo_store, "note_shared_hit", None)
        if note is not None:
            note(entry)
        return entry

    def store_result(self, name, arg_value, store, items, value):
        """Record one executed call; counts the miss that caused it."""
        self.misses += 1
        self.tracer.add("memo_misses")
        digest = self._digests.get(name)
        reads = [
            [global_name, store.version(global_name),
             self._read_value(global_name, store)]
            for global_name in sorted(self._read_sets.get(name, ()))
        ]
        items = tuple(items)
        boxes = sum(
            item.count_boxes() for item in items if isinstance(item, Box)
        )
        self.memo_store.put(
            (digest, arg_value),
            MemoEntry(
                digest, arg_value, reads, items, value, boxes,
                natives=self._native_sets.get(name, frozenset()),
            ),
        )

    def stats(self):
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self.memo_store)}
