"""Primitive-operator implementations and the native-function registry.

Two kinds of operators flow through ``Prim`` nodes:

* **Built-in pure operators** — the arithmetic/string/list table of
  :mod:`repro.core.prims`.  Their implementations live here and are total
  except for the documented partial ones (``div`` by zero, ``sqrt`` of a
  negative, ``num_of_str`` of a non-number, out-of-range ``list_get`` /
  ``str_sub``), which raise :class:`EvalError`.  These are *defined runtime
  faults*, not stuckness; the metatheory's progress property is stated
  modulo them (exactly as real languages state progress modulo division).

* **Registered natives** — host-implemented functions with a declared
  signature *and effect*, e.g. the simulated web request of the running
  example (effect ``s``, so the type system already forbids calling it from
  render code).  Natives receive plain Python arguments and the ambient
  :class:`~repro.system.services.Services`; their results are converted
  back under their declared result type.
"""

from __future__ import annotations

import math

from ..core import ast
from ..core.errors import EvalError, NativeError, ReproError
from ..core.prims import PRIM_SIGS, PrimSig, match_signature
from ..core.effects import Effect, PURE
from .values import bool_value, from_python, to_python


class NativeTable:
    """Registry of host-implemented operators, keyed by name.

    The same table is consulted by the type checker (for signatures) and
    the machine (for implementations), so a native can never be invoked at
    an effect its declaration does not permit.
    """

    def __init__(self):
        self._entries = {}

    def register(self, sig, impl):
        """Register native ``sig`` with Python callable ``impl``.

        ``impl(services, *args)`` receives Python-converted arguments and
        must return Python data convertible at ``sig.result``.
        """
        if not isinstance(sig, PrimSig):
            raise ReproError("register expects a PrimSig")
        if sig.name in PRIM_SIGS:
            raise ReproError(
                "native '{}' would shadow a built-in operator".format(sig.name)
            )
        if sig.name in self._entries:
            raise ReproError("native '{}' already registered".format(sig.name))
        self._entries[sig.name] = (sig, impl)
        return sig

    def signature(self, name):
        """The :class:`PrimSig` for native ``name``, or ``None``."""
        entry = self._entries.get(name)
        return entry[0] if entry else None

    def implementation(self, name):
        entry = self._entries.get(name)
        return entry[1] if entry else None

    def names(self):
        return tuple(self._entries)

    def merged_with(self, other):
        """A new table containing both registries (collision-checked)."""
        merged = NativeTable()
        for name, (sig, impl) in self._entries.items():
            merged._entries[name] = (sig, impl)
        for name, (sig, impl) in other._entries.items():
            if name in merged._entries:
                raise ReproError("native '{}' registered twice".format(name))
            merged._entries[name] = (sig, impl)
        return merged


#: An immutable-by-convention empty table for contexts without natives.
EMPTY_NATIVES = NativeTable()


def operator_signature(op, natives=None):
    """Resolve ``op`` to its signature: built-ins first, then natives."""
    sig = PRIM_SIGS.get(op)
    if sig is None and natives is not None:
        sig = natives.signature(op)
    return sig


def _num(value, op):
    if not isinstance(value, ast.Num):
        raise EvalError("{}: expected a number, got {!r}".format(op, value))
    return value.value


def _str(value, op):
    if not isinstance(value, ast.Str):
        raise EvalError("{}: expected a string, got {!r}".format(op, value))
    return value.value


def _list(value, op):
    if not isinstance(value, ast.ListLit):
        raise EvalError("{}: expected a list, got {!r}".format(op, value))
    return value


def _index(value, op, length, allow_end=False):
    index = _num(value, op)
    if index != int(index):
        raise EvalError("{}: index {} is not an integer".format(op, index))
    index = int(index)
    limit = length + (1 if allow_end else 0)
    if not 0 <= index < limit:
        raise EvalError(
            "{}: index {} out of range for length {}".format(op, index, length)
        )
    return index


def _format_number(value):
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _impl_div(a, b):
    if b == 0.0:
        raise EvalError("div: division by zero")
    return a / b


def _impl_mod(a, b):
    if b == 0.0:
        raise EvalError("mod: modulo by zero")
    return math.fmod(math.fmod(a, b) + b, b)  # sign follows the divisor


def _impl_sqrt(a):
    if a < 0:
        raise EvalError("sqrt: negative argument")
    return math.sqrt(a)


def _impl_num_of_str(s):
    try:
        return float(s)
    except ValueError:
        raise EvalError("num_of_str: not a number: {!r}".format(s))


def _impl_num_format(value, decimals):
    if decimals != int(decimals) or decimals < 0:
        raise EvalError("num_format: bad decimal count {}".format(decimals))
    return "{:.{}f}".format(value, int(decimals))


def apply_prim(op, args, natives=None, services=None):
    """Evaluate ``op(args...)`` where every argument is an AST value.

    Pure built-ins are dispatched inline; anything else must be a
    registered native, whose implementation is run with Python-converted
    arguments and the ambient services.
    """
    # -- built-in pure operators --------------------------------------------
    if op in PRIM_SIGS:
        return _apply_builtin(op, args)
    # -- registered natives --------------------------------------------------
    if natives is not None:
        sig = natives.signature(op)
        if sig is not None:
            impl = natives.implementation(op)
            py_args = [to_python(arg) for arg in args]
            result_type = match_signature(
                sig, [_value_type_for_native(a, op) for a in args]
            )
            try:
                result = impl(services, *py_args)
            except (EvalError, NativeError):
                raise
            except Exception as exc:  # surface host bugs with context
                raise NativeError("native '{}' failed: {}".format(op, exc))
            return from_python(result, result_type)
    raise EvalError("unknown operator: {!r}".format(op))


def _value_type_for_native(value, op):
    from .values import value_type

    type_ = value_type(value)
    if type_ is None:
        raise EvalError(
            "{}: argument {!r} has no function-free type".format(op, value)
        )
    return type_


def _apply_builtin(op, args):
    a = args  # brevity below
    if op == "add":
        return ast.Num(_num(a[0], op) + _num(a[1], op))
    if op == "sub":
        return ast.Num(_num(a[0], op) - _num(a[1], op))
    if op == "mul":
        return ast.Num(_num(a[0], op) * _num(a[1], op))
    if op == "div":
        return ast.Num(_impl_div(_num(a[0], op), _num(a[1], op)))
    if op == "mod":
        return ast.Num(_impl_mod(_num(a[0], op), _num(a[1], op)))
    if op == "pow":
        return ast.Num(float(_num(a[0], op) ** _num(a[1], op)))
    if op == "neg":
        return ast.Num(-_num(a[0], op))
    if op == "floor":
        return ast.Num(float(math.floor(_num(a[0], op))))
    if op == "ceil":
        return ast.Num(float(math.ceil(_num(a[0], op))))
    if op == "round":
        # Round half away from zero, like TouchDevelop's math->round.
        value = _num(a[0], op)
        return ast.Num(float(math.floor(value + 0.5) if value >= 0
                             else math.ceil(value - 0.5)))
    if op == "abs":
        return ast.Num(abs(_num(a[0], op)))
    if op == "sqrt":
        return ast.Num(_impl_sqrt(_num(a[0], op)))
    if op == "min":
        return ast.Num(min(_num(a[0], op), _num(a[1], op)))
    if op == "max":
        return ast.Num(max(_num(a[0], op), _num(a[1], op)))
    if op == "lt":
        return bool_value(_num(a[0], op) < _num(a[1], op))
    if op == "le":
        return bool_value(_num(a[0], op) <= _num(a[1], op))
    if op == "gt":
        return bool_value(_num(a[0], op) > _num(a[1], op))
    if op == "ge":
        return bool_value(_num(a[0], op) >= _num(a[1], op))
    if op == "eq":
        return bool_value(a[0] == a[1])
    if op == "ne":
        return bool_value(a[0] != a[1])
    if op == "and":
        return bool_value(_num(a[0], op) != 0.0 and _num(a[1], op) != 0.0)
    if op == "or":
        return bool_value(_num(a[0], op) != 0.0 or _num(a[1], op) != 0.0)
    if op == "not":
        return bool_value(_num(a[0], op) == 0.0)
    if op == "concat":
        return ast.Str(_str(a[0], op) + _str(a[1], op))
    if op == "str_of_num":
        return ast.Str(_format_number(_num(a[0], op)))
    if op == "num_of_str":
        return ast.Num(_impl_num_of_str(_str(a[0], op)))
    if op == "str_length":
        return ast.Num(float(len(_str(a[0], op))))
    if op == "str_sub":
        text = _str(a[0], op)
        start = _index(a[1], op, len(text), allow_end=True)
        end = _index(a[2], op, len(text), allow_end=True)
        return ast.Str(text[start:end])
    if op == "str_contains":
        return bool_value(_str(a[1], op) in _str(a[0], op))
    if op == "str_upper":
        return ast.Str(_str(a[0], op).upper())
    if op == "str_lower":
        return ast.Str(_str(a[0], op).lower())
    if op == "str_repeat":
        count = _num(a[1], op)
        if count < 0 or count != int(count):
            raise EvalError("str_repeat: bad count {}".format(count))
        return ast.Str(_str(a[0], op) * int(count))
    if op == "num_format":
        return ast.Str(_impl_num_format(_num(a[0], op), _num(a[1], op)))
    if op == "list_length":
        return ast.Num(float(len(_list(a[0], op).items)))
    if op == "list_get":
        lst = _list(a[0], op)
        return lst.items[_index(a[1], op, len(lst.items))]
    if op == "list_append":
        lst = _list(a[0], op)
        return ast.ListLit(lst.items + (a[1],), lst.element_type)
    if op == "list_concat":
        left, right = _list(a[0], op), _list(a[1], op)
        return ast.ListLit(left.items + right.items, left.element_type)
    if op == "list_reverse":
        lst = _list(a[0], op)
        return ast.ListLit(tuple(reversed(lst.items)), lst.element_type)
    if op == "list_slice":
        lst = _list(a[0], op)
        start = _index(a[1], op, len(lst.items), allow_end=True)
        end = _index(a[2], op, len(lst.items), allow_end=True)
        return ast.ListLit(lst.items[start:end], lst.element_type)
    if op == "list_range":
        from ..core.types import NUMBER

        start, end = _num(a[0], op), _num(a[1], op)
        if start != int(start) or end != int(end):
            raise EvalError("list_range: bounds must be integers")
        items = tuple(
            ast.Num(float(i)) for i in range(int(start), int(end))
        )
        return ast.ListLit(items, NUMBER)
    raise ReproError("builtin operator '{}' has no implementation".format(op))
