"""Runtime value helpers.

A deliberate design decision of this reproduction: *runtime values are AST
values* (the ``v`` grammar of Fig. 6, closed).  The store ``S``, the event
queue ``Q``, the page stack ``P`` and box-tree leaves all hold closed AST
values.  This keeps the implementation in one-to-one correspondence with
the paper — e.g. the state-typing rules of Fig. 11 (``C ⊢ S`` etc.) are
implemented by running the ordinary expression checker on stored values,
and the Fig. 12 fix-up relation literally re-type-checks stored values
against the new code.

This module provides the conversions between Python data and AST values
(used by natives and tests) and small value utilities shared by both
evaluators.
"""

from __future__ import annotations

from ..core import ast
from ..core.errors import EvalError, ReproError
from ..core.types import (
    FunType,
    ListType,
    NUMBER,
    NumberType,
    STRING,
    StringType,
    TupleType,
    Type,
)


def check_value(value):
    """Assert ``value`` is an AST value; return it."""
    if not isinstance(value, ast.Expr) or not value.is_value():
        raise EvalError("expected a value, got {!r}".format(value))
    return value


def truthy(value):
    """Numeric truthiness: non-zero is true (used by ``if`` and logic ops)."""
    if not isinstance(value, ast.Num):
        raise EvalError("condition must be a number, got {!r}".format(value))
    return value.value != 0.0


def bool_value(flag):
    """Encode a Python bool as the calculus' numeric boolean."""
    return ast.Num(1.0 if flag else 0.0)


def to_python(value):
    """Convert a function-free AST value to plain Python data.

    numbers → float, strings → str, tuples → tuple, lists → list.
    Raises on lambdas: closures have no Python analogue and nothing in the
    system should ever need to convert one.
    """
    if isinstance(value, ast.Num):
        return value.value
    if isinstance(value, ast.Str):
        return value.value
    if isinstance(value, ast.Tuple):
        return tuple(to_python(item) for item in value.items)
    if isinstance(value, ast.ListLit):
        return [to_python(item) for item in value.items]
    if isinstance(value, ast.Lam):
        raise EvalError("cannot convert a closure to Python data")
    raise EvalError("not a convertible value: {!r}".format(value))


def from_python(data, type_):
    """Convert Python data to an AST value of (function-free) type ``type_``.

    The type directs the conversion — in particular the element type of
    empty lists, which is not recoverable from the data alone.
    """
    if isinstance(type_, NumberType):
        if isinstance(data, bool) or not isinstance(data, (int, float)):
            raise EvalError("expected a number, got {!r}".format(data))
        return ast.Num(float(data))
    if isinstance(type_, StringType):
        if not isinstance(data, str):
            raise EvalError("expected a string, got {!r}".format(data))
        return ast.Str(data)
    if isinstance(type_, TupleType):
        data = tuple(data)
        if len(data) != type_.arity:
            raise EvalError(
                "expected a {}-tuple, got {!r}".format(type_.arity, data)
            )
        return ast.Tuple(
            tuple(
                from_python(item, element)
                for item, element in zip(data, type_.elements)
            )
        )
    if isinstance(type_, ListType):
        return ast.ListLit(
            tuple(from_python(item, type_.element) for item in data),
            type_.element,
        )
    if isinstance(type_, FunType):
        raise EvalError("cannot build a function value from Python data")
    raise ReproError("unknown type: {!r}".format(type_))


def value_type(value, lam_type_hint=None):
    """Compute the type of a closed, *function-free* AST value.

    Function values need the checker (their body must be typed); everything
    the store and page stack can contain is →-free, so this cheap
    syntax-directed version is what the fix-up relation (Fig. 12) and state
    typing use on the hot path.  Returns ``None`` when the value contains a
    lambda or a heterogeneous list.
    """
    if isinstance(value, ast.Num):
        return NUMBER
    if isinstance(value, ast.Str):
        return STRING
    if isinstance(value, ast.Tuple):
        element_types = []
        for item in value.items:
            item_type = value_type(item)
            if item_type is None:
                return None
            element_types.append(item_type)
        return TupleType(tuple(element_types))
    if isinstance(value, ast.ListLit):
        for item in value.items:
            item_type = value_type(item)
            if item_type is None or item_type != value.element_type:
                return None
        return ListType(value.element_type)
    return None


def format_for_post(value):
    """Render a posted value the way the display shows it.

    ``post`` accepts any type (rule T-POST); the display shows numbers
    without a trailing ``.0`` when integral, matching the paper's screens
    (e.g. "payment: $1199" in Fig. 1).
    """
    if isinstance(value, ast.Str):
        return value.value
    if isinstance(value, ast.Num):
        number = value.value
        if number == int(number) and abs(number) < 1e15:
            return str(int(number))
        return repr(number)
    if isinstance(value, ast.Tuple):
        return "({})".format(
            ", ".join(format_for_post(item) for item in value.items)
        )
    if isinstance(value, ast.ListLit):
        return "[{}]".format(
            ", ".join(format_for_post(item) for item in value.items)
        )
    if isinstance(value, ast.Lam):
        return "<function>"
    raise EvalError("cannot format {!r}".format(value))
