"""``repro.incremental`` — the update-surviving incremental render engine.

The §5 self-adjusting-computation sketch, taken past a single code
version: :mod:`repro.eval.memo` proves a render call is a pure function
of ``(argument, read-set values)``, but the UPDATE transition used to
swap in a fresh machine and drop the whole cache — so the hottest live
loop (edit → re-render, the latency the paper is about) always paid a
cold render.  This package supplies the two pieces that let memo entries
outlive UPDATE:

* :mod:`repro.incremental.digest` — per-function **code digests**: a
  hash of the definition body closed over its transitive ``FunRef``\\ s,
  alpha-normalized so compiler-generated fresh names don't shift it.
  Keying entries by ``(digest, argument)`` instead of machine identity
  makes "this function's code did not change" a dictionary lookup.
* :mod:`repro.incremental.store` — the :class:`MemoStore`, a bounded
  LRU of version-stamped entries that the
  :class:`~repro.system.transitions.System` threads through UPDATE.

An entry survives an update and replays without re-execution exactly
when its function's digest is unchanged **and** its read-set versions
(or, failing that, values) are unchanged — the rule ``docs/PERF.md``
spells out.
"""

from .digest import code_digests, function_canon
from .store import MemoEntry, MemoStore

__all__ = [
    "MemoEntry",
    "MemoStore",
    "code_digests",
    "function_canon",
]
