"""Per-function code digests — "did this function's code change?" as a hash.

A memo entry may only be replayed under new code if the function it
caches still *means* the same thing.  Structural equality of the stored
:class:`~repro.core.defs.FunDef` is too strict: the surface compiler
draws fresh names (``name%N``) and loop-function names (``$for_N``)
from per-compile counters, so an edit *earlier in the file* shifts the
names inside an untouched later function.  The digest therefore hashes
a **canonical form** that is invariant under those shifts:

* bound variables are alpha-normalized to binder-depth labels, so
  ``lam x%3. x%3`` and ``lam x%7. x%7`` digest identically;
* references to compiler-generated functions (names starting ``"$"``)
  are *inlined* — the generated body is canonicalized in place, with
  self/mutual recursion replaced by a stack-index marker — so the
  generated name itself never appears;
* references to user-written functions stay by name, and the digest of
  a function covers the canonical forms of every user function it can
  transitively reach (a change in a callee changes the caller's digest
  too — the entry caches the whole call's output);
* ``box_id``\\ s **are** included: they are baked into the cached box
  trees, and the Fig. 2 UI–code navigation dereferences them against
  the current sourcemap, so an entry whose boxes carry shifted ids must
  miss (a safe re-execution) rather than replay stale ids.

Everything else that could change behaviour — literals, effects,
parameter types, global names, primitive ops — is hashed verbatim.
"""

from __future__ import annotations

import hashlib

from ..core import ast

#: Compiler-generated definitions (loop bodies) use this name prefix.
GENERATED_PREFIX = "$"


def _canon(expr, code, out, bound, depth, gen_stack):
    """Append the canonical tokens of ``expr`` to ``out``.

    ``bound`` maps in-scope variable names to binder labels, ``depth``
    counts binders seen on this path, and ``gen_stack`` is the chain of
    generated functions currently being inlined (for recursion markers).
    """
    if isinstance(expr, ast.Num):
        out.append("N{!r}".format(expr.value))
    elif isinstance(expr, ast.Str):
        out.append("S{!r}".format(expr.value))
    elif isinstance(expr, ast.Var):
        label = bound.get(expr.name)
        if label is None:
            out.append("free:{}".format(expr.name))
        else:
            out.append("b{}".format(label))
    elif isinstance(expr, ast.Lam):
        out.append(
            "L[{}:{}](".format(expr.param_type, expr.effect)
        )
        previous = bound.get(expr.param)
        bound[expr.param] = depth
        _canon(expr.body, code, out, bound, depth + 1, gen_stack)
        if previous is None:
            del bound[expr.param]
        else:
            bound[expr.param] = previous
        out.append(")")
    elif isinstance(expr, ast.Tuple):
        out.append("T(")
        for item in expr.items:
            _canon(item, code, out, bound, depth, gen_stack)
            out.append(",")
        out.append(")")
    elif isinstance(expr, ast.ListLit):
        out.append("list[{}](".format(expr.element_type))
        for item in expr.items:
            _canon(item, code, out, bound, depth, gen_stack)
            out.append(",")
        out.append(")")
    elif isinstance(expr, ast.App):
        out.append("A(")
        _canon(expr.fn, code, out, bound, depth, gen_stack)
        out.append(",")
        _canon(expr.arg, code, out, bound, depth, gen_stack)
        out.append(")")
    elif isinstance(expr, ast.FunRef):
        if expr.name.startswith(GENERATED_PREFIX):
            if expr.name in gen_stack:
                # Recursive generated function: a stack-relative marker
                # instead of the unstable name.
                out.append("R{}".format(gen_stack.index(expr.name)))
            else:
                definition = code.function(expr.name)
                if definition is None:
                    out.append("F?{}".format(expr.name))
                else:
                    out.append("G(")
                    # The generated body is closed (top-level defs have
                    # no free variables), so inline it under an empty
                    # binder environment.
                    _canon(
                        definition.body, code, out, {}, 0,
                        gen_stack + (expr.name,),
                    )
                    out.append(")")
        else:
            out.append("F:{}".format(expr.name))
    elif isinstance(expr, ast.Proj):
        out.append("proj{}(".format(expr.index))
        _canon(expr.tuple_expr, code, out, bound, depth, gen_stack)
        out.append(")")
    elif isinstance(expr, ast.GlobalRead):
        out.append("g:{}".format(expr.name))
    elif isinstance(expr, ast.GlobalWrite):
        out.append("g!{}(".format(expr.name))
        _canon(expr.value, code, out, bound, depth, gen_stack)
        out.append(")")
    elif isinstance(expr, ast.Push):
        out.append("push:{}(".format(expr.page))
        _canon(expr.arg, code, out, bound, depth, gen_stack)
        out.append(")")
    elif isinstance(expr, ast.Pop):
        out.append("pop")
    elif isinstance(expr, ast.Boxed):
        out.append("B#{}(".format(expr.box_id))
        _canon(expr.body, code, out, bound, depth, gen_stack)
        out.append(")")
    elif isinstance(expr, ast.Post):
        out.append("post(")
        _canon(expr.value, code, out, bound, depth, gen_stack)
        out.append(")")
    elif isinstance(expr, ast.SetAttr):
        out.append("attr:{}(".format(expr.attr))
        _canon(expr.value, code, out, bound, depth, gen_stack)
        out.append(")")
    elif isinstance(expr, ast.If):
        out.append("if(")
        _canon(expr.cond, code, out, bound, depth, gen_stack)
        out.append(",")
        _canon(expr.then_branch, code, out, bound, depth, gen_stack)
        out.append(",")
        _canon(expr.else_branch, code, out, bound, depth, gen_stack)
        out.append(")")
    elif isinstance(expr, ast.Prim):
        out.append("P:{}(".format(expr.op))
        for arg in expr.args:
            _canon(arg, code, out, bound, depth, gen_stack)
            out.append(",")
        out.append(")")
    else:
        # Future node types must opt in explicitly: digesting them wrong
        # would replay stale results, so fail closed with a unique token.
        out.append("?{!r}".format(expr))


def function_canon(name, code):
    """The canonical string of ``code``'s function ``name``.

    Raises ``KeyError`` for an undefined name — callers decide whether
    that is an error or simply "not memoizable".
    """
    definition = code.function(name)
    if definition is None:
        raise KeyError(name)
    out = ["fn[{}:{}]".format(definition.type.param, definition.type.effect)]
    _canon(definition.body, code, out, {}, 0, ())
    return "".join(out)


def _reachable_user_functions(name, code):
    """User-function names transitively reachable from ``name``'s body,
    looking *through* generated functions (whose bodies are inlined into
    the canon and therefore contribute their own user calls)."""
    reached = set()
    visited_generated = set()
    frontier = [name]
    while frontier:
        current = frontier.pop()
        definition = code.function(current)
        if definition is None:
            continue
        for node in ast.walk(definition.body):
            if not isinstance(node, ast.FunRef):
                continue
            callee = node.name
            if callee.startswith(GENERATED_PREFIX):
                if callee not in visited_generated:
                    visited_generated.add(callee)
                    frontier.append(callee)
            elif callee not in reached and callee != name:
                reached.add(callee)
                frontier.append(callee)
    return reached


def code_digests(code):
    """``name → hex digest`` for every user-written function in ``code``.

    ``digest(f) = sha256(canon(f) · sorted (g, canon(g)) for g reachable
    from f)`` — so editing any function a call could execute changes the
    caller's digest, while edits elsewhere in the file (including ones
    that shift the compiler's fresh-name counters) leave it fixed.
    """
    canons = {}

    def canon_of(fname):
        cached = canons.get(fname)
        if cached is None:
            cached = canons[fname] = function_canon(fname, code)
        return cached

    digests = {}
    for definition in code.functions():
        name = definition.name
        if name.startswith(GENERATED_PREFIX):
            continue
        hasher = hashlib.sha256()
        hasher.update(canon_of(name).encode("utf-8"))
        for callee in sorted(_reachable_user_functions(name, code)):
            hasher.update(
                "|{}={}".format(callee, canon_of(callee)).encode("utf-8")
            )
        digests[name] = hasher.hexdigest()
    return digests
