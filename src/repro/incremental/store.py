"""The update-surviving memo store — a bounded LRU of render results.

One :class:`MemoStore` lives for the whole life of a
:class:`~repro.system.transitions.System` (and therefore of a live
session): UPDATE creates a fresh :class:`~repro.eval.memo.RenderMemo`
*view* per code version, but every view shares this store, so entries
for functions whose digest and read-set values are unchanged survive
the edit and replay without re-execution.

Entries are keyed by ``(code digest, argument value)`` — deliberately
*not* by function name (a rename that keeps the body is a digest match
and still hits) and *not* by read-set values (those are validated
against the entry's version-stamped read snapshot at probe time, see
:meth:`~repro.eval.memo.RenderMemo.probe`).

The store is bounded: without a cap, surviving UPDATE turns the old
per-machine cache into a leak across a long editing session.  Insertion
beyond ``max_entries`` evicts the least recently used entry and counts
``incremental.memo_evictions``.

**Sharing across sessions** (repro.cluster).  The store can also be
promoted from per-:class:`~repro.system.transitions.System` to
per-*program*: a :class:`~repro.serve.host.SessionHost` constructed with
``memo_store=`` hands every session a :class:`SessionMemoView` over the
one shared store, so N sessions running the same app warm each other —
entries are digest-keyed, which makes cross-session reuse sound (the
digest pins the code; the read-set snapshot is validated against the
*probing* session's store, and write-version ticks are globally unique
per process, so a foreign version stamp can never spuriously validate —
it falls back to the value compare and is then re-stamped locally).
That promotion makes the store a concurrency point: every operation is
serialized behind an internal lock, cheap when uncontended.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..obs.trace import NULL_TRACER

#: ``origin`` tag for entries imported from the cross-process cache tier
#: (:mod:`repro.cluster.memoshare`): always foreign to every session.
REMOTE_ORIGIN = "<remote>"


class MemoEntry:
    """One cached render call.

    ``reads`` is the version-stamped read snapshot: a list of mutable
    ``[global_name, store_version, value]`` slots.  Validation is an
    integer compare per slot on the fast path; on a version mismatch it
    falls back to a value compare and, when the value turns out equal,
    refreshes the stamp in place so the *next* probe is integers again.
    A version of ``0`` means "never assigned" — the value then came from
    the code's declared initial value, which an update can change with
    the digest fixed, so version-0 slots always deep-compare.

    ``origin`` names the session (token) that executed the call, or
    :data:`REMOTE_ORIGIN` for entries imported from the cross-process
    tier; ``None`` for private per-System stores.  A validated hit on an
    entry with a *different* origin is a cross-session warm hit
    (``cluster.memo.shared_hits``).
    """

    __slots__ = ("digest", "arg", "reads", "items", "value", "boxes",
                 "origin", "natives")

    def __init__(self, digest, arg, reads, items, value, boxes,
                 origin=None, natives=frozenset()):
        self.digest = digest
        self.arg = arg
        self.reads = reads
        self.items = items          # the cached box items (frozen trees)
        self.value = value          # the call's return value
        self.boxes = boxes          # boxes in ``items``, for replay stats
        self.origin = origin        # producing session, for shared stores
        self.natives = natives      # native ops the producer may call


class MemoStore:
    """A bounded, insertion-tracked LRU of :class:`MemoEntry`.

    Thread-safe: sessions sharing one store run on different host
    threads, so the LRU bookkeeping is serialized behind a lock (an
    uncontended acquire costs nanoseconds; the private per-System case
    pays essentially nothing).
    """

    def __init__(self, max_entries=4096, tracer=NULL_TRACER):
        self._entries = OrderedDict()
        self._max_entries = max_entries
        self._lock = threading.RLock()
        self.tracer = tracer
        self.evictions = 0

    def get(self, key):
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def put(self, key, entry):
        with self._lock:
            entries = self._entries
            if key not in entries and len(entries) >= self._max_entries:
                entries.popitem(last=False)
                self.evictions += 1
                self.tracer.add("incremental.memo_evictions")
            entries[key] = entry
            entries.move_to_end(key)

    def discard(self, key):
        with self._lock:
            self._entries.pop(key, None)

    def clear(self):
        with self._lock:
            self._entries.clear()

    def invalidate_natives(self, names):
        """Drop exactly the entries that may have called a rebound native.

        Digests cannot see host Python, so when UPDATE rebinds a native
        implementation the affected entries are stale with their keys
        unchanged.  Each entry carries the (transitive) native call set
        of the function that produced it, so invalidation is precise:
        entries whose producers cannot reach any name in ``names``
        survive the rebind.  Returns the number of entries dropped.
        """
        names = frozenset(names)
        if not names:
            return 0
        with self._lock:
            stale = [
                key for key, entry in self._entries.items()
                if entry.natives & names
            ]
            for key in stale:
                del self._entries[key]
            if stale:
                self.tracer.add(
                    "incremental.native_invalidations", len(stale)
                )
            return len(stale)

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def __contains__(self, key):
        with self._lock:
            return key in self._entries

    def stats(self):
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self._max_entries,
                "evictions": self.evictions,
            }


class SessionMemoView:
    """One session's facade over a shared :class:`MemoStore`.

    The view is what a :class:`~repro.system.transitions.System` owns
    when its host promotes memoization to per-program: reads and writes
    go straight to the shared store, but every entry this session
    executes is tagged with the session's ``origin``, and a validated
    hit on a *foreign* entry is reported through ``count`` (the host's
    serialized metric counter) as ``cluster.memo.shared_hits`` — the
    measurable fact that one user's render warmed another's.

    ``clear()`` and ``invalidate_natives()`` act on the *shared* store:
    their only caller is the native-rebind guard in UPDATE, whose
    reasoning ("digests cannot see host Python") invalidates the
    affected entries for every session equally.
    """

    __slots__ = ("store", "origin", "_count")

    def __init__(self, store, origin, count=None):
        self.store = store
        self.origin = origin
        self._count = count

    def get(self, key):
        return self.store.get(key)

    def put(self, key, entry):
        entry.origin = self.origin
        self.store.put(key, entry)

    def note_shared_hit(self, entry):
        """Called by :meth:`~repro.eval.memo.RenderMemo.probe` after an
        entry *validated*: count it iff another session produced it."""
        if entry.origin is not None and entry.origin != self.origin:
            if self._count is not None:
                self._count("cluster.memo.shared_hits")

    def discard(self, key):
        self.store.discard(key)

    def clear(self):
        self.store.clear()

    def invalidate_natives(self, names):
        return self.store.invalidate_natives(names)

    def __len__(self):
        return len(self.store)

    def __contains__(self, key):
        return key in self.store

    def stats(self):
        return self.store.stats()
