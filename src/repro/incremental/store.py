"""The update-surviving memo store — a bounded LRU of render results.

One :class:`MemoStore` lives for the whole life of a
:class:`~repro.system.transitions.System` (and therefore of a live
session): UPDATE creates a fresh :class:`~repro.eval.memo.RenderMemo`
*view* per code version, but every view shares this store, so entries
for functions whose digest and read-set values are unchanged survive
the edit and replay without re-execution.

Entries are keyed by ``(code digest, argument value)`` — deliberately
*not* by function name (a rename that keeps the body is a digest match
and still hits) and *not* by read-set values (those are validated
against the entry's version-stamped read snapshot at probe time, see
:meth:`~repro.eval.memo.RenderMemo.probe`).

The store is bounded: without a cap, surviving UPDATE turns the old
per-machine cache into a leak across a long editing session.  Insertion
beyond ``max_entries`` evicts the least recently used entry and counts
``incremental.memo_evictions``.
"""

from __future__ import annotations

from collections import OrderedDict

from ..obs.trace import NULL_TRACER


class MemoEntry:
    """One cached render call.

    ``reads`` is the version-stamped read snapshot: a list of mutable
    ``[global_name, store_version, value]`` slots.  Validation is an
    integer compare per slot on the fast path; on a version mismatch it
    falls back to a value compare and, when the value turns out equal,
    refreshes the stamp in place so the *next* probe is integers again.
    A version of ``0`` means "never assigned" — the value then came from
    the code's declared initial value, which an update can change with
    the digest fixed, so version-0 slots always deep-compare.
    """

    __slots__ = ("digest", "arg", "reads", "items", "value", "boxes")

    def __init__(self, digest, arg, reads, items, value, boxes):
        self.digest = digest
        self.arg = arg
        self.reads = reads
        self.items = items          # the cached box items (frozen trees)
        self.value = value          # the call's return value
        self.boxes = boxes          # boxes in ``items``, for replay stats


class MemoStore:
    """A bounded, insertion-tracked LRU of :class:`MemoEntry`."""

    def __init__(self, max_entries=4096, tracer=NULL_TRACER):
        self._entries = OrderedDict()
        self._max_entries = max_entries
        self.tracer = tracer
        self.evictions = 0

    def get(self, key):
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key, entry):
        entries = self._entries
        if key not in entries and len(entries) >= self._max_entries:
            entries.popitem(last=False)
            self.evictions += 1
            self.tracer.add("incremental.memo_evictions")
        entries[key] = entry
        entries.move_to_end(key)

    def discard(self, key):
        self._entries.pop(key, None)

    def clear(self):
        self._entries.clear()

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    def stats(self):
        return {
            "entries": len(self._entries),
            "max_entries": self._max_entries,
            "evictions": self.evictions,
        }
