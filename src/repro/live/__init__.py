"""The live programming IDE (Fig. 2): sessions, navigation, manipulation."""

from .editor import CodeBuffer
from .manipulation import (
    ManipulationEdit,
    apply_manipulation,
    format_attr_value,
    surface_attr_name,
)
from .navigation import Selection, box_to_code, code_to_boxes, selection_chain
from .probe import ProbeResult, probe_expression, probe_function
from .screenshot import code_pane, side_by_side
from .session import EditResult

from .._compat import deprecated_facade

__all__ = [name for name in dir() if not name.startswith("_")] + [
    "LiveSession"
]

# ``repro.live.LiveSession`` still works, with a DeprecationWarning —
# the supported spelling is ``from repro.api import LiveSession``.
__getattr__ = deprecated_facade(
    __name__, {"LiveSession": ("repro.live.session", "LiveSession")}
)
