"""A minimal code buffer for programmatic source editing.

The live IDE edits source text in three ways: wholesale replacement (the
programmer typed), span replacement (direct manipulation rewrites an
attribute value), and line insertion (direct manipulation adds a missing
``box.attr := v`` statement).  This buffer supports all three with
1-based line numbers matching :class:`repro.surface.span.Span`.
"""

from __future__ import annotations

from ..core.errors import ReproError


class CodeBuffer:
    """Mutable source text with line-based and span-based edits."""

    def __init__(self, source=""):
        self._lines = source.split("\n")

    @property
    def source(self):
        return "\n".join(self._lines)

    def line(self, number):
        """The text of 1-based line ``number`` (without the newline)."""
        if not 1 <= number <= len(self._lines):
            raise ReproError(
                "line {} out of range (buffer has {})".format(
                    number, len(self._lines)
                )
            )
        return self._lines[number - 1]

    def line_count(self):
        return len(self._lines)

    def set_source(self, source):
        self._lines = source.split("\n")

    def replace_line(self, number, text):
        """Replace 1-based line ``number`` entirely."""
        self.line(number)  # bounds check
        self._lines[number - 1] = text

    def insert_line(self, number, text):
        """Insert ``text`` so it becomes 1-based line ``number``."""
        if not 1 <= number <= len(self._lines) + 1:
            raise ReproError("insert position {} out of range".format(number))
        self._lines.insert(number - 1, text)

    def replace_span(self, span, text):
        """Replace the source region covered by ``span`` with ``text``.

        Works for single- and multi-line spans; columns are 0-based as in
        :class:`repro.surface.span.Pos`.
        """
        start, end = span.start, span.end
        first = self.line(start.line)
        last = self.line(end.line)
        merged = first[: start.column] + text + last[end.column:]
        new_lines = merged.split("\n")
        self._lines[start.line - 1 : end.line] = new_lines

    def find_once(self, needle):
        """(line, column) of the unique occurrence of ``needle``.

        Raises when the needle is absent or ambiguous — the direct
        manipulation code paths must never guess.
        """
        hits = [
            (number, line.index(needle))
            for number, line in enumerate(self._lines, start=1)
            if needle in line
        ]
        if len(hits) != 1:
            raise ReproError(
                "needle {!r} occurs {} times, expected exactly once".format(
                    needle, len(hits)
                )
            )
        return hits[0]
