"""Direct manipulation (Section 3): live-view attribute edits become code.

The programmer selects a box in the live view, picks an attribute from
the menu, and supplies a value.  The IDE then *edits the program text*:

* if the boxed statement already sets that attribute, the existing
  ``box.attr := …`` line's value is replaced in place;
* otherwise a new ``box.attr := value`` line is inserted as the first
  statement of the boxed body ("inserts (if not present) a command in the
  code and positions the code cursor on the margin number").

The effect is then realized by the ordinary UPDATE+RENDER path — direct
manipulation is sugar for a code edit, "whose effects are enshrined in
code" (Section 6), never a mutation of the display.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..boxes.attributes import attribute_spec, manipulable_attributes
from ..core.errors import ReproError
from ..core.types import NumberType
from .editor import CodeBuffer

#: Registry attribute names (spaced) → surface spelling (underscored).
_SURFACE_SPELLING = {"font size": "font_size"}


def surface_attr_name(attr):
    return _SURFACE_SPELLING.get(attr, attr)


def format_attr_value(attr, value):
    """Render a Python value as surface syntax for ``box.attr := …``."""
    spec = attribute_spec(attr)
    if isinstance(spec.type, NumberType):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ReproError(
                "attribute '{}' takes a number, got {!r}".format(attr, value)
            )
        number = float(value)
        if number == int(number):
            return str(int(number))
        return repr(number)
    if not isinstance(value, str):
        raise ReproError(
            "attribute '{}' takes a string, got {!r}".format(attr, value)
        )
    return '"{}"'.format(value.replace("\\", "\\\\").replace('"', '\\"'))


@dataclass(frozen=True)
class ManipulationEdit:
    """What a direct manipulation changed, for display and undo."""

    box_id: int
    attr: str
    new_line: str
    line_number: int
    inserted: bool  # False when an existing line was rewritten


def apply_manipulation(source, sourcemap, box_id, attr, value):
    """Return ``(new_source, edit)`` applying ``box.attr := value``.

    ``box_id`` must come from a :class:`~repro.live.navigation.Selection`
    against the *same* compiled program as ``sourcemap``.
    """
    spec = attribute_spec(attr)  # validates the attribute exists
    if attr not in {s.name for s in manipulable_attributes()}:
        raise ReproError(
            "attribute '{}' is not editable from the live view".format(attr)
        )
    entry = sourcemap.entry(box_id)
    if entry is None:
        raise ReproError("no boxed statement with id {}".format(box_id))
    buffer = CodeBuffer(source)
    value_text = format_attr_value(attr, value)
    statement = "box.{} := {}".format(surface_attr_name(attr), value_text)
    line_text = " " * entry.body_indent + statement

    existing = entry.attr_spans.get(attr)
    if existing is not None:
        line_number = existing.start.line
        old_line = buffer.line(line_number)
        indent = old_line[: len(old_line) - len(old_line.lstrip())]
        buffer.replace_line(line_number, indent + statement)
        return buffer.source, ManipulationEdit(
            box_id=box_id, attr=attr, new_line=indent + statement,
            line_number=line_number, inserted=False,
        )
    # Insert as the first statement of the boxed body.
    line_number = entry.body_span.start.line
    buffer.insert_line(line_number, line_text)
    return buffer.source, ManipulationEdit(
        box_id=box_id, attr=attr, new_line=line_text,
        line_number=line_number, inserted=True,
    )
