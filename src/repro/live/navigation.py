"""UI–code navigation (Fig. 2): boxes ↔ boxed statements.

Both directions are metadata joins, enabled by two facts: the render
machine stamps every box with the ``box_id`` of the ``boxed`` statement
that created it, and the source map records every boxed statement's span.

* live view → code view: :func:`box_to_code` walks from the selected box
  up to the nearest ancestor that carries a ``box_id`` (content directly
  inside the implicit root has none) and returns its source entry.
* code view → live view: :func:`code_to_boxes` finds the innermost boxed
  statement at a source position and returns *all* paths of boxes it
  created — "a selected boxed statement appearing inside a loop
  corresponds to multiple boxes in the display, which are collectively
  selected".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..boxes.paths import boxes_created_by, resolve
from ..core.errors import ReproError


@dataclass(frozen=True)
class Selection:
    """A synchronized selection: one boxed statement, all of its boxes."""

    box_id: int
    span: object          # source span of the boxed statement
    paths: tuple          # every display path created by that statement
    anchor_path: tuple = None  # the specific box the user picked, if any

    @property
    def multiple(self):
        return len(self.paths) > 1


def box_to_code(display, path, sourcemap):
    """Live-view tap at ``path`` → the creating boxed statement.

    Returns a :class:`Selection` (with every sibling box created by the
    same statement selected too), or ``None`` if the path only covers
    implicit-root content with no originating ``boxed`` statement.
    """
    path = tuple(path)
    while True:
        box = resolve(display, path)
        if box.box_id is not None:
            entry = sourcemap.entry(box.box_id)
            if entry is None:
                raise ReproError(
                    "display box #{} has no source entry — display and "
                    "code are out of sync".format(box.box_id)
                )
            siblings = tuple(
                sibling_path
                for sibling_path, _ in boxes_created_by(display, box.box_id)
            )
            return Selection(
                box_id=box.box_id,
                span=entry.span,
                paths=siblings,
                anchor_path=path,
            )
        if not path:
            return None
        path = path[:-1]


def code_to_boxes(display, line, sourcemap):
    """Code-view cursor on ``line`` → all boxes of the enclosing boxed stmt.

    Returns a :class:`Selection` or ``None`` when the line is not inside
    any boxed statement (or its boxes are not on the current page).
    """
    entry = sourcemap.boxed_at_line(line)
    if entry is None:
        return None
    paths = tuple(
        path for path, _ in boxes_created_by(display, entry.box_id)
    )
    return Selection(box_id=entry.box_id, span=entry.span, paths=paths)


def selection_chain(display, path, sourcemap):
    """The nested-selection cycle of Section 5: tapping the same box
    repeatedly selects enclosing boxed statements, innermost first."""
    selections = []
    seen = set()
    path = tuple(path)
    while True:
        selection = box_to_code(display, path, sourcemap)
        if selection is None:
            break
        if selection.box_id not in seen:
            seen.add(selection.box_id)
            selections.append(selection)
        anchor = selection.anchor_path
        if not anchor:
            break
        path = anchor[:-1]
    return selections
