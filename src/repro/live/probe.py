"""Probes: running program fragments against the live model, safely.

Section 5 sketches two futures this module implements:

* live programming "as an alternative to step-wise debuggers" is limited
  because "the code in event handlers and initialization bodies is not
  debuggable via live programming" — :func:`probe_function` runs *any*
  function (pure, render, or state) against the current model.  State
  probes execute against a **copy** of the store, reporting the writes
  and navigation events they *would* perform without committing them;
* "the use of boxed statements to produce debugging output in batch
  computations" — probing a render-effect function captures the box tree
  it builds and renders it as an off-screen screenshot.

:func:`probe_expression` is the REPL the paper's §2 compares against —
except it evaluates in the live program's context (its globals, records
and functions), so it complements the live view instead of replacing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import ast
from ..core.effects import Effect, PURE, RENDER, STATE
from ..core.errors import ReproError, TypeProblem
from ..eval.values import from_python, to_python
from ..surface import surface_ast as S
from ..surface.lexer import tokenize
from ..surface.lower import _Lowerer, _LowerScope
from ..surface.parser import _Parser
from ..surface.typecheck import _DeclChecker, _Scope
from ..system.events import EventQueue


@dataclass
class ProbeResult:
    """What a probe observed — nothing here touched the running program."""

    effect: Effect
    value: object = None            # AST value the fragment reduced to
    tree: object = None             # box tree, for render-effect probes
    store_writes: dict = field(default_factory=dict)  # name → (old, new)
    events: tuple = ()              # navigation the fragment attempted

    @property
    def python_value(self):
        """The value as Python data (None for closures/unit)."""
        if self.value is None or self.value == ast.UNIT_VALUE:
            return None
        try:
            return to_python(self.value)
        except Exception:
            return None

    def screenshot(self, width=40):
        """Render a captured box tree (render probes only)."""
        if self.tree is None:
            return ""
        from ..render.text_backend import render_text

        return render_text(self.tree, width=width)

    def describe(self):
        """One human-readable summary block."""
        lines = ["probe ran under effect '{}'".format(self.effect)]
        if self.value is not None and self.value != ast.UNIT_VALUE:
            lines.append("value : {}".format(self.python_value))
        for name, (old, new) in self.store_writes.items():
            lines.append(
                "would set {} : {} → {}".format(
                    name,
                    "unset" if old is None else to_python(old),
                    to_python(new),
                )
            )
        for event in self.events:
            lines.append("would enqueue {}".format(event))
        if self.tree is not None:
            lines.append("boxes built: {}".format(self.tree.count_boxes()))
        return "\n".join(lines)


def _run_probe(session, expr, effect):
    """Evaluate core ``expr`` under ``effect`` against a store copy."""
    system = session.runtime.system
    store = system.state.store.copy()
    before = dict(store.items())
    queue = EventQueue()
    # A probe runs on the session's configured evaluator backend — a
    # private instance, so probing can never disturb the live system's
    # evaluator (or its memo view).
    machine = system.backend.compile(
        system.code, natives=system.natives, services=system.services
    )
    result = ProbeResult(effect=effect)
    if effect is RENDER:
        result.tree = machine.run_render(store, expr)
        result.value = ast.UNIT_VALUE
    elif effect is STATE:
        result.value = machine.run_state(store, queue, expr)
    else:
        result.value = machine.run_pure(store, expr)
    after = dict(store.items())
    result.store_writes = {
        name: (before.get(name), value)
        for name, value in after.items()
        if before.get(name) != value
    }
    result.events = queue.events()
    return result


def probe_function(session, name, *py_args):
    """Run function ``name`` of the live program with Python arguments.

    The function's inferred effect decides the probe mode; arguments are
    converted at the declared parameter types (records as tuples).
    """
    env = session.compiled.env
    sig = env.funs.get(name)
    if sig is None:
        raise ReproError("the program has no function '{}'".format(name))
    if len(py_args) != len(sig.param_stypes):
        raise ReproError(
            "'{}' takes {} argument(s), got {}".format(
                name, len(sig.param_stypes), len(py_args)
            )
        )
    records = env.records
    args = tuple(
        from_python(arg, stype.to_core(records))
        for arg, stype in zip(py_args, sig.param_stypes)
    )
    expr = ast.App(ast.FunRef(name), ast.Tuple(args))
    return _run_probe(session, expr, sig.effect or PURE)


def probe_expression(session, text):
    """Evaluate a surface *expression* in the live program's context.

    The expression may reference globals, call functions/externs/builtins
    and construct records.  Its effect is inferred (the least of p/s/r it
    checks under); state effects run against a store copy.
    """
    tokens = tokenize(text)
    parser = _Parser(tokens)
    surface_expr = parser._parse_expr()
    remaining = parser._peek()
    if remaining.kind not in ("NEWLINE", "EOF"):
        raise ReproError(
            "unexpected trailing input in probe: {}".format(remaining)
        )
    env = session.compiled.env
    checker = _DeclChecker(env)
    last_problem = None
    for effect in (PURE, STATE, RENDER):
        try:
            checker.check_expr(surface_expr, _Scope(), effect)
            break
        except TypeProblem as problem:
            last_problem = problem
    else:
        raise last_problem
    lowerer = _Lowerer(env)
    core_expr = lowerer.lower_expr(surface_expr, _LowerScope(), effect)
    if lowerer.generated:  # defensive: expressions cannot contain loops
        raise ReproError("probe expressions cannot generate functions")
    return _run_probe(session, core_expr, effect)
