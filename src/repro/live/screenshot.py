"""The Fig. 2 split screen as text: live view left, code view right.

The live view draws the current display with any selection framed in
``#``; the code view shows numbered source lines, marking the lines of
the selected boxed statement with ``>`` — the text rendition of the
paper's red outline and highlighted statement.
"""

from __future__ import annotations

from ..render.text_backend import render_text


def code_pane(source, selection=None, window=None, problems=()):
    """Numbered source listing with selection markers and diagnostics."""
    lines = source.split("\n")
    selected_lines = set()
    if selection is not None:
        selected_lines = set(
            range(selection.span.start.line, selection.span.end.line + 1)
        )
    problem_lines = {
        problem.span.start.line
        for problem in problems
        if getattr(problem, "span", None) is not None
    }
    rows = []
    for number, text in enumerate(lines, start=1):
        if window is not None and number not in window:
            continue
        marker = ">" if number in selected_lines else " "
        if number in problem_lines:
            marker = "!"
        rows.append("{}{:>4} | {}".format(marker, number, text))
    return "\n".join(rows)


def side_by_side(session, width=44, selection=None, code_window=None):
    """Join the live pane and the code pane with a gutter."""
    live = render_text(
        session.display,
        width=width,
        selected_paths=selection.paths if selection is not None else (),
    ).split("\n")
    code = code_pane(
        session.source,
        selection=selection,
        window=code_window,
        problems=session.problems,
    ).split("\n")
    height = max(len(live), len(code))
    live += [""] * (height - len(live))
    code += [""] * (height - len(code))
    return "\n".join(
        "{:<{w}} ║ {}".format(left, right, w=width)
        for left, right in zip(live, code)
    )
