"""The live programming session — the headless IDE of Fig. 2.

A :class:`LiveSession` owns the source text and the running program and
keeps them continuously connected:

* **live editing** — :meth:`edit_source` re-parses, re-typechecks and
  re-compiles on every edit.  A well-typed program fires the UPDATE
  transition and the display refreshes under the new code with the old
  model state; a broken one is *rejected* and the program keeps running
  the last good code (the paper's editor keeps the live view alive while
  the programmer types through intermediate broken states).
* **UI-code navigation** — :meth:`select_box` / :meth:`select_code`.
* **direct manipulation** — :meth:`manipulate` turns an attribute edit on
  a selected box into a code edit, then live-applies it.

All user interactions (tap/back/edit) pass through to the runtime so a
scripted "programmer" can interleave using the app with editing it —
which is the paper's entire point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import (
    ReproError,
    SyntaxProblem,
    TypeProblem,
    UpdateRejected,
)
from ..obs.trace import NULL_TRACER, Stopwatch
from ..surface.compile import compile_source
from ..system.runtime import Runtime
from .editor import CodeBuffer
from .manipulation import apply_manipulation
from .navigation import box_to_code, code_to_boxes, selection_chain


@dataclass(frozen=True)
class EditResult:
    """Outcome of one live edit.

    ``phases`` is the per-phase wall-second breakdown of the edit cycle
    (``parse`` / ``typecheck`` / ``lower`` / ``update`` / ``render``),
    populated when the session was created with a real tracer; with the
    default NullTracer it is empty and only ``elapsed`` is measured.

    ``status`` is ``"applied"``, ``"rejected"`` (did not compile /
    did not type), or — only for sessions created with
    ``supervised=True`` — ``"rolled_back"``: the new program was
    well-typed but faulted on its very first render, so the supervisor
    restored the last-good code and the old program is still running.

    ``memo_hits`` / ``memo_misses`` / ``replayed_boxes`` describe the
    re-render that applied the edit when the session runs with
    ``memo_render=True`` (repro.incremental): how many render calls were
    replayed from the update-surviving memo store versus re-executed,
    and how many cached boxes were spliced in without re-execution.
    They stay zero for unmemoized sessions and rejected edits.
    """

    status: str                    # "applied", "rejected", "rolled_back"
    problems: tuple = ()           # diagnostics when rejected
    report: object = None          # FixupReport when applied
    elapsed: float = 0.0           # wall seconds for compile+update+render
    phases: tuple = ()             # ((phase_name, wall_seconds), ...)
    memo_hits: int = 0             # render calls replayed from the memo
    memo_misses: int = 0           # render calls re-executed
    replayed_boxes: int = 0        # boxes spliced from cache, not rebuilt

    @property
    def applied(self):
        return self.status == "applied"

    @property
    def phase_seconds(self):
        """The breakdown as a dict (sums repeated phases)."""
        breakdown = {}
        for name, seconds in self.phases:
            breakdown[name] = breakdown.get(name, 0.0) + seconds
        return breakdown


class LiveSession:
    """A running program plus its editable source."""

    def __init__(
        self,
        source,
        host_impls=None,
        services=None,
        faithful=False,
        reuse_boxes=False,
        memo_render=False,
        memo_store=None,
        tracer=None,
        fault_policy="raise",
        budget=None,
        chaos=None,
        supervised=False,
        backend=None,
    ):
        self.host_impls = dict(host_impls or {})
        #: Shared observability hook (repro.obs) for the whole session:
        #: the compile pipeline, the system transitions and the machines
        #: all record into it.  NullTracer (the default) disables it all.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.compiled = compile_source(
            source, self.host_impls, tracer=self.tracer
        )
        self.runtime = Runtime(
            self.compiled.code,
            natives=self.compiled.natives,
            services=services,
            faithful=faithful,
            reuse_boxes=reuse_boxes,
            memo_render=memo_render,
            memo_store=memo_store,
            tracer=self.tracer,
            fault_policy=fault_policy,
            budget=budget,
            chaos=chaos,
            backend=backend,
        )
        #: Resilience (repro.resilience): with ``supervised=True`` every
        #: live edit goes through a Supervisor — an update whose first
        #: render faults is rolled back to the last-good code, so the
        #: programmer sees ``"rolled_back"`` instead of a dead view.
        self.supervisor = None
        if supervised:
            from ..resilience.supervisor import Supervisor

            self.supervisor = Supervisor(self.runtime, tracer=self.tracer)
        self.runtime.start()
        self.buffer = CodeBuffer(source)
        #: Diagnostics for the *current buffer* (empty when it compiled).
        self.problems = ()
        self.edit_log = []
        # Undo/redo over *accepted* program versions.  Each entry is a
        # source text that once ran; undoing replays it through the
        # ordinary UPDATE path, so state fix-up applies as usual.
        self._undo_stack = [source]
        self._redo_stack = []

    # -- source state -----------------------------------------------------------

    @property
    def source(self):
        """The current buffer contents (possibly not yet compilable)."""
        return self.buffer.source

    @property
    def display(self):
        return self.runtime.display

    # -- live editing ------------------------------------------------------------

    def edit_source(self, new_source):
        """Replace the buffer and try to live-apply it.

        Always updates the buffer (the programmer's text is never thrown
        away); the running program only changes when the new source
        compiles and the UPDATE transition accepts it.
        """
        self.buffer.set_source(new_source)
        watch = Stopwatch()
        with self.tracer.span("edit_cycle") as cycle:
            try:
                compiled = compile_source(
                    new_source, self.host_impls, tracer=self.tracer
                )
            except (SyntaxProblem, TypeProblem) as problem:
                self.problems = (problem,)
                result = EditResult(
                    status="rejected",
                    problems=self.problems,
                    elapsed=watch.elapsed(),
                    phases=self._cycle_phases(cycle),
                )
                self.edit_log.append(result)
                return result
            try:
                if self.supervisor is not None:
                    outcome = self.supervisor.apply_update(
                        compiled.code, natives=compiled.natives
                    )
                    if outcome.rolled_back:
                        # The new code typed but could not draw a frame;
                        # the last-good program is running again.  The
                        # buffer keeps the programmer's text.
                        self.problems = (outcome.fault,)
                        result = EditResult(
                            status="rolled_back",
                            problems=self.problems,
                            elapsed=watch.elapsed(),
                            phases=self._cycle_phases(cycle),
                        )
                        self.edit_log.append(result)
                        return result
                    report = outcome.report
                else:
                    report = self.runtime.update_code(
                        compiled.code, natives=compiled.natives
                    )
            except UpdateRejected as rejected:
                # The surface checker should have caught everything; if
                # the core checker disagrees, surface it rather than
                # crash.
                self.problems = tuple(rejected.problems)
                result = EditResult(
                    status="rejected",
                    problems=self.problems,
                    elapsed=watch.elapsed(),
                    phases=self._cycle_phases(cycle),
                )
                self.edit_log.append(result)
                return result
            self.compiled = compiled
            self.problems = ()
            if new_source != self._undo_stack[-1]:
                self._undo_stack.append(new_source)
                self._redo_stack.clear()
            # The re-render that applied this edit has already run
            # (update_code settles the system), so the incremental
            # engine's reuse numbers for it are final.
            reuse = self.runtime.system.last_update_render_stats
            result = EditResult(
                status="applied",
                report=report,
                elapsed=watch.elapsed(),
                phases=self._cycle_phases(cycle),
                memo_hits=reuse.get("hits", 0),
                memo_misses=reuse.get("misses", 0),
                replayed_boxes=reuse.get("replayed_boxes", 0),
            )
            self.edit_log.append(result)
            return result

    def _cycle_phases(self, cycle):
        """Per-phase durations: the finished children of the cycle span."""
        if cycle.span_id is None:
            return ()
        return tuple(
            (span.name, span.duration)
            for span in self.tracer.children_of(cycle.span_id)
        )

    def can_undo(self):
        return len(self._undo_stack) > 1

    def can_redo(self):
        return bool(self._redo_stack)

    def undo(self):
        """Live-apply the previous accepted program version.

        Undo is itself an UPDATE: the *code* goes back, the *model state*
        is fixed up against it (Fig. 12) — interactions made since the
        edit are not rolled back, exactly as if the programmer had typed
        the old program again.
        """
        if not self.can_undo():
            raise ReproError("nothing to undo")
        current = self._undo_stack.pop()
        previous = self._undo_stack[-1]
        result = self.edit_source(previous)
        # edit_source saw previous == top-of-stack, so it neither pushed
        # nor cleared the redo stack; record the redo direction manually.
        if result.applied:
            self._redo_stack.append(current)
        else:  # defensive: e.g. externs changed out from under us
            self._undo_stack.append(current)
        return result

    def redo(self):
        """Re-apply the most recently undone version."""
        if not self.can_redo():
            raise ReproError("nothing to redo")
        source = self._redo_stack.pop()
        remaining = list(self._redo_stack)
        result = self.edit_source(source)  # pushes + clears redo
        # Restore the deeper redo history the push wiped.
        if result.applied:
            self._redo_stack = remaining
        else:
            self._redo_stack = remaining + [source]
        return result

    def replace_text(self, old, new):
        """Edit by unique textual replacement (scripted-programmer sugar)."""
        count = self.source.count(old)
        if count != 1:
            raise ReproError(
                "replace_text: pattern occurs {} times, expected "
                "exactly once".format(count)
            )
        return self.edit_source(self.source.replace(old, new))

    # -- navigation ---------------------------------------------------------------

    def select_box(self, path):
        """Live view → code view: the boxed statement behind ``path``."""
        return box_to_code(self.display, path, self.compiled.sourcemap)

    def select_code(self, line):
        """Code view → live view: all boxes of the boxed stmt at ``line``."""
        return code_to_boxes(self.display, line, self.compiled.sourcemap)

    def selection_chain(self, path):
        """Nested-selection cycle (repeated taps select enclosing boxes)."""
        return selection_chain(self.display, path, self.compiled.sourcemap)

    # -- direct manipulation ----------------------------------------------------------

    def manipulate(self, path, attr, value):
        """Set ``attr`` of the box at ``path`` by editing the code.

        Returns ``(edit, result)``: the code edit that was made and the
        :class:`EditResult` of live-applying it.
        """
        selection = self.select_box(path)
        if selection is None:
            raise ReproError(
                "the box at {} was not created by a boxed statement".format(
                    list(path)
                )
            )
        new_source, edit = apply_manipulation(
            self.source, self.compiled.sourcemap, selection.box_id,
            attr, value,
        )
        result = self.edit_source(new_source)
        return edit, result

    # -- user actions (the programmer also *uses* the app) ------------------------------

    def tap(self, path):
        self.runtime.tap(path)
        return self

    def tap_text(self, text):
        self.runtime.tap_text(text)
        return self

    def edit_box(self, path, text):
        self.runtime.edit(path, text)
        return self

    def back(self):
        self.runtime.back()
        return self

    # -- probes (Section 5's debugging future work) ---------------------------------------

    def probe(self, fun_name, *py_args):
        """Run a program function against the live model, off to the side.

        State-effect functions run against a *copy* of the store; the
        result reports what they would have changed.  Render-effect
        functions return the box tree they build (captured debugging
        output).  See :mod:`repro.live.probe`.
        """
        from .probe import probe_function

        return probe_function(self, fun_name, *py_args)

    def probe_expr(self, text):
        """Evaluate a surface expression in the program's context (REPL)."""
        from .probe import probe_expression

        return probe_expression(self, text)

    # -- views --------------------------------------------------------------------------

    def screenshot(self, width=48, selection=None):
        """The live view, optionally with a selection highlighted."""
        from ..render.text_backend import render_text

        selected_paths = selection.paths if selection is not None else ()
        return render_text(
            self.display, width=width, selected_paths=selected_paths
        )

    def html(self, title="repro page"):
        """The live view as a standalone HTML document (second backend).

        This is what the :mod:`repro.serve` protocol's ``render`` op
        returns; tests use it to check that an evicted-and-rehydrated
        session's display is byte-identical to a never-evicted one.
        """
        from ..render.html_backend import render_html

        return render_html(self.display, title=title)

    def apply_events(self, events):
        """Apply a batch of queued user events with one render at the end.

        ``events`` is a sequence of ``("tap", path)`` / ``("tap_text",
        text)`` / ``("edit", path, text)`` / ``("back",)`` tuples.  See
        :mod:`repro.serve.batching` — N events produce a single RENDER,
        the semantics' "render only on quiescence".
        """
        from ..serve.batching import apply_batch

        return apply_batch(self, events)

    def side_by_side(self, width=44, selection=None, code_window=None):
        """The Fig. 2 split screen: live view left, code view right."""
        from .screenshot import side_by_side

        return side_by_side(
            self, width=width, selection=selection, code_window=code_window
        )
