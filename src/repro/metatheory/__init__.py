"""Executable metatheory for Section 4.3 (preservation, progress,
invariants) plus hypothesis generators for random well-typed programs."""

from .preservation import (
    PreservationReport,
    PreservationViolation,
    check_preserving_run,
)
from .progress import (
    FAULT,
    STEPS,
    STUCK,
    VALUE,
    ProgressViolation,
    check_progress_run,
    classify,
)
from .wellformed import InvariantViolation, check_invariants, no_stale_code

__all__ = [name for name in dir() if not name.startswith("_")]
