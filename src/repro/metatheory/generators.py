"""Hypothesis strategies for random *well-typed* core programs.

The metatheory properties quantify over all well-typed expressions and
programs; these strategies generate them by construction — every
generated expression carries a target type and effect and only rules that
preserve typability are applied.  Partial primitives (division, parsing,
indexing) are deliberately excluded so preservation runs cannot trap;
progress-with-faults is exercised by dedicated tests instead.

Generated programs always terminate: generated function bodies make no
calls, and there is no recursion source other than the (unused) FunRef
rule — so property tests can fully reduce everything they generate.
"""

from __future__ import annotations

from hypothesis import strategies as st

from ..core import ast
from ..core.defs import Code, GlobalDef, PageDef
from ..core.effects import PURE, RENDER, STATE
from ..core.names import ATTR_MARGIN
from ..core.types import (
    FunType,
    ListType,
    NUMBER,
    STRING,
    TupleType,
    UNIT,
    fun,
)

_IDENT_POOL = ("g_num", "g_str", "g_pair", "g_list")


def function_free_types(max_depth=2):
    """Strategy for →-free types (legal global/page-argument types)."""
    base = st.sampled_from((NUMBER, STRING, UNIT))
    if max_depth <= 0:
        return base
    inner = function_free_types(max_depth - 1)
    return st.one_of(
        base,
        st.lists(inner, min_size=1, max_size=3).map(
            lambda elems: TupleType(tuple(elems))
        ),
        inner.map(ListType),
    )


@st.composite
def values_of(draw, type_):
    """Strategy for closed AST *values* of ``type_``."""
    if type_ == NUMBER:
        return ast.Num(float(draw(st.integers(-99, 99))))
    if type_ == STRING:
        return ast.Str(draw(st.text(alphabet="abcxyz", max_size=5)))
    if isinstance(type_, TupleType):
        return ast.Tuple(
            tuple(draw(values_of(elem)) for elem in type_.elements)
        )
    if isinstance(type_, ListType):
        items = tuple(
            draw(values_of(type_.element))
            for _ in range(draw(st.integers(0, 3)))
        )
        return ast.ListLit(items, type_.element)
    if isinstance(type_, FunType):
        body = draw(values_of(type_.result))
        return ast.Lam(
            ast.fresh_name("gen"), type_.param, body, type_.effect
        )
    raise AssertionError("no value strategy for {!r}".format(type_))


@st.composite
def expressions_of(draw, code, gamma, type_, effect, depth=3):
    """Strategy for expressions with ``C; Γ ⊢effect e : type_``.

    ``gamma`` is a dict name → type of in-scope lambda variables.
    """
    leafs = ["value"]
    for name, var_type in gamma.items():
        if var_type == type_:
            leafs.append(("var", name))
    for definition in code.globals():
        if definition.type == type_:
            leafs.append(("global", definition.name))

    if depth <= 0:
        choice = draw(st.sampled_from(leafs))
    else:
        options = list(leafs) + ["if", "let", "tuple_proj"]
        options.extend(_prim_options(type_))
        from ..core.effects import subeffect

        for definition in code.functions():
            if definition.type.result == type_ and subeffect(
                definition.type.effect, effect
            ):
                options.append(("call", definition.name))
        if isinstance(type_, TupleType):
            options.append("tuple")
        if isinstance(type_, ListType):
            options.append("list")
        if effect is STATE and type_ == UNIT and code.globals():
            options.append("assign")
        if effect is RENDER:
            options.append("boxed")
            if type_ == UNIT:
                options.extend(["post", "setattr"])
        choice = draw(st.sampled_from(options))

    recur = lambda t, d=depth - 1, e=effect, g=gamma: draw(
        expressions_of(code, g, t, e, d)
    )

    if choice == "value":
        return draw(values_of(type_))
    if isinstance(choice, tuple) and choice[0] == "var":
        return ast.Var(choice[1])
    if isinstance(choice, tuple) and choice[0] == "global":
        return ast.GlobalRead(choice[1])
    if isinstance(choice, tuple) and choice[0] == "call":
        definition = code.function(choice[1])
        return ast.App(ast.FunRef(choice[1]), recur(definition.type.param))
    if choice == "if":
        return ast.If(recur(NUMBER), recur(type_), recur(type_))
    if choice == "let":
        bound_type = draw(st.sampled_from((NUMBER, STRING, UNIT)))
        var = ast.fresh_name("let")
        inner_gamma = dict(gamma)
        inner_gamma[var] = bound_type
        body = draw(
            expressions_of(code, inner_gamma, type_, effect, depth - 1)
        )
        return ast.App(
            ast.Lam(var, bound_type, body, effect), recur(bound_type)
        )
    if choice == "tuple_proj":
        width = draw(st.integers(1, 3))
        position = draw(st.integers(1, width))
        elements = [
            draw(st.sampled_from((NUMBER, STRING))) for _ in range(width)
        ]
        elements[position - 1] = type_
        tuple_expr = ast.Tuple(
            tuple(
                recur(element_type) for element_type in elements
            )
        )
        return ast.Proj(tuple_expr, position)
    if choice == "tuple":
        return ast.Tuple(tuple(recur(elem) for elem in type_.elements))
    if choice == "list":
        items = tuple(
            recur(type_.element) for _ in range(draw(st.integers(0, 2)))
        )
        return ast.ListLit(items, type_.element)
    if choice == "assign":
        target = draw(st.sampled_from(code.globals()))
        return ast.GlobalWrite(target.name, recur(target.type))
    if choice == "boxed":
        return ast.Boxed(recur(type_), box_id=draw(st.integers(0, 9)))
    if choice == "post":
        payload = draw(st.sampled_from((NUMBER, STRING)))
        return ast.Post(recur(payload))
    if choice == "setattr":
        return ast.SetAttr(ATTR_MARGIN, recur(NUMBER))
    # Primitive operators.
    op, arg_types = choice
    return ast.Prim(op, tuple(recur(arg) for arg in arg_types))


def _prim_options(type_):
    """Total primitives producing ``type_`` (partial ones excluded)."""
    options = []
    if type_ == NUMBER:
        options.extend(
            [
                ("add", (NUMBER, NUMBER)),
                ("sub", (NUMBER, NUMBER)),
                ("mul", (NUMBER, NUMBER)),
                ("floor", (NUMBER,)),
                ("lt", (NUMBER, NUMBER)),
                ("eq", (NUMBER, NUMBER)),
                ("not", (NUMBER,)),
                ("str_length", (STRING,)),
            ]
        )
    elif type_ == STRING:
        options.extend(
            [
                ("concat", (STRING, STRING)),
                ("str_of_num", (NUMBER,)),
                ("str_upper", (STRING,)),
            ]
        )
    elif isinstance(type_, ListType):
        options.append(("list_append", (type_, type_.element)))
    return options


@st.composite
def programs(draw, max_globals=3, body_depth=3, max_functions=2):
    """Strategy for complete well-typed programs.

    Globals, optional non-recursive pure helper functions (whose bodies
    may read globals and call earlier helpers — still guaranteed to
    terminate), and a start page whose init/render bodies may call them.
    """
    from ..core.defs import FunDef
    from ..core.types import FunType

    globals_ = []
    count = draw(st.integers(1, max_globals))
    for index in range(count):
        g_type = draw(function_free_types(1))
        init = draw(values_of(g_type))
        globals_.append(GlobalDef("g{}".format(index), g_type, init))
    partial_code = Code(globals_)

    functions = []
    for index in range(draw(st.integers(0, max_functions))):
        param_type = draw(st.sampled_from((NUMBER, STRING, UNIT)))
        result_type = draw(st.sampled_from((NUMBER, STRING)))
        param = ast.fresh_name("p")
        body = draw(
            expressions_of(
                partial_code,  # earlier helpers are callable (no cycles)
                {param: param_type},
                result_type,
                PURE,
                body_depth - 1,
            )
        )
        definition = FunDef(
            "f{}".format(index),
            FunType(param_type, result_type, PURE),
            ast.Lam(param, param_type, body, PURE),
        )
        functions.append(definition)
        partial_code = Code(globals_ + functions)

    init_body = draw(
        expressions_of(partial_code, {}, UNIT, STATE, body_depth)
    )
    render_body = draw(
        expressions_of(partial_code, {}, UNIT, RENDER, body_depth)
    )
    page = PageDef(
        "start",
        UNIT,
        ast.Lam(ast.fresh_name("a"), UNIT, init_body, STATE),
        ast.Lam(ast.fresh_name("a"), UNIT, render_body, RENDER),
    )
    return Code(globals_ + functions + [page])


@st.composite
def live_programs(draw, max_globals=3, body_depth=3, max_functions=3):
    """Strategy for programs whose view is drawn through *functions*.

    Like :func:`programs`, but the helpers carry the **render** effect —
    they may box, post, set attributes, read globals and call earlier
    helpers — and the page's render body may call them.  These are
    exactly the units the render memo (:mod:`repro.eval.memo`) and the
    update-surviving incremental engine (:mod:`repro.incremental`)
    operate on, so properties quantifying over live editing sessions
    (memoized ≡ unmemoized, entries survive UPDATE) draw from here.
    Still call-graph-acyclic and terminating by construction.
    """
    from ..core.defs import FunDef

    globals_ = []
    count = draw(st.integers(1, max_globals))
    for index in range(count):
        g_type = draw(function_free_types(1))
        init = draw(values_of(g_type))
        globals_.append(GlobalDef("g{}".format(index), g_type, init))
    partial_code = Code(globals_)

    functions = []
    for index in range(draw(st.integers(1, max_functions))):
        param_type = draw(st.sampled_from((NUMBER, STRING, UNIT)))
        result_type = draw(st.sampled_from((NUMBER, STRING, UNIT)))
        param = ast.fresh_name("p")
        body = draw(
            expressions_of(
                partial_code,  # earlier helpers are callable (no cycles)
                {param: param_type},
                result_type,
                RENDER,
                body_depth - 1,
            )
        )
        definition = FunDef(
            "r{}".format(index),
            FunType(param_type, result_type, RENDER),
            ast.Lam(param, param_type, body, RENDER),
        )
        functions.append(definition)
        partial_code = Code(globals_ + functions)

    init_body = draw(
        expressions_of(partial_code, {}, UNIT, STATE, body_depth)
    )
    render_body = draw(
        expressions_of(partial_code, {}, UNIT, RENDER, body_depth)
    )
    page = PageDef(
        "start",
        UNIT,
        ast.Lam(ast.fresh_name("a"), UNIT, init_body, STATE),
        ast.Lam(ast.fresh_name("a"), UNIT, render_body, RENDER),
    )
    return Code(globals_ + functions + [page])


@st.composite
def edited_codes(draw, code, body_depth=2):
    """Strategy for one random well-typed *edit* of ``code``.

    Models what a programmer's keystroke commit does to the program: it
    replaces one definition — a global's initial value, one helper
    function's body (same signature), or the start page's render body —
    and leaves everything else alone.  The result is well-typed by
    construction, so the UPDATE transition accepts it.
    """
    from ..core.defs import FunDef

    # ``with_def`` moves a replaced definition to the end of the table,
    # so sort by generation name (r0 < r1 < …) — that order is the
    # acyclic one and it is stable across any sequence of edits.
    helpers = sorted(
        (d for d in code.functions() if not d.name.startswith("$")),
        key=lambda d: (len(d.name), d.name),
    )
    choices = ["global", "render"] + (["function"] if helpers else [])
    choice = draw(st.sampled_from(choices))

    if choice == "global":
        target = draw(st.sampled_from(code.globals()))
        new_init = draw(values_of(target.type))
        return code.with_def(
            GlobalDef(target.name, target.type, new_init)
        )

    if choice == "function":
        index = draw(st.integers(0, len(helpers) - 1))
        target = helpers[index]
        # Only earlier helpers stay callable from the new body, keeping
        # the call graph acyclic exactly as generation did.
        earlier = Code(
            list(code.globals()) + helpers[:index]
        )
        param = ast.fresh_name("p")
        body = draw(
            expressions_of(
                earlier,
                {param: target.type.param},
                target.type.result,
                target.type.effect,
                body_depth,
            )
        )
        return code.with_def(
            FunDef(
                target.name,
                target.type,
                ast.Lam(param, target.type.param, body, target.type.effect),
            )
        )

    page = code.page("start")
    render_body = draw(
        expressions_of(code, {}, UNIT, RENDER, body_depth)
    )
    return code.with_def(
        PageDef(
            page.name,
            page.arg_type,
            page.init,
            ast.Lam(ast.fresh_name("a"), UNIT, render_body, RENDER),
        )
    )


@st.composite
def typed_expressions(draw, effect=PURE, depth=3):
    """Strategy for ``(code, expr, type)`` triples under ``effect``."""
    code = draw(programs(body_depth=1))
    type_ = draw(st.sampled_from((NUMBER, STRING, UNIT)))
    expr = draw(expressions_of(code, {}, type_, effect, depth))
    return code, expr, type_
