"""Executable preservation (Section 4.3).

"All small evaluation steps preserve the type of the evaluated expression
(...) and leave the store and the queue well typed."

:func:`check_preserving_run` reduces an expression with the *faithful*
small-step machine and, after every single step, re-types the expression,
the store and the queue.  With subsumption folded into the algorithmic
checker, preservation means the stepped type is a *subtype* of the
original (e.g. taking an ``if`` branch can sharpen a function's effect
from ``s`` to ``p``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.effects import PURE, RENDER, STATE
from ..core.errors import ReproError, TypeProblem
from ..core.types import is_subtype
from ..eval.machine import SmallStep
from ..typing.checker import Checker
from ..typing.context import TypeEnv
from ..typing.state import queue_problems, store_problems


class PreservationViolation(ReproError):
    """A small step changed the type — the §4.3 theorem would be false."""


@dataclass
class PreservationReport:
    """Evidence from one checked run."""

    steps: int = 0
    initial_type: object = None
    final_value: object = None
    types_seen: list = field(default_factory=list)


def check_preserving_run(
    code, expr, mode, store, queue=None, box=None, natives=None,
    max_steps=20_000,
):
    """Reduce ``expr`` under →µ*, re-typing after every step.

    Returns a :class:`PreservationReport`; raises
    :class:`PreservationViolation` on the first type change, or
    :class:`TypeProblem` if a step made the store/queue ill-typed.
    """
    machine = SmallStep(code, natives=natives or _empty_natives())
    checker = Checker(code, natives)
    env = TypeEnv.empty()
    current_type = checker.check(expr, mode, env)
    report = PreservationReport(initial_type=current_type)
    report.types_seen.append(current_type)

    while not expr.is_value():
        if report.steps >= max_steps:
            raise ReproError(
                "preservation run exceeded {} steps".format(max_steps)
            )
        expr = machine.step(expr, mode, store, queue, box)
        report.steps += 1
        try:
            stepped_type = checker.check(expr, mode, env)
        except TypeProblem as problem:
            raise PreservationViolation(
                "after step {} the expression no longer types: {}".format(
                    report.steps, problem
                )
            )
        if not is_subtype(stepped_type, current_type):
            raise PreservationViolation(
                "step {} changed the type: {} is not a subtype of "
                "{}".format(report.steps, stepped_type, current_type)
            )
        current_type = stepped_type
        report.types_seen.append(stepped_type)
        # "...and leave the store and the queue well typed."
        store_issues = store_problems(code, store, natives)
        if store_issues:
            raise PreservationViolation(
                "step {} left the store ill-typed: {}".format(
                    report.steps, store_issues[0]
                )
            )
        if queue is not None:
            queue_issues = queue_problems(code, queue, natives)
            if queue_issues:
                raise PreservationViolation(
                    "step {} left the queue ill-typed: {}".format(
                        report.steps, queue_issues[0]
                    )
                )
    report.final_value = expr
    return report


def _empty_natives():
    from ..eval.natives import EMPTY_NATIVES

    return EMPTY_NATIVES
