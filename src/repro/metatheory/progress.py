"""Executable progress (Section 4.3).

"Any expression e that is not a value and that types as C; Γ ⊢µ e : τ
... can take a step."  :func:`classify` decides which of the paper's
cases an expression is in; :func:`check_progress_run` asserts that a
well-typed expression never lands in ``stuck`` — modulo the documented
partial primitives (division by zero etc.), which surface as ``fault``
and are the standard caveat real languages attach to progress.
"""

from __future__ import annotations

from ..core.errors import EvalError, FuelExhausted, ReproError, StuckExpression
from ..eval.machine import SmallStep

#: The possible classifications of one expression state.
VALUE = "value"
STEPS = "steps"
STUCK = "stuck"
FAULT = "fault"


class ProgressViolation(ReproError):
    """A well-typed non-value admitted no step — progress would be false."""


def classify(code, expr, mode, store, queue=None, box=None, natives=None):
    """Which progress case is ``expr`` in right now?

    Probes one small step without keeping its result observable effects…
    which is impossible for effectful redexes, so callers that need a
    pristine state should pass copies (the tests do).
    """
    if expr.is_value():
        return VALUE
    machine = SmallStep(code, natives=natives or _empty_natives())
    try:
        machine.step(expr, mode, store, queue, box)
    except StuckExpression:
        return STUCK
    except FuelExhausted:
        return STEPS
    except EvalError:
        return FAULT
    return STEPS


def check_progress_run(
    code, expr, mode, store, queue=None, box=None, natives=None,
    max_steps=20_000,
):
    """Reduce to a value, asserting a step exists at every point.

    Returns ``("value", v)`` on normal termination or ``("fault", exc)``
    when a partial primitive trapped (a *defined* runtime failure, not a
    progress violation).  Raises :class:`ProgressViolation` on stuckness.
    """
    machine = SmallStep(code, natives=natives or _empty_natives())
    steps = 0
    while not expr.is_value():
        if steps >= max_steps:
            raise ReproError(
                "progress run exceeded {} steps".format(max_steps)
            )
        try:
            expr = machine.step(expr, mode, store, queue, box)
        except StuckExpression as stuck:
            raise ProgressViolation(
                "well-typed expression is stuck after {} steps: {}".format(
                    steps, stuck
                )
            )
        except EvalError as fault:
            return FAULT, fault
        steps += 1
    return VALUE, expr


def _empty_natives():
    from ..eval.natives import EMPTY_NATIVES

    return EMPTY_NATIVES
