"""Runtime invariants of the system model (Section 4.2).

These are the properties the paper states in prose around Fig. 9; the
test-suite asserts them after *every* transition of scripted scenarios:

* the display is either ``⊥`` or a frozen box tree, never anything else;
* a valid display coexists only with an empty queue (every enqueuing
  transition invalidates, so "it is not possible to activate tap handlers
  on a stale display" and conversely a valid display is never stale);
* the store and the page stack contain only *values* of *→-free* shape —
  "neither global variables nor the page stack contain function values
  (we enforce this using the type system), the state contains no code";
* the whole state types under Fig. 11.
"""

from __future__ import annotations

from ..boxes.tree import Box, STALE
from ..core import ast
from ..core.errors import ReproError
from ..typing.state import system_problems


class InvariantViolation(ReproError):
    """A Section 4.2 invariant failed — a bug in the system, not the user."""


def check_invariants(system):
    """Assert every invariant on a :class:`repro.system.transitions.System`.

    Returns the system for chaining; raises :class:`InvariantViolation`.
    """
    state = system.state
    display = state.display

    if display is not STALE and not isinstance(display, Box):
        raise InvariantViolation(
            "display is neither ⊥ nor a box tree: {!r}".format(display)
        )
    if isinstance(display, Box):
        if not state.queue.is_empty():
            raise InvariantViolation(
                "valid display with a non-empty queue — some transition "
                "forgot to invalidate"
            )
        _check_frozen(display)

    for name, value in state.store.items():
        if not value.is_value():
            raise InvariantViolation(
                "store entry '{}' is not a value".format(name)
            )
        if ast.contains_lambda(value):
            raise InvariantViolation(
                "store entry '{}' contains a closure — stale code could "
                "survive updates".format(name)
            )

    for page, value in state.stack.entries():
        if not value.is_value():
            raise InvariantViolation(
                "page-stack argument of '{}' is not a value".format(page)
            )
        if ast.contains_lambda(value):
            raise InvariantViolation(
                "page-stack argument of '{}' contains a closure".format(page)
            )

    problems = system_problems(state, system.natives)
    if problems:
        raise InvariantViolation(
            "state fails Fig. 11 typing: {}".format(problems[0])
        )
    return system


def _check_frozen(box):
    if not box._frozen:
        raise InvariantViolation(
            "displayed box tree is not frozen — user code could mutate "
            "the view"
        )
    for child in box.children():
        _check_frozen(child)


def no_stale_code(system):
    """The post-UPDATE guarantee: nothing outside ``C`` contains code.

    Checks store, stack and queue for lambdas.  (The display is ``⊥``
    right after UPDATE; once re-rendered it legitimately holds handler
    closures — compiled from the *current* code.)
    """
    state = system.state
    for name, value in state.store.items():
        if ast.contains_lambda(value):
            return False
    for _page, value in state.stack.entries():
        if ast.contains_lambda(value):
            return False
    from ..system.events import ExecEvent, PushEvent

    for event in state.queue.events():
        if isinstance(event, ExecEvent) and ast.contains_lambda(event.thunk):
            return False
        if isinstance(event, PushEvent) and ast.contains_lambda(event.arg):
            return False
    return True
