"""``repro.obs`` — structured tracing, metrics and profiling.

Zero-dependency observability for the live runtime: nestable spans,
counters/gauges, pluggable sinks, and a shared wall-clock helper.  See
``docs/OBSERVABILITY.md`` for the span model and the metric catalog, and
note that everything here sits *outside* the formal semantics — an
instrumented run and an uninstrumented run are observably identical.
"""

from .sinks import (
    InMemorySink,
    JsonlSink,
    Sink,
    TextSink,
    format_metric_table,
    format_span_tree,
)
from .trace import (
    CATALOG,
    NULL_TRACER,
    NullTracer,
    Span,
    Stopwatch,
    clock,
)

from .._compat import deprecated_facade

# ``repro.obs.Tracer`` still works, with a DeprecationWarning — the
# supported spelling is ``from repro.api import Tracer``.
__getattr__ = deprecated_facade(
    __name__, {"Tracer": ("repro.obs.trace", "Tracer")}
)

__all__ = [
    "CATALOG",
    "InMemorySink",
    "JsonlSink",
    "NULL_TRACER",
    "NullTracer",
    "Sink",
    "Span",
    "Stopwatch",
    "TextSink",
    "Tracer",
    "clock",
    "format_metric_table",
    "format_span_tree",
]
