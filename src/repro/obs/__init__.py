"""``repro.obs`` — structured tracing, metrics and profiling.

Zero-dependency observability for the live runtime: nestable spans,
counters/gauges, pluggable sinks, and a shared wall-clock helper.  See
``docs/OBSERVABILITY.md`` for the span model and the metric catalog, and
note that everything here sits *outside* the formal semantics — an
instrumented run and an uninstrumented run are observably identical.
"""

from .histo import (
    BUCKET_BOUNDS,
    BUCKET_SCHEMA,
    NULL_HISTOGRAM,
    Histogram,
    NullHistogram,
    percentile,
)
from .metrics import (
    CONTENT_TYPE as METRICS_CONTENT_TYPE,
    delta_histogram,
    histograms_from_families,
    metric_name,
    parse_prometheus,
    render_prometheus,
)
from .sinks import (
    InMemorySink,
    JsonlSink,
    Sink,
    SpanRecord,
    TextSink,
    filter_trace,
    format_metric_table,
    format_span_tree,
    spans_from_dicts,
)
from .trace import (
    CATALOG,
    GAUGES,
    NULL_TRACER,
    NullTracer,
    Span,
    Stopwatch,
    clock,
)

from .._compat import deprecated_facade

# ``repro.obs.Tracer`` still works, with a DeprecationWarning — the
# supported spelling is ``from repro.api import Tracer``.
__getattr__ = deprecated_facade(
    __name__, {"Tracer": ("repro.obs.trace", "Tracer")}
)

__all__ = [
    "BUCKET_BOUNDS",
    "BUCKET_SCHEMA",
    "CATALOG",
    "GAUGES",
    "Histogram",
    "InMemorySink",
    "JsonlSink",
    "METRICS_CONTENT_TYPE",
    "NULL_HISTOGRAM",
    "NULL_TRACER",
    "NullHistogram",
    "NullTracer",
    "Sink",
    "Span",
    "SpanRecord",
    "Stopwatch",
    "TextSink",
    "Tracer",
    "clock",
    "delta_histogram",
    "filter_trace",
    "format_metric_table",
    "format_span_tree",
    "histograms_from_families",
    "metric_name",
    "parse_prometheus",
    "percentile",
    "render_prometheus",
    "spans_from_dicts",
]
