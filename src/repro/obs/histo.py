"""Mergeable latency histograms (``repro.obs.histo``).

The cluster's percentile substrate: a :class:`Histogram` is a fixed set
of **log-spaced buckets** shared by every instance in the repository, so
two histograms recorded in different processes merge **bucket-wise**
(counts add; no resampling, no information loss beyond the bucket
resolution both sides already had).  That property is what lets the
cluster front answer "p95 render latency across the fleet" exactly as
if one process had observed every sample.

Design points:

* **Fixed layout.**  Bucket upper bounds grow by ``2 ** 0.25`` (~19% per
  bucket) from 1 microsecond to ~2 minutes, plus an overflow bucket.
  Every histogram everywhere shares :data:`BUCKET_BOUNDS`, stamped into
  serialized form as :data:`BUCKET_SCHEMA` so a merge across versions
  can refuse loudly instead of mis-adding.
* **Lock-free fast path.**  :meth:`Histogram.observe` is a bisect plus
  two integer adds — no lock.  Under the GIL a concurrent increment can
  very occasionally be lost (a read-modify-write race), which trades a
  strictly bounded undercount for never stalling a request thread; the
  merge/quantile math never depends on cross-field consistency.
* **Quantiles with a known error bound.**  :meth:`Histogram.quantile`
  interpolates within the winning bucket, so the estimate is off by at
  most one bucket's width: relative error ≤ ``2**0.25 - 1`` (~19%).

:func:`percentile` is the *exact* companion for callers that hold the
raw samples (the benchmark suite) — one shared implementation instead
of the ad-hoc ``_percentile`` copies the benches used to carry.
"""

from __future__ import annotations

from bisect import bisect_left

#: Per-bucket growth factor: four buckets per doubling (~19% wide).
BUCKET_GROWTH = 2 ** 0.25

#: Smallest bucket upper bound, in seconds.
BUCKET_FLOOR = 1e-6


def _build_bounds():
    bounds = []
    value = BUCKET_FLOOR
    while value <= 128.0:
        bounds.append(value)
        value *= BUCKET_GROWTH
    return tuple(bounds)


#: The one shared bucket layout: upper bounds in seconds, ascending.
#: Values above the last bound land in the overflow (+Inf) bucket.
BUCKET_BOUNDS = _build_bounds()

#: Schema tag stamped into serialized histograms; a merge between
#: different layouts must fail loudly, never add misaligned buckets.
BUCKET_SCHEMA = "log2q4:{:g}:{}".format(BUCKET_FLOOR, len(BUCKET_BOUNDS))


class Histogram:
    """Counts of observations in fixed log-spaced latency buckets.

    ``counts[i]`` holds observations ``v`` with
    ``BUCKET_BOUNDS[i-1] < v <= BUCKET_BOUNDS[i]`` (the first bucket has
    no lower bound); ``counts[-1]`` is the overflow bucket.  ``count``
    and ``total`` (the sum of observed seconds) ride along for rates
    and means.
    """

    __slots__ = ("counts", "count", "total")

    def __init__(self):
        self.counts = [0] * (len(BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, seconds):
        """Record one observation (seconds).  Lock-free; see module doc."""
        self.counts[bisect_left(BUCKET_BOUNDS, seconds)] += 1
        self.count += 1
        self.total += seconds

    # -- queries ------------------------------------------------------------

    def quantile(self, fraction):
        """The latency at ``fraction`` (0..1) of observations, estimated.

        Linear interpolation within the winning bucket; relative error
        is bounded by the bucket width (~19%).  Returns 0.0 when empty.
        """
        if self.count == 0:
            return 0.0
        if fraction <= 0:
            fraction = 0.0
        target = fraction * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= target:
                lower = BUCKET_BOUNDS[index - 1] if index else 0.0
                if index >= len(BUCKET_BOUNDS):
                    # Overflow bucket has no upper bound to interpolate
                    # toward; answer its lower edge.
                    return BUCKET_BOUNDS[-1]
                upper = BUCKET_BOUNDS[index]
                within = (target - cumulative) / bucket_count
                return lower + (upper - lower) * within
            cumulative += bucket_count
        return BUCKET_BOUNDS[-1]

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def snapshot(self):
        """A point-in-time copy safe to merge/serialize while traffic
        keeps observing into ``self``."""
        copy = Histogram()
        copy.counts = list(self.counts)
        copy.count = self.count
        copy.total = self.total
        return copy

    # -- merging ------------------------------------------------------------

    def merge(self, other):
        """Bucket-wise add ``other`` into ``self`` (in place); returns
        ``self``.  Commutative and associative over bucket counts — the
        aggregation the cluster front relies on."""
        counts = self.counts
        for index, bucket_count in enumerate(other.counts):
            counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        return self

    @classmethod
    def merged(cls, histograms):
        """A fresh histogram holding the bucket-wise sum of them all."""
        merged = cls()
        for histogram in histograms:
            merged.merge(histogram)
        return merged

    # -- serialization ------------------------------------------------------

    def to_dict(self):
        """JSON-clean form carried over the cluster's frame transport."""
        return {
            "schema": BUCKET_SCHEMA,
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
        }

    @classmethod
    def from_dict(cls, payload):
        """Rebuild from :meth:`to_dict` output; raises ``ValueError`` on
        a foreign bucket layout (never mis-merge across schemas)."""
        if payload.get("schema") != BUCKET_SCHEMA:
            raise ValueError(
                "histogram schema {!r} does not match {!r}".format(
                    payload.get("schema"), BUCKET_SCHEMA
                )
            )
        counts = payload.get("counts")
        if (not isinstance(counts, list)
                or len(counts) != len(BUCKET_BOUNDS) + 1):
            raise ValueError("histogram counts have the wrong arity")
        histogram = cls()
        histogram.counts = [int(value) for value in counts]
        histogram.count = int(payload.get("count", sum(histogram.counts)))
        histogram.total = float(payload.get("total", 0.0))
        return histogram

    def __eq__(self, other):
        if not isinstance(other, Histogram):
            return NotImplemented
        return (self.counts == other.counts
                and self.count == other.count
                and self.total == other.total)

    def __repr__(self):
        return "Histogram(count={}, p50={:.6f}, p95={:.6f})".format(
            self.count, self.quantile(0.5), self.quantile(0.95)
        )


class NullHistogram:
    """The shared do-nothing histogram handed out by ``NullTracer``."""

    __slots__ = ()

    counts = ()
    count = 0
    total = 0.0
    mean = 0.0

    def observe(self, _seconds):
        pass

    def quantile(self, _fraction):
        return 0.0


NULL_HISTOGRAM = NullHistogram()


def percentile(sorted_values, fraction):
    """Exact percentile over pre-sorted raw samples.

    The one shared implementation behind every benchmark's p50/p95
    (nearest-rank on the sorted list) — histograms answer the same
    question when only bucket counts survived a process boundary.
    """
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1))
    )
    return sorted_values[index]
