"""Prometheus text exposition + parsing (``repro.obs.metrics``).

One rendering path for the ``GET /metrics`` endpoint on both server
shapes (single host and cluster front), and the matching parser that
``repro top`` uses to read the endpoint back.  Stdlib only.

Conventions:

* every metric is prefixed ``repro_`` and dots become underscores
  (``cluster.memo.shared_hits`` → ``repro_cluster_memo_shared_hits``);
* **counters** get the ``_total`` suffix and are *summed* across
  workers by the cluster front before exposition;
* **gauges** are never summed: a cluster front exposes them as one
  labeled series per worker (``repro_..._ratio{worker="3"} 0.8``) so a
  dashboard sees the fleet's spread instead of a nonsense sum;
* **histograms** (:class:`~repro.obs.histo.Histogram`) are rendered as
  cumulative ``_bucket{le="..."}`` samples plus ``_sum``/``_count``.
  Zero-delta buckets are omitted (legal in the exposition format:
  buckets are cumulative) which keeps the payload proportional to the
  *occupied* buckets; :func:`histograms_from_families` reconstructs the
  exact bucket counts from the deltas, so a scrape round-trips
  losslessly.
"""

from __future__ import annotations

import re

from .histo import BUCKET_BOUNDS, Histogram

#: Exposition content type (the 0.0.4 text format every scraper speaks).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")


def metric_name(name, suffix=""):
    """The Prometheus spelling of a catalog name."""
    flat = name.replace(".", "_").replace("-", "_")
    return "repro_" + flat + suffix


def _format_value(value):
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _format_bound(bound):
    return "{:.9g}".format(bound)


def render_prometheus(counters=None, gauges=None, histograms=None,
                      label_key="worker"):
    """The full ``/metrics`` document.

    ``counters`` maps catalog names to numbers.  ``gauges`` maps names
    to either a number (single process) or a ``{label: number}`` dict
    (one labeled sample per worker).  ``histograms`` maps names to
    :class:`~repro.obs.histo.Histogram` snapshots; histogram metric
    names get a ``_latency_seconds`` suffix (every histogram in the
    catalog measures latency).
    """
    lines = []
    for name in sorted(counters or {}):
        value = counters[name]
        if not isinstance(value, (int, float)):
            continue
        full = metric_name(name, "_total")
        lines.append("# TYPE {} counter".format(full))
        lines.append("{} {}".format(full, _format_value(value)))
    for name in sorted(gauges or {}):
        value = gauges[name]
        full = metric_name(name)
        if isinstance(value, dict):
            samples = [
                ('{}{{{}="{}"}}'.format(full, label_key, label), item)
                for label, item in sorted(
                    value.items(), key=lambda pair: str(pair[0])
                )
                if isinstance(item, (int, float))
            ]
            if not samples:
                continue
            lines.append("# TYPE {} gauge".format(full))
            for sample, item in samples:
                lines.append("{} {}".format(sample, _format_value(item)))
        elif isinstance(value, (int, float)):
            lines.append("# TYPE {} gauge".format(full))
            lines.append("{} {}".format(full, _format_value(value)))
    for name in sorted(histograms or {}):
        histogram = histograms[name]
        full = metric_name(name, "_latency_seconds")
        lines.append("# TYPE {} histogram".format(full))
        cumulative = 0
        for index, bucket_count in enumerate(histogram.counts):
            if not bucket_count:
                continue  # cumulative buckets may be sparse
            cumulative += bucket_count
            bound = ("+Inf" if index >= len(BUCKET_BOUNDS)
                     else _format_bound(BUCKET_BOUNDS[index]))
            lines.append('{}_bucket{{le="{}"}} {}'.format(
                full, bound, cumulative
            ))
        lines.append('{}_bucket{{le="+Inf"}} {}'.format(
            full, histogram.count
        ))
        lines.append("{}_sum {}".format(
            full, _format_value(float(histogram.total))
        ))
        lines.append("{}_count {}".format(full, histogram.count))
    return "\n".join(lines) + "\n"


_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"')


def parse_prometheus(text):
    """Parse an exposition document into
    ``{metric_name: [(labels_dict, value), ...]}``.

    Tolerant by design: comment/TYPE lines and malformed lines are
    skipped — ``repro top`` must keep rendering through a torn scrape.
    """
    families = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            continue
        labels = {
            item.group("key"): item.group("value")
            for item in _LABEL.finditer(match.group("labels") or "")
        }
        raw = match.group("value")
        try:
            value = float(raw)
        except ValueError:
            continue
        families.setdefault(match.group("name"), []).append((labels, value))
    return families


def _bound_index(le):
    """The bucket index whose upper bound prints as ``le`` (else None)."""
    if le == "+Inf":
        return len(BUCKET_BOUNDS)
    try:
        target = float(le)
    except ValueError:
        return None
    for index, bound in enumerate(BUCKET_BOUNDS):
        if abs(bound - target) <= bound * 1e-6:
            return index
    return None


def histograms_from_families(families):
    """Rebuild :class:`Histogram` objects from parsed ``_bucket`` /
    ``_sum`` / ``_count`` sample families.

    Returns ``{base_metric_name: Histogram}`` keyed by the full
    Prometheus family name (without the ``_bucket`` suffix).  Buckets
    the exposition omitted had zero delta, so the reconstruction is
    exact as long as the scraped process shares this module's bucket
    layout.
    """
    histograms = {}
    for name, samples in families.items():
        if not name.endswith("_bucket"):
            continue
        base = name[: -len("_bucket")]
        ordered = []
        for labels, value in samples:
            index = _bound_index(labels.get("le", ""))
            if index is not None:
                ordered.append((index, value))
        ordered.sort()
        histogram = Histogram()
        previous = 0.0
        for index, cumulative in ordered:
            delta = int(round(cumulative - previous))
            if delta > 0:
                if index >= len(histogram.counts):
                    index = len(histogram.counts) - 1
                histogram.counts[index] += delta
            previous = cumulative
        histogram.count = sum(histogram.counts)
        for labels, value in families.get(base + "_sum", ()):
            histogram.total = value
        for labels, value in families.get(base + "_count", ()):
            histogram.count = int(value)
        histograms[base] = histogram
    return histograms


def delta_histogram(current, previous):
    """Bucket-wise ``current - previous`` as a fresh histogram — the
    windowed view ``repro top`` shows (p50/p95 of the last interval,
    not of the whole process lifetime).  Negative deltas (a restarted
    process) clamp to the current sample."""
    if previous is None:
        return current.snapshot()
    delta = Histogram()
    for index, bucket_count in enumerate(current.counts):
        drop = previous.counts[index] if index < len(previous.counts) else 0
        delta.counts[index] = max(0, bucket_count - drop)
    if current.count < previous.count:
        return current.snapshot()
    delta.count = sum(delta.counts)
    delta.total = max(0.0, current.total - previous.total)
    return delta
