"""Span/metric sinks and the human-readable trace report.

A sink is anything with ``on_span(span)``; the tracer calls it once per
*finished* span, innermost first (children finish before their parent).
Three implementations cover the repository's needs:

* :class:`InMemorySink` — keeps spans in a list, queryable by tests and
  by :meth:`repro.system.runtime.Runtime.spans`;
* :class:`JsonlSink` — one JSON object per line (spans as they finish,
  plus explicit metric records), for offline analysis and the benchmark
  trajectory file ``BENCH_obs.json``;
* :class:`TextSink` — collects spans and renders the flame-style tree +
  metric table the ``repro trace`` subcommand prints.

The formatting helpers (:func:`format_span_tree`,
:func:`format_metric_table`) are module functions so the CLI can use
them on any collection of spans.
"""

from __future__ import annotations

import json
import threading


class Sink:
    """Base class — documents the protocol; subclassing is optional."""

    def on_span(self, span):  # pragma: no cover - interface
        raise NotImplementedError


class InMemorySink(Sink):
    """Collect finished spans in memory (bounded; oldest dropped first)."""

    def __init__(self, max_spans=100_000):
        self.spans = []
        self.max_spans = max_spans
        self.dropped = 0

    def on_span(self, span):
        if len(self.spans) >= self.max_spans:
            # Keep the newest spans: a long session should still be able
            # to explain its most recent edit cycle.
            del self.spans[: self.max_spans // 2]
            self.dropped += self.max_spans // 2
        self.spans.append(span)

    def named(self, name):
        """All finished spans called ``name``, in finish order."""
        return [span for span in self.spans if span.name == name]

    def first(self, name):
        """The first span called ``name``, or ``None``."""
        for span in self.spans:
            if span.name == name:
                return span
        return None

    def children_of(self, span_id):
        return [span for span in self.spans if span.parent_id == span_id]

    def roots(self):
        """Spans with no parent (top-level transitions), in start order."""
        parentless = [span for span in self.spans if span.parent_id is None]
        return sorted(parentless, key=lambda span: span.start)

    def clear(self):
        self.spans = []
        self.dropped = 0

    def __len__(self):
        return len(self.spans)


class JsonlSink(Sink):
    """Stream spans (and explicit metric records) as JSON lines.

    ``target`` is a path (opened lazily, ``w`` mode) or any object with
    ``write``.  Each line round-trips through ``json.loads``; consumers
    dispatch on the ``type`` field (``"span"`` / ``"metrics"`` /
    ``"record"``).

    Writes are **thread-safe**: each record is serialized fully and
    written with a single ``write()`` call under a lock, so concurrent
    worker spans streaming into one shared ``--trace-jsonl`` file can
    never interleave half-lines — every line in the file parses.
    """

    def __init__(self, target):
        self._path = target if isinstance(target, str) else None
        self._handle = None if isinstance(target, str) else target
        self._lock = threading.Lock()

    def _out(self):
        if self._handle is None:
            self._handle = open(self._path, "w")
        return self._handle

    def _write(self, payload):
        line = json.dumps(payload, sort_keys=True) + "\n"
        with self._lock:
            self._out().write(line)

    def on_span(self, span):
        self._write(span.to_dict())

    def write_metrics(self, metrics):
        """Emit the final counter/gauge snapshot as one line."""
        self._write({"type": "metrics", "metrics": dict(metrics)})

    def write_record(self, name, **fields):
        """Emit an arbitrary named record (benchmark results use this)."""
        payload = {"type": "record", "name": name}
        payload.update(fields)
        self._write(payload)

    def close(self):
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                if self._path is not None:
                    self._handle.close()
                    self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, _exc_type, _exc, _tb):
        self.close()
        return False


class SpanRecord:
    """A span rebuilt from its :meth:`~repro.obs.trace.Span.to_dict`
    form — the shape spans take crossing a process boundary.

    Quacks enough like :class:`~repro.obs.trace.Span` for
    :func:`format_span_tree` and the stitching code (``name`` /
    ``span_id`` / ``parent_id`` / ``start`` / ``duration`` / ``attrs``),
    so a cross-process trace renders with the same code path a local
    one does.
    """

    __slots__ = ("name", "span_id", "parent_id", "start", "duration",
                 "attrs")

    def __init__(self, name, span_id, parent_id, start, duration, attrs):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.duration = duration
        self.attrs = attrs

    finished = True

    @classmethod
    def from_dict(cls, payload):
        return cls(
            payload.get("name", "?"),
            payload.get("span_id"),
            payload.get("parent_id"),
            payload.get("start", 0.0),
            payload.get("duration", 0.0),
            dict(payload.get("attrs") or {}),
        )

    def to_dict(self):
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }

    def __repr__(self):
        return "SpanRecord({}#{})".format(self.name, self.span_id)


def spans_from_dicts(payloads):
    """Rebuild a span collection from serialized span dicts, skipping
    anything that is not a span record."""
    return [
        SpanRecord.from_dict(payload)
        for payload in payloads
        if isinstance(payload, dict) and payload.get("span_id") is not None
    ]


def filter_trace(spans, trace_id):
    """The spans belonging to one distributed trace.

    A trace member is a span whose own ``attrs`` carry the
    ``trace_id`` (the front's op span, a worker's ``rpc.*`` span) or
    any descendant of one within the collection — descendants inherit
    membership through parent links, so the ordinary ``op.*`` spans a
    host opens under a worker's rpc span need no stamp of their own.
    Returned in start order (comparable within each process).
    """
    spans = list(spans)
    children = {}
    roots = []
    for span in spans:
        if span.attrs.get("trace_id") == trace_id:
            roots.append(span)
        else:
            children.setdefault(span.parent_id, []).append(span)
    selected = []
    seen = set()
    stack = list(roots)
    while stack:
        span = stack.pop()
        if id(span) in seen:
            continue
        seen.add(id(span))
        selected.append(span)
        stack.extend(children.get(span.span_id, ()))
    return sorted(selected, key=lambda span: span.start)


# ---------------------------------------------------------------------------
# Human-readable rendering
# ---------------------------------------------------------------------------


def _format_attrs(span):
    shown = {
        key: value for key, value in span.attrs.items() if value != ""
    }
    if not shown:
        return ""
    inner = ", ".join(
        "{}={}".format(key, value) for key, value in sorted(shown.items())
    )
    return " ({})".format(inner)


def format_span_tree(spans, unit="ms"):
    """Render finished spans as an indented tree with durations.

    ``spans`` is any iterable of :class:`~repro.obs.trace.Span`; parent
    links are resolved within the collection, so partial collections
    (e.g. only the last edit cycle) render fine — orphans become roots.
    """
    spans = list(spans)
    if not spans:
        return "(no spans recorded)"
    ids = {span.span_id for span in spans}
    children = {}
    roots = []
    for span in spans:
        if span.parent_id in ids:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)

    labeled = []  # (label, span) rows in depth-first order

    def walk(span, depth):
        labeled.append(
            ("{}{}{}".format("  " * depth, span.name, _format_attrs(span)),
             span)
        )
        for child in sorted(
            children.get(span.span_id, ()), key=lambda s: s.start
        ):
            walk(child, depth + 1)

    for root in sorted(roots, key=lambda span: span.start):
        walk(root, 0)
    scale = 1000.0 if unit == "ms" else 1.0
    width = max(len(label) for label, _ in labeled)
    return "\n".join(
        "{}  {:>10.3f} {}".format(label.ljust(width),
                                  span.duration * scale, unit)
        for label, span in labeled
    )


def format_metric_table(metrics):
    """Render a counter/gauge dict as an aligned two-column table."""
    if not metrics:
        return "(no metrics recorded)"
    width = max(len(name) for name in metrics)
    lines = ["{}  {}".format("metric".ljust(width), "value")]
    for name in sorted(metrics):
        value = metrics[name]
        if isinstance(value, float):
            value = "{:.6f}".format(value)
        lines.append("{}  {}".format(name.ljust(width), value))
    return "\n".join(lines)


class TextSink(InMemorySink):
    """An in-memory sink that renders the full human-readable report."""

    def report(self, metrics=None, unit="ms"):
        parts = ["span tree:", format_span_tree(self.spans, unit=unit)]
        if metrics is not None:
            parts += ["", "metrics:", format_metric_table(metrics)]
        return "\n".join(parts)
