"""Span/metric sinks and the human-readable trace report.

A sink is anything with ``on_span(span)``; the tracer calls it once per
*finished* span, innermost first (children finish before their parent).
Three implementations cover the repository's needs:

* :class:`InMemorySink` — keeps spans in a list, queryable by tests and
  by :meth:`repro.system.runtime.Runtime.spans`;
* :class:`JsonlSink` — one JSON object per line (spans as they finish,
  plus explicit metric records), for offline analysis and the benchmark
  trajectory file ``BENCH_obs.json``;
* :class:`TextSink` — collects spans and renders the flame-style tree +
  metric table the ``repro trace`` subcommand prints.

The formatting helpers (:func:`format_span_tree`,
:func:`format_metric_table`) are module functions so the CLI can use
them on any collection of spans.
"""

from __future__ import annotations

import json


class Sink:
    """Base class — documents the protocol; subclassing is optional."""

    def on_span(self, span):  # pragma: no cover - interface
        raise NotImplementedError


class InMemorySink(Sink):
    """Collect finished spans in memory (bounded; oldest dropped first)."""

    def __init__(self, max_spans=100_000):
        self.spans = []
        self.max_spans = max_spans
        self.dropped = 0

    def on_span(self, span):
        if len(self.spans) >= self.max_spans:
            # Keep the newest spans: a long session should still be able
            # to explain its most recent edit cycle.
            del self.spans[: self.max_spans // 2]
            self.dropped += self.max_spans // 2
        self.spans.append(span)

    def named(self, name):
        """All finished spans called ``name``, in finish order."""
        return [span for span in self.spans if span.name == name]

    def first(self, name):
        """The first span called ``name``, or ``None``."""
        for span in self.spans:
            if span.name == name:
                return span
        return None

    def children_of(self, span_id):
        return [span for span in self.spans if span.parent_id == span_id]

    def roots(self):
        """Spans with no parent (top-level transitions), in start order."""
        parentless = [span for span in self.spans if span.parent_id is None]
        return sorted(parentless, key=lambda span: span.start)

    def clear(self):
        self.spans = []
        self.dropped = 0

    def __len__(self):
        return len(self.spans)


class JsonlSink(Sink):
    """Stream spans (and explicit metric records) as JSON lines.

    ``target`` is a path (opened lazily, ``w`` mode) or any object with
    ``write``.  Each line round-trips through ``json.loads``; consumers
    dispatch on the ``type`` field (``"span"`` / ``"metrics"`` /
    ``"record"``).
    """

    def __init__(self, target):
        self._path = target if isinstance(target, str) else None
        self._handle = None if isinstance(target, str) else target

    def _out(self):
        if self._handle is None:
            self._handle = open(self._path, "w")
        return self._handle

    def _write(self, payload):
        out = self._out()
        out.write(json.dumps(payload, sort_keys=True))
        out.write("\n")

    def on_span(self, span):
        self._write(span.to_dict())

    def write_metrics(self, metrics):
        """Emit the final counter/gauge snapshot as one line."""
        self._write({"type": "metrics", "metrics": dict(metrics)})

    def write_record(self, name, **fields):
        """Emit an arbitrary named record (benchmark results use this)."""
        payload = {"type": "record", "name": name}
        payload.update(fields)
        self._write(payload)

    def close(self):
        if self._handle is not None:
            self._handle.flush()
            if self._path is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, _exc_type, _exc, _tb):
        self.close()
        return False


# ---------------------------------------------------------------------------
# Human-readable rendering
# ---------------------------------------------------------------------------


def _format_attrs(span):
    shown = {
        key: value for key, value in span.attrs.items() if value != ""
    }
    if not shown:
        return ""
    inner = ", ".join(
        "{}={}".format(key, value) for key, value in sorted(shown.items())
    )
    return " ({})".format(inner)


def format_span_tree(spans, unit="ms"):
    """Render finished spans as an indented tree with durations.

    ``spans`` is any iterable of :class:`~repro.obs.trace.Span`; parent
    links are resolved within the collection, so partial collections
    (e.g. only the last edit cycle) render fine — orphans become roots.
    """
    spans = list(spans)
    if not spans:
        return "(no spans recorded)"
    ids = {span.span_id for span in spans}
    children = {}
    roots = []
    for span in spans:
        if span.parent_id in ids:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)

    labeled = []  # (label, span) rows in depth-first order

    def walk(span, depth):
        labeled.append(
            ("{}{}{}".format("  " * depth, span.name, _format_attrs(span)),
             span)
        )
        for child in sorted(
            children.get(span.span_id, ()), key=lambda s: s.start
        ):
            walk(child, depth + 1)

    for root in sorted(roots, key=lambda span: span.start):
        walk(root, 0)
    scale = 1000.0 if unit == "ms" else 1.0
    width = max(len(label) for label, _ in labeled)
    return "\n".join(
        "{}  {:>10.3f} {}".format(label.ljust(width),
                                  span.duration * scale, unit)
        for label, span in labeled
    )


def format_metric_table(metrics):
    """Render a counter/gauge dict as an aligned two-column table."""
    if not metrics:
        return "(no metrics recorded)"
    width = max(len(name) for name in metrics)
    lines = ["{}  {}".format("metric".ljust(width), "value")]
    for name in sorted(metrics):
        value = metrics[name]
        if isinstance(value, float):
            value = "{:.6f}".format(value)
        lines.append("{}  {}".format(name.ljust(width), value))
    return "\n".join(lines)


class TextSink(InMemorySink):
    """An in-memory sink that renders the full human-readable report."""

    def report(self, metrics=None, unit="ms"):
        parts = ["span tree:", format_span_tree(self.spans, unit=unit)]
        if metrics is not None:
            parts += ["", "metrics:", format_metric_table(metrics)]
        return "\n".join(parts)
