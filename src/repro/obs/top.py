"""``repro top`` — a live cluster dashboard over ``GET /metrics``.

Pure stdlib and pure text: the dashboard polls the exposition endpoint
(:mod:`repro.obs.metrics`), diffs consecutive scrapes, and redraws one
ANSI screen per interval.  Everything interesting is **windowed** —
req/s from counter deltas, per-op p50/p95 from bucket-wise histogram
deltas — so the numbers describe the last interval, not the process's
lifetime average.

The rendering core (:meth:`TopView.render`) is a pure function of two
scrapes and is tested without any server or terminal; the poll loop
(:func:`run_top`) only adds urllib, sleep and the clear-screen escape.
"""

from __future__ import annotations

import time
import urllib.error
import urllib.request

from .metrics import (
    delta_histogram,
    histograms_from_families,
    parse_prometheus,
)

#: Clear screen + cursor home — the whole "curses" this dashboard needs.
CLEAR = "\x1b[H\x1b[2J"

_HISTO_SUFFIX = "_latency_seconds"


def fetch_metrics(url, timeout=5.0):
    """One scrape: the exposition document at ``url`` as text."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8", "replace")


def _counters(families):
    """Unlabeled ``*_total`` samples as ``{name: value}``."""
    counters = {}
    for name, samples in families.items():
        if not name.endswith("_total"):
            continue
        for labels, value in samples:
            if not labels:
                counters[name] = value
    return counters


def _gauge_series(families, name):
    """``{label_value: value}`` for one (possibly labeled) gauge."""
    series = {}
    for labels, value in families.get(name, ()):
        series[labels.get("worker", "")] = value
    return series


def _display_name(family):
    """``repro_op_render_latency_seconds`` → ``op_render``."""
    name = family
    if name.startswith("repro_"):
        name = name[len("repro_"):]
    if name.endswith(_HISTO_SUFFIX):
        name = name[: -len(_HISTO_SUFFIX)]
    return name


class TopView:
    """Stateful renderer: feed it scrapes, get screens back.

    Holds the previous scrape so every render shows windowed rates and
    percentiles; the first render (nothing to diff against) shows
    since-start values, labeled as such.
    """

    def __init__(self, source=""):
        self.source = source
        self._previous_families = None
        self._previous_histograms = None
        self._previous_at = None

    def render(self, text, now=None):
        """One dashboard screen for one scrape (no ANSI — the caller
        owns the terminal)."""
        now = time.monotonic() if now is None else now
        families = parse_prometheus(text)
        histograms = histograms_from_families(families)
        counters = _counters(families)
        previous = self._previous_families
        windowed = previous is not None
        elapsed = (
            (now - self._previous_at)
            if windowed and self._previous_at is not None else 0.0
        )
        previous_counters = _counters(previous) if windowed else {}
        previous_histograms = self._previous_histograms or {}

        def rate(name):
            value = counters.get(name, 0.0)
            if not windowed or elapsed <= 0:
                return None
            return max(0.0, value - previous_counters.get(name, 0.0)) \
                / elapsed

        lines = []
        title = "repro top"
        if self.source:
            title += " — " + self.source
        window_note = (
            "window {:.1f}s".format(elapsed) if windowed and elapsed > 0
            else "since start"
        )
        lines.append("{}   [{}]".format(title, window_note))

        routed = counters.get("repro_cluster_requests_routed_total")
        summary = []
        if routed is not None:
            routed_rate = rate("repro_cluster_requests_routed_total")
            summary.append(
                "requests: {}{:g} total".format(
                    "{:.1f}/s, ".format(routed_rate)
                    if routed_rate is not None else "",
                    routed,
                )
            )
        hit_rate = self._cache_hit_rate(counters, previous_counters,
                                        windowed)
        if hit_rate is not None:
            summary.append("cache hit rate: {:.1f}%".format(hit_rate * 100))
        breakers = _gauge_series(families, "repro_sessions_open_breakers")
        if breakers:
            total = sum(breakers.values())
            noisy = {w: int(v) for w, v in breakers.items() if v}
            summary.append(
                "open breakers: {:g}{}".format(
                    total, " {}".format(noisy) if noisy else ""
                )
            )
        if summary:
            lines.append("   ".join(summary))
        lines.append("")

        lines.extend(self._op_table(histograms, previous_histograms,
                                    windowed, elapsed))
        worker_lines = self._worker_table(families)
        if worker_lines:
            lines.append("")
            lines.extend(worker_lines)

        self._previous_families = families
        self._previous_histograms = histograms
        self._previous_at = now
        return "\n".join(lines) + "\n"

    def _cache_hit_rate(self, counters, previous_counters, windowed):
        """Shared-cache hit rate (windowed when possible); falls back
        to the single-process memo counters."""
        def delta(name):
            value = counters.get(name)
            if value is None:
                return None
            if windowed:
                return max(0.0, value - previous_counters.get(name, 0.0))
            return value

        gets = delta("repro_cluster_cache_gets_total")
        hits = delta("repro_cluster_cache_hits_total") or 0.0
        if gets is None:
            memo_hits = delta("repro_memo_hits_total")
            memo_misses = delta("repro_memo_misses_total")
            if memo_hits is None or memo_misses is None:
                return None
            gets = memo_hits + memo_misses
            hits = memo_hits
        if gets > 0:
            return max(0.0, min(1.0, hits / gets))
        return None

    def _op_table(self, histograms, previous_histograms, windowed,
                  elapsed):
        rows = []
        for family in sorted(histograms):
            window = delta_histogram(
                histograms[family],
                previous_histograms.get(family) if windowed else None,
            )
            shown = window if window.count else histograms[family]
            if not shown.count:
                continue
            rows.append((
                _display_name(family),
                window.count,
                (window.count / elapsed
                 if windowed and elapsed > 0 else None),
                shown.quantile(0.5) * 1000.0,
                shown.quantile(0.95) * 1000.0,
            ))
        if not rows:
            return ["(no latency histograms yet)"]
        width = max(len(row[0]) for row in rows)
        lines = ["{}  {:>8} {:>8} {:>10} {:>10}".format(
            "op".ljust(width), "count", "rate/s", "p50 ms", "p95 ms"
        )]
        for name, count, per_second, p50, p95 in rows:
            lines.append("{}  {:>8} {:>8} {:>10.3f} {:>10.3f}".format(
                name.ljust(width), count,
                "{:.1f}".format(per_second)
                if per_second is not None else "-",
                p50, p95,
            ))
        return lines

    def _worker_table(self, families):
        up = _gauge_series(families, "repro_cluster_worker_up")
        if not up:
            return []
        respawns = _gauge_series(
            families, "repro_cluster_worker_respawns"
        )
        ping_age = _gauge_series(
            families, "repro_cluster_worker_ping_age_seconds"
        )
        lines = ["{:<8} {:>4} {:>9} {:>10}".format(
            "worker", "up", "respawns", "ping age"
        )]
        for worker in sorted(up, key=lambda w: (len(w), w)):
            age = ping_age.get(worker)
            lines.append("{:<8} {:>4} {:>9} {:>10}".format(
                worker,
                "yes" if up[worker] else "NO",
                "{:g}".format(respawns.get(worker, 0)),
                "{:.1f}s".format(age) if age is not None else "-",
            ))
        return lines


def run_top(url, interval=2.0, iterations=None, out=None, clear=True):
    """The poll loop: scrape, render, redraw, sleep; Ctrl-C exits.

    ``iterations=None`` runs forever; a number runs that many frames
    (what the tests and one-shot inspection use).  Returns 0, or 1 when
    the very first scrape fails (nothing to show at all).
    """
    import sys

    out = sys.stdout if out is None else out
    view = TopView(source=url)
    shown = 0
    while iterations is None or shown < iterations:
        try:
            text = fetch_metrics(url)
        except (urllib.error.URLError, OSError, ValueError) as error:
            if shown == 0:
                print("error: cannot scrape {}: {}".format(url, error),
                      file=out)
                return 1
            # Mid-run blips (a front restarting) keep the last screen.
            time.sleep(interval)
            continue
        screen = view.render(text)
        if clear:
            out.write(CLEAR)
        out.write(screen)
        out.flush()
        shown += 1
        if iterations is None or shown < iterations:
            time.sleep(interval)
    return 0
