"""Tracing and metrics for the live runtime (``repro.obs``).

The paper's pitch is *continuous feedback*: an edit should reach the
display in a blink, and the responsiveness claims of Section 6 are only
meaningful if we can see where every edit-to-display cycle spends its
time.  This module is the measurement substrate:

* :class:`Span` — one timed region (``render``, ``update``, ``fixup``…)
  with wall-clock start/end, free-form attributes and a parent link, so
  finished spans form a tree mirroring the dynamic nesting of the
  transitions that produced them;
* :class:`Tracer` — hands out nestable spans
  (``with tracer.span("render", page=p): ...``) and holds monotonic
  **counters** (``tracer.add("boxes_rendered", n)``) and last-write-wins
  **gauges**; finished spans are fanned out to pluggable sinks
  (:mod:`repro.obs.sinks`);
* :class:`NullTracer` — the default everywhere.  Every method is a
  no-op returning shared singletons, so an uninstrumented run pays about
  one attribute lookup and one call per *transition* (never per
  evaluation step) — tracing sits outside the semantics exactly like the
  Section 5 reuse optimization sits outside the formal model;
* :class:`Stopwatch` — the one shared wall-clock helper; every
  ``wall_seconds`` reported anywhere in the repository (live session,
  baselines, benchmarks) comes from this single code path.

Nothing here imports anything outside the standard library.
"""

from __future__ import annotations

import itertools
import time

from .histo import NULL_HISTOGRAM, Histogram

#: The single clock used for every duration in the repository.
clock = time.perf_counter

#: The metric catalog: counters the instrumented layers maintain.  A
#: :class:`Tracer` pre-registers them at zero so metric tables always
#: show the full catalog (a zero is informative: "memo never fired").
CATALOG = (
    "boxes_rendered",
    "memo_hits",
    "memo_misses",
    "reuse_shared_subtrees",
    "store_entries_deleted",
    "stack_frames_fixed",
    "events_queued",
    "eval_steps",
    "faults_recorded",
    # repro.serve — the multi-session server (docs/SERVER.md).
    "sessions_created",
    "sessions_evicted",
    "sessions_rehydrated",
    "renders_coalesced",
    "bytes_served",
    # repro.resilience — supervision, journaling, chaos
    # (docs/RESILIENCE.md).
    "faults_injected",
    "rollbacks",
    "journal_events",
    "journal_checkpoints",
    "journal_replays",
    "journal_fsyncs",
    "sessions_quarantined",
    # repro.incremental — the update-surviving memo store (docs/PERF.md).
    # (The companion "incremental.update_reuse_ratio" is a gauge, set per
    # post-update render, not a catalog counter.)
    "incremental.memo_evictions",
    "incremental.entries_carried",
    "incremental.update_hits",
    "incremental.update_misses",
    "incremental.replayed_boxes",
    "incremental.html_short_circuits",
    # repro.cluster — sharded workers + the shared memo tier
    # (docs/SERVER.md).  Routing/liveness counters live on the front
    # and supervisor tracers; memo counters on each worker's.
    "cluster.requests_routed",
    "cluster.worker_respawns",
    "cluster.worker_respawn_backoffs",
    "cluster.worker_retries",
    "cluster.tokens_rebalanced",
    "cluster.memo.shared_hits",
    "cluster.memo.remote_hits",
    "cluster.memo.remote_misses",
    "cluster.memo.remote_skips",
    "cluster.memo.remote_errors",
    "cluster.memo.publishes",
    "cluster.memo.publish_errors",
    # repro.provenance — replay, time travel & why-queries
    # (docs/OBSERVABILITY.md).
    "replay.sessions",
    "replay.events",
    "replay.checkpoints_used",
    "replay.divergences",
    "provenance.queries",
    "provenance.events_linked",
    # repro.repair — live repair search (docs/RESILIENCE.md).  The
    # companion latency histograms are "repair.search" (whole-search
    # wall clock) and "repair.first_valid" (time to the first validated
    # candidate).
    "repair.searches",
    "repair.candidates_generated",
    "repair.candidates_validated",
    "repair.found",
    "repair.applied",
)

#: The gauge catalog: last-write-wins values the instrumented layers
#: set.  Kept as an explicit set because aggregation must treat the two
#: kinds differently — counters **sum** across processes, gauges never
#: do (summing ``update_reuse_ratio`` over four workers yields a
#: nonsense ratio above 1.0); a cluster front reports gauges as labeled
#: per-worker series instead.
GAUGES = frozenset({
    "incremental.update_reuse_ratio",
    # repro.cluster — per-worker health gauges exposed over /metrics.
    "sessions.open_breakers",
})


class Stopwatch:
    """Wall-clock elapsed-time helper; starts on construction.

    >>> watch = Stopwatch()
    >>> ...                      # doctest: +SKIP
    >>> watch.elapsed()          # doctest: +SKIP
    """

    __slots__ = ("started",)

    def __init__(self):
        self.started = clock()

    def elapsed(self):
        return clock() - self.started

    def restart(self):
        self.started = clock()


class Span:
    """One timed, attributed region; also its own context manager.

    Spans are created by :meth:`Tracer.span` and closed by leaving the
    ``with`` block (or calling :meth:`finish`).  ``duration`` of a live
    span is the time elapsed so far.
    """

    __slots__ = (
        "name", "span_id", "parent_id", "start", "end", "attrs", "_tracer",
    )

    def __init__(self, name, span_id, parent_id, attrs, tracer):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = clock()
        self.end = None
        self.attrs = attrs
        self._tracer = tracer

    @property
    def duration(self):
        """Wall seconds; live spans report the time elapsed so far."""
        return (self.end if self.end is not None else clock()) - self.start

    @property
    def finished(self):
        return self.end is not None

    def annotate(self, **attrs):
        """Attach attributes after the fact (e.g. a result count)."""
        self.attrs.update(attrs)
        return self

    def finish(self):
        if self.end is None:
            self._tracer._finish(self)
        return self

    def to_dict(self):
        """JSON-ready representation (used by the JSONL sink)."""
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "attrs": {key: _jsonable(value)
                      for key, value in self.attrs.items()},
        }

    # -- context-manager protocol ------------------------------------------

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, _tb):
        if exc is not None:
            self.attrs["error"] = "{}: {}".format(
                type(exc).__name__, exc
            )
        self.finish()
        return False

    def __repr__(self):
        state = "{:.6f}s".format(self.duration) if self.finished else "live"
        return "Span({}#{} {} {})".format(
            self.name, self.span_id, state,
            self.attrs if self.attrs else "",
        )


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class Tracer:
    """The real tracer: spans nest via an explicit stack, metrics are
    plain dicts, finished spans fan out to sinks.

    ``sinks`` defaults to a single fresh
    :class:`~repro.obs.sinks.InMemorySink`, so ``Tracer()`` is
    immediately queryable (:meth:`spans`); pass an explicit list to
    stream to JSONL or elsewhere.
    """

    #: Class-level flag so call sites can branch cheaply
    #: (``if tracer.enabled: ...``) without an isinstance check.
    enabled = True

    def __init__(self, sinks=None, id_prefix=None):
        if sinks is None:
            from .sinks import InMemorySink

            sinks = [InMemorySink()]
        self.sinks = list(sinks)
        self.counters = dict.fromkeys(CATALOG, 0)
        self.gauges = {}
        self.histograms = {}
        self._stack = []
        self._ids = itertools.count(1)
        #: Per-process span-id prefix (``"w3.1234"``): when set, span
        #: ids become strings like ``"w3.1234-17"`` — globally unique
        #: across a cluster, so spans from different processes stitch
        #: into one tree without id collisions.  ``None`` (the default)
        #: keeps plain integer ids for single-process use.
        self.id_prefix = id_prefix
        #: Span id of the most recently *finished* span — how a fault
        #: recorded during exception unwind names the span that failed.
        self.last_span_id = None

    # -- spans --------------------------------------------------------------

    def _next_id(self):
        serial = next(self._ids)
        if self.id_prefix is None:
            return serial
        return "{}-{}".format(self.id_prefix, serial)

    def span(self, name, **attrs):
        """Open a nested span; use as ``with tracer.span("render"): ...``."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(name, self._next_id(), parent, attrs, self)
        self._stack.append(span)
        return span

    def span_under(self, parent_id, name, **attrs):
        """Open a span under an **explicit** (possibly remote) parent id.

        This is the receiving half of cross-process trace propagation:
        a cluster worker opens its per-request span under the front's
        op span id carried in the frame headers, so the worker's whole
        span subtree parents into the front's — one request, one tree,
        three processes.  The span still nests on this tracer's stack,
        so local child spans parent under it as usual.
        """
        span = Span(name, self._next_id(), parent_id, attrs, self)
        self._stack.append(span)
        return span

    def _finish(self, span):
        span.end = clock()
        self.last_span_id = span.span_id
        # Out-of-order finishes (a caller holding on to an outer span)
        # close the abandoned inner spans too, innermost first.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            top.end = span.end
            self._emit(top)
        self._emit(span)

    def _emit(self, span):
        for sink in self.sinks:
            sink.on_span(span)

    @property
    def current_span_id(self):
        return self._stack[-1].span_id if self._stack else None

    def annotate_current(self, **attrs):
        """Attach attributes to the innermost *open* span, if any.

        This is how a layer that did not open the span enriches it —
        e.g. the journal stamps the serving op's span with the
        ``journal_seq`` it assigned, making trace → journal joins
        possible without threading span objects through every call.
        """
        if self._stack:
            self._stack[-1].annotate(**attrs)

    def spans(self):
        """Finished spans from the first in-memory sink (else ``()``)."""
        for sink in self.sinks:
            spans = getattr(sink, "spans", None)
            if spans is not None:
                return tuple(spans)
        return ()

    def children_of(self, span_id):
        """Finished direct children of ``span_id``, in finish order."""
        return tuple(
            span for span in self.spans() if span.parent_id == span_id
        )

    # -- metrics ------------------------------------------------------------

    def add(self, counter, amount=1):
        """Increment a monotonic counter (creating it at zero)."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    inc = add

    def gauge(self, name, value):
        """Set a last-write-wins gauge."""
        self.gauges[name] = value

    def histogram(self, name):
        """The named :class:`~repro.obs.histo.Histogram` (created on
        first use).  All histograms share one fixed bucket layout, so
        any two tracers' same-named histograms merge bucket-wise."""
        histogram = self.histograms.get(name)
        if histogram is None:
            # setdefault keeps a concurrent first-use race harmless:
            # both threads end up observing into the same instance.
            histogram = self.histograms.setdefault(name, Histogram())
        return histogram

    def observe(self, name, seconds):
        """Record one latency observation into the named histogram."""
        self.histogram(name).observe(seconds)

    def metrics(self):
        """All counters and gauges as one flat dict (counters win ties)."""
        merged = dict(self.gauges)
        merged.update(self.counters)
        return merged

    def histogram_snapshots(self):
        """Point-in-time copies of every histogram, by name — safe to
        merge or serialize while traffic keeps observing."""
        return {
            name: histogram.snapshot()
            for name, histogram in sorted(self.histograms.items())
        }


class _NullSpan:
    """The shared do-nothing span handed out by :class:`NullTracer`."""

    __slots__ = ()

    name = "null"
    span_id = None
    parent_id = None
    start = 0.0
    end = 0.0
    duration = 0.0
    finished = True
    attrs = {}

    def annotate(self, **_attrs):
        return self

    def finish(self):
        return self

    def __enter__(self):
        return self

    def __exit__(self, _exc_type, _exc, _tb):
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """API-compatible tracer whose every operation is a no-op.

    This is the default wired through :class:`repro.system.transitions.
    System`, so the uninstrumented hot path pays roughly one attribute
    lookup + one no-op call per transition.
    """

    enabled = False
    sinks = ()
    counters = {}
    gauges = {}
    histograms = {}
    current_span_id = None
    last_span_id = None
    id_prefix = None

    __slots__ = ()

    def span(self, _name, **_attrs):
        return _NULL_SPAN

    def span_under(self, _parent_id, _name, **_attrs):
        return _NULL_SPAN

    def annotate_current(self, **_attrs):
        pass

    def add(self, _counter, _amount=1):
        pass

    inc = add

    def gauge(self, _name, _value):
        pass

    def histogram(self, _name):
        return NULL_HISTOGRAM

    def observe(self, _name, _seconds):
        pass

    def metrics(self):
        return {}

    def histogram_snapshots(self):
        return {}

    def spans(self):
        return ()

    def children_of(self, _span_id):
        return ()


#: The process-wide default tracer: disabled, shared, stateless.
NULL_TRACER = NullTracer()
