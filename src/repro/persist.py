"""Session images: persistent code + data (Section 1, Section 6).

"This paper tackles the question of live programming ... by proposing a
formal model, where a program consists of both code and persistent data"
— and the related-work section traces the idea to Smalltalk's image-based
persistence.  This module makes the pairing concrete: a **session image**
is the source text plus the model state (store) and navigation state
(page stack), serialized to JSON.

Two facts make this sound, both consequences of the type system:

* store values and page arguments are **function-free** (T-C-GLOBAL /
  T-C-PAGE), so they serialize completely — no closure ever needs to be
  pickled;
* loading an image **is an UPDATE**: the saved state is fixed up against
  the (possibly edited) source with the Fig. 12 relation, so stale or
  retyped entries are deleted exactly as a live code change would delete
  them.  You can save an image, edit the source by hand, and load — the
  semantics already says what survives.
"""

from __future__ import annotations

import json

from .core import ast
from .core.errors import ReproError
from .core.types import (
    FunType,
    ListType,
    NUMBER,
    NumberType,
    STRING,
    StringType,
    TupleType,
    Type,
)

FORMAT = "repro-image/1"


# ---------------------------------------------------------------------------
# value & type (de)serialization — function-free fragments only
# ---------------------------------------------------------------------------


def type_to_data(type_):
    if isinstance(type_, NumberType):
        return ["number"]
    if isinstance(type_, StringType):
        return ["string"]
    if isinstance(type_, TupleType):
        return ["tuple", [type_to_data(e) for e in type_.elements]]
    if isinstance(type_, ListType):
        return ["list", type_to_data(type_.element)]
    raise ReproError(
        "cannot serialize type {} (function types never reach the "
        "store)".format(type_)
    )


def type_from_data(data):
    tag = data[0]
    if tag == "number":
        return NUMBER
    if tag == "string":
        return STRING
    if tag == "tuple":
        return TupleType(tuple(type_from_data(e) for e in data[1]))
    if tag == "list":
        return ListType(type_from_data(data[1]))
    raise ReproError("unknown serialized type tag {!r}".format(tag))


def value_to_data(value):
    if isinstance(value, ast.Num):
        return ["num", value.value]
    if isinstance(value, ast.Str):
        return ["str", value.value]
    if isinstance(value, ast.Tuple):
        return ["tuple", [value_to_data(item) for item in value.items]]
    if isinstance(value, ast.ListLit):
        return [
            "list",
            type_to_data(value.element_type),
            [value_to_data(item) for item in value.items],
        ]
    raise ReproError(
        "cannot serialize {!r} — only function-free values persist".format(
            value
        )
    )


def value_from_data(data):
    tag = data[0]
    if tag == "num":
        return ast.Num(float(data[1]))
    if tag == "str":
        return ast.Str(str(data[1]))
    if tag == "tuple":
        return ast.Tuple(tuple(value_from_data(item) for item in data[1]))
    if tag == "list":
        return ast.ListLit(
            tuple(value_from_data(item) for item in data[2]),
            type_from_data(data[1]),
        )
    raise ReproError("unknown serialized value tag {!r}".format(tag))


# ---------------------------------------------------------------------------
# images
# ---------------------------------------------------------------------------


def save_image(session, meta=None):
    """Snapshot a :class:`~repro.live.session.LiveSession` to a dict.

    Captures the *last successfully compiled* source (the running code),
    the store and the page stack.  The display and event queue are not
    saved: the queue is empty in stable states, and the display is a
    function of the rest (it is re-rendered on load).

    ``meta`` is an optional JSON-clean dict stored verbatim under the
    ``"meta"`` key — the server's session host uses it to stamp evicted
    sessions with their token and display generation.  It is carried, not
    interpreted: loading ignores it apart from re-exposing it on
    ``session.last_restore_meta``.
    """
    state = session.runtime.system.state
    image = {
        "format": FORMAT,
        "source": session.compiled.source,
        "store": [
            [name, value_to_data(value)] for name, value in state.store.items()
        ],
        "stack": [
            [page, value_to_data(value)]
            for page, value in state.stack.entries()
        ],
    }
    # The evaluator backend is session configuration that should survive
    # evict → rehydrate.  The default stays implicit, so tree-backend
    # images are byte-identical to what they always were; custom backend
    # *instances* have no registry name and stay per-process.
    backend_name = session.runtime.system.backend_name
    if backend_name not in (None, "tree"):
        image["backend"] = backend_name
    # The fault history travels with the session: evicting a faulty
    # session to an image and rehydrating it must not launder its
    # record (the server's circuit breaker and the ``repro.resilience``
    # docs both rely on evict → rehydrate preserving faults).  Errors
    # are stored as strings — the exception object does not survive
    # JSON, its description and timing do.
    faults = getattr(session.runtime, "faults", ())
    if faults:
        image["faults"] = [
            {
                "error": str(fault.error),
                "during": fault.during,
                "timestamp": fault.timestamp,
                "vtimestamp": fault.vtimestamp,
            }
            for fault in faults
        ]
    if meta is not None:
        image["meta"] = dict(meta)
    return image


def save_image_text(session, indent=2, meta=None):
    """:func:`save_image` as a JSON string."""
    return json.dumps(save_image(session, meta=meta), indent=indent)


def load_image(data, host_impls=None, services=None, source=None,
               **session_kwargs):
    """Rebuild a live session from an image.

    ``source`` optionally *overrides* the saved source — the
    edit-while-suspended workflow.  Restoring runs the Fig. 12 fix-up
    against whatever code actually compiles, so state that no longer
    types is dropped (and reported on ``session.last_restore_report``).

    The saved ``"backend"`` (when present) becomes the restored
    session's evaluator backend; an explicit ``backend=`` keyword wins
    over the image, which is how a host migrates a saved session onto a
    different backend — the two produce byte-identical displays, so the
    switch is invisible to the user.
    """
    if isinstance(data, str):
        data = json.loads(data)
    if data.get("format") != FORMAT:
        raise ReproError(
            "not a session image (format={!r})".format(data.get("format"))
        )
    from .live.session import LiveSession
    from .system.fixup import fixup
    from .system.state import PageStack, Store

    if session_kwargs.get("backend") is None and data.get("backend"):
        session_kwargs["backend"] = data["backend"]
    session = LiveSession(
        source if source is not None else data["source"],
        host_impls=host_impls,
        services=services,
        **session_kwargs
    )
    saved_store = Store()
    for name, value_data in data["store"]:
        saved_store.assign(name, value_from_data(value_data))
    saved_stack = PageStack(
        [
            (page, value_from_data(value_data))
            for page, value_data in data["stack"]
        ]
    )
    system = session.runtime.system
    new_store, new_stack, report = fixup(
        system.code, saved_store, saved_stack, system.natives
    )
    state = system.state
    state.store = new_store
    # Keep at least the booted start page if the whole saved stack died.
    if not new_stack.is_empty():
        state.stack = new_stack
    state.invalidate_display()
    session.runtime._settle()
    # Re-instate the saved fault history *before* any faults the settle
    # above just recorded (a render that faulted pre-save faults again
    # on load — that is a fresh occurrence, not the restored record).
    saved_faults = data.get("faults")
    if saved_faults:
        from .system.runtime import Fault

        session.runtime.faults[:0] = [
            Fault(
                fault.get("error"),
                fault.get("during", "?"),
                timestamp=fault.get("timestamp", 0.0),
                vtimestamp=fault.get("vtimestamp", 0.0),
            )
            for fault in saved_faults
        ]
    session.last_restore_report = report
    session.last_restore_meta = data.get("meta")
    return session
