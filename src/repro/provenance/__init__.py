"""``repro.provenance`` — the journal as a queryable observability layer.

PR 3's write-ahead journal records every state-changing op for crash
recovery; this package turns that recording into the system's flight
recorder.  Three capabilities, all riding on the same determinism
(virtual clocks + seeded substrates ⇒ replay is byte-identical):

* **deterministic replay & time travel** —
  :func:`~repro.provenance.replayer.replay_to` materializes a fully
  live session as of any journal seq (nearest checkpoint + tail
  replay); :class:`~repro.provenance.timetravel.TimeMachine` adds a
  cursor with ``step_back``/``step_forward``;
* **trace replay against edited code** —
  :func:`~repro.provenance.divergence.divergence_report` replays the
  recorded trace under an edited program and reports the first display
  generation (and box occurrences) that differ — the paper's §2
  trace-replay baseline as a regression tool;
* **why-queries** — :func:`~repro.provenance.why.why` joins the
  box↔code map, the static global read sets and the journal into "this
  box came from this code span, read these slots, which these events
  wrote".

Served over the protocol as the ``history`` and ``why`` ops, and on the
command line as ``repro replay`` / ``repro why``.
"""

from .divergence import ChangedBox, DivergenceReport, divergence_report
from .replayer import ReplayResult, apply_event, replay_session, replay_to
from .timetravel import TimeMachine
from .why import (
    EventLink,
    SlotProvenance,
    WhyReport,
    boxed_read_set,
    box_owner,
    link_events,
    why,
)

__all__ = [
    "ChangedBox",
    "DivergenceReport",
    "divergence_report",
    "ReplayResult",
    "apply_event",
    "replay_session",
    "replay_to",
    "TimeMachine",
    "EventLink",
    "SlotProvenance",
    "WhyReport",
    "boxed_read_set",
    "box_owner",
    "link_events",
    "why",
]
