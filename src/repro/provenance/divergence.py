"""Trace replay against edited code: "does my edit change what the
user saw yesterday?"

Section 2 of the paper frames trace replay as the baseline liveness
mechanism: re-run the recorded inputs under the new program and compare.
:func:`divergence_report` is that baseline promoted to a regression
tool.  Two deterministic replays of the same journaled trace run in
lockstep — one under the recorded program, one under ``edited_source`` —
and every **display generation** (the boot render, then one settled
display per journaled event) is compared by its HTML fingerprint.

The result is structural, not a diff blob: the first generation whose
HTML differs, the journal seq of the event that produced it, and which
box *occurrences* changed (added, removed, or re-rendered differently),
identified by ``(box_id, occurrence)`` so they map straight back to
boxed statements via the source map.

A trace that itself contains ``edit_source`` events re-asserts the
recorded program mid-replay on **both** runs — the comparison is then
"recorded tail" vs "recorded tail", so only the prefix up to the first
recorded edit exercises the new code.  That is the faithful reading of
"replay the trace": the trace includes the edits the user made.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ReproError, SyntaxProblem, TypeProblem
from ..obs.trace import NULL_TRACER
from ..render.html_backend import display_fingerprint, render_html_fragment
from .replayer import replay_to, resolve_token


@dataclass(frozen=True)
class ChangedBox:
    """One box occurrence that differs at the divergent generation."""

    box_id: object
    occurrence: int
    #: ``"changed"`` (HTML differs), ``"added"`` (only in the edited
    #: run), or ``"removed"`` (only in the baseline run).
    change: str

    def __str__(self):
        return "box #{} occurrence {} {}".format(
            self.box_id, self.occurrence, self.change
        )


@dataclass(frozen=True)
class DivergenceReport:
    """Outcome of one baseline-vs-edited lockstep replay.

    ``status`` is ``"identical"``, ``"diverged"``, or ``"rejected"``
    (the edited source does not compile / does not type — nothing was
    replayed).  Generation 0 is the boot render; generation *n* is the
    display after the *n*-th replayed event.
    """

    status: str
    token: str = None
    generations: int = 0
    events_replayed: int = 0
    first_divergent_generation: object = None
    #: Journal seq of the event that produced the first divergent
    #: generation (``None`` when the boot render already differs).
    first_divergent_seq: object = None
    changed_boxes: tuple = ()
    problems: tuple = ()

    @property
    def diverged(self):
        return self.status != "identical"

    @property
    def clean(self):
        return self.status == "identical"

    def __str__(self):
        if self.status == "identical":
            return (
                "identical: {} generation{} byte-identical under the "
                "edited program".format(
                    self.generations, "" if self.generations == 1 else "s"
                )
            )
        if self.status == "rejected":
            return "rejected: the edited source does not compile:\n" + "\n".join(
                "  " + str(problem) for problem in self.problems
            )
        lines = [
            "diverged at generation {}{}".format(
                self.first_divergent_generation,
                "" if self.first_divergent_seq is None
                else " (journal seq {})".format(self.first_divergent_seq),
            )
        ]
        for changed in self.changed_boxes:
            lines.append("  " + str(changed))
        return "\n".join(lines)


def _box_fragments(display):
    """``(box_id, occurrence) → fragment HTML`` for every tagged box."""
    fragments = {}
    for _path, box in display.walk():
        if box.box_id is not None:
            fragments[(box.box_id, box.occurrence)] = render_html_fragment(box)
    return fragments


def _changed_boxes(baseline_display, edited_display):
    before = _box_fragments(baseline_display)
    after = _box_fragments(edited_display)
    changed = []
    for key in sorted(set(before) | set(after), key=str):
        if key not in after:
            change = "removed"
        elif key not in before:
            change = "added"
        elif before[key] != after[key]:
            change = "changed"
        else:
            continue
        changed.append(ChangedBox(key[0], key[1], change))
    return tuple(changed)


def _capture_generations(journal, token, source, seq, options):
    """Replay and keep ``(event_seq, display)`` per generation.

    Displays are frozen, structurally shared trees — holding one per
    generation costs pointers, not copies; HTML is only rendered for the
    single generation the comparison flags.
    """
    generations = []

    def on_step(record, session):
        generations.append(
            (None if record is None else record["seq"], session.display)
        )

    result = replay_to(
        journal, token, seq=seq, use_checkpoint=False, source=source,
        on_step=on_step, **options
    )
    return generations, result


def divergence_report(
    journal,
    edited_source,
    token=None,
    seq=None,
    make_host_impls=None,
    make_services=None,
    session_kwargs=None,
    tracer=None,
):
    """Replay the journaled trace under ``edited_source`` and report the
    first display generation (and box occurrences) that differ from the
    recorded program's replay."""
    tracer = tracer if tracer is not None else NULL_TRACER
    token = resolve_token(journal, token)
    options = {
        "make_host_impls": make_host_impls,
        "make_services": make_services,
        "session_kwargs": session_kwargs,
    }
    try:
        edited, edited_result = _capture_generations(
            journal, token, edited_source, seq, options
        )
    except (SyntaxProblem, TypeProblem) as problem:
        tracer.add("replay.divergences")
        return DivergenceReport(
            status="rejected", token=token, problems=(problem,)
        )
    baseline, _ = _capture_generations(journal, token, None, seq, options)
    if len(baseline) != len(edited):
        # Cannot happen while both replays read the same tape; guard
        # against a torn journal changing under our feet.
        raise ReproError(
            "lockstep replays disagree on generation count "
            "({} vs {})".format(len(baseline), len(edited))
        )
    for index, ((event_seq, base_display), (_, edit_display)) in enumerate(
        zip(baseline, edited)
    ):
        if display_fingerprint(base_display) == display_fingerprint(
            edit_display
        ):
            continue
        tracer.add("replay.divergences")
        return DivergenceReport(
            status="diverged",
            token=token,
            generations=len(baseline),
            events_replayed=edited_result.events_replayed,
            first_divergent_generation=index,
            first_divergent_seq=event_seq,
            changed_boxes=_changed_boxes(base_display, edit_display),
        )
    return DivergenceReport(
        status="identical",
        token=token,
        generations=len(baseline),
        events_replayed=edited_result.events_replayed,
    )
