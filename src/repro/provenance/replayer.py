"""Deterministic journal replay: rebuild any recorded session on demand.

The journal (:mod:`repro.resilience.journal`) write-ahead logs every
state-changing op, and the system between user actions is deterministic
— virtual clocks, seeded substrates, "exactly one internal transition is
enabled".  Crash recovery already exploits this; here the same replay
becomes a *query primitive*:

* :func:`replay_to` materializes a fresh, fully live
  :class:`~repro.live.session.LiveSession` holding the recorded
  session's exact state as of any journal sequence number — seeking to
  the nearest checkpoint at or before the target (via the journal's
  byte-offset index) and replaying only the tail, so time travel over a
  long journal does not pay for the whole prefix;
* ``source=...`` replays the recorded events against **edited** code
  instead — the paper's §2 trace-replay baseline as a regression tool
  (:mod:`repro.provenance.divergence` compares the two runs);
* ``capture_provenance=True`` flips the system's provenance switch so
  every replayed event's store reads and write versions are recorded,
  keyed by journal seq — the raw material for
  :func:`repro.provenance.why`.

Replay never propagates evaluation faults: write-ahead logging means
the journal also holds ops that faulted live, and each faults
identically on replay — that is the fault history being reconstructed,
not an error in the replayer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import EvalError, ReproError
from ..live.session import LiveSession
from ..obs.trace import NULL_TRACER
from ..persist import load_image
from ..resilience.journal import decode_batch_events


@dataclass
class ReplayResult:
    """One finished replay: the live session plus how it was built."""

    session: object                 # the materialized LiveSession
    token: str
    events_replayed: int = 0
    #: Seq of the checkpoint the replay started from (None = cold start
    #: from the ``create`` record).
    checkpoint_seq: object = None
    faults: int = 0                 # evaluation faults re-encountered
    #: Seq of the last event applied (create seq when none were).
    last_seq: object = None
    #: journal seq → {"op", "args", "span_id", "entries"} when the
    #: replay ran with ``capture_provenance=True``; entries are the
    #: system's per-evaluation read/write logs for that event.
    provenance: dict = field(default_factory=dict)


def resolve_token(journal, token=None):
    """Default the token when the journal holds exactly one session."""
    if token is not None:
        return token
    tokens = journal.tokens()
    if len(tokens) == 1:
        return tokens[0]
    if not tokens:
        raise ReproError("the journal holds no sessions")
    raise ReproError(
        "the journal holds {} sessions ({}); pick one with token=".format(
            len(tokens), ", ".join(tokens)
        )
    )


def _create_record(journal, token):
    offset = journal.start_offset(token)
    if offset is None:
        raise ReproError(
            "the journal has no create record for {!r} — cannot replay "
            "from the beginning (only a checkpoint survives)".format(token)
        )
    for record in journal.read(start=offset):
        if record.get("kind") == "create" and record.get("token") == token:
            return offset, record
        break
    raise ReproError("journal index out of sync for {!r}".format(token))


def _checkpoint_image(journal, token, offset):
    for record in journal.read(start=offset):
        if (record.get("kind") == "checkpoint"
                and record.get("token") == token):
            return record["image"]
        break
    raise ReproError("journal index out of sync for {!r}".format(token))


def apply_event(session, op, args):
    """Re-apply one journaled event to a live session.

    The op → session-method mapping mirrors
    :func:`repro.resilience.journal._replay_event`, minus the host
    wrapper: provenance replay runs against a bare
    :class:`~repro.live.session.LiveSession`.
    """
    if op == "tap":
        if args.get("text") is not None:
            session.tap_text(args["text"])
        else:
            session.tap(tuple(args.get("path") or ()))
    elif op == "back":
        session.back()
    elif op == "edit_box":
        session.edit_box(tuple(args.get("path") or ()), args.get("text"))
    elif op == "batch":
        session.apply_events(decode_batch_events(args.get("events") or []))
    elif op == "edit_source":
        session.edit_source(args.get("source"))
    else:
        raise ReproError("journal holds unknown op {!r}".format(op))


def replay_to(
    journal,
    token=None,
    seq=None,
    use_checkpoint=True,
    source=None,
    make_host_impls=None,
    make_services=None,
    session_kwargs=None,
    capture_provenance=False,
    on_step=None,
    tracer=None,
):
    """Materialize the journaled session's state as of journal ``seq``.

    ``seq=None`` replays to the end of the journal.  ``source``
    overrides the recorded program — the trace then runs against the
    *edited* code, cold from the beginning (a checkpoint image froze the
    old program, so it cannot seed an edited-code run).
    ``capture_provenance`` also forces a cold start: per-event
    read/write attribution needs the whole tape, not a compressed
    prefix.  ``on_step(record, session)`` is called after the boot
    (``record=None``) and after every applied event — the lockstep hook
    :mod:`repro.provenance.divergence` drives its comparison through.

    The returned session is fully live: it can be tapped, edited and
    rendered — time travel hands back a working present, not a replay
    log.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    token = resolve_token(journal, token)
    kwargs = dict(session_kwargs or {})
    make_host_impls = make_host_impls or dict
    make_services = make_services or _default_services
    checkpoint = None
    if use_checkpoint and source is None and not capture_provenance:
        checkpoint = journal.checkpoint_before(token, seq)
    result = ReplayResult(session=None, token=token)
    if checkpoint is not None:
        checkpoint_seq, offset = checkpoint
        session = load_image(
            _checkpoint_image(journal, token, offset),
            host_impls=make_host_impls(),
            services=make_services(),
            **kwargs
        )
        result.checkpoint_seq = checkpoint_seq
        result.last_seq = checkpoint_seq
        floor = checkpoint_seq
        tracer.add("replay.checkpoints_used")
    else:
        offset, create = _create_record(journal, token)
        session = LiveSession(
            source if source is not None else create["source"],
            host_impls=make_host_impls(),
            services=make_services(),
            **kwargs
        )
        result.last_seq = create["seq"]
        floor = create["seq"]
    result.session = session
    if capture_provenance:
        session.runtime.system.capture_provenance = True
    if on_step is not None:
        on_step(None, session)
    log = session.runtime.system.provenance_log
    for record in journal.records_for(token, start=offset):
        if record.get("kind") != "event":
            continue
        record_seq = record["seq"]
        if record_seq <= floor:
            continue
        if seq is not None and record_seq > seq:
            break
        entries_before = len(log)
        faults_before = len(session.runtime.faults)
        try:
            apply_event(session, record.get("op"), record.get("args") or {})
        except EvalError:
            result.faults += 1  # faulted identically when recorded live
        except ReproError:
            pass  # e.g. a tap on a box the display no longer has
        result.faults += len(session.runtime.faults) - faults_before
        result.events_replayed += 1
        result.last_seq = record_seq
        if capture_provenance:
            result.provenance[record_seq] = {
                "op": record.get("op"),
                "args": record.get("args") or {},
                "span_id": record.get("span_id"),
                "entries": tuple(log[entries_before:]),
            }
        if on_step is not None:
            on_step(record, session)
    tracer.add("replay.sessions")
    tracer.add("replay.events", result.events_replayed)
    return result


def replay_session(journal, token=None, **options):
    """Replay a session to the journal's end (crash recovery's twin,
    minus the host): sugar for :func:`replay_to` with ``seq=None``."""
    return replay_to(journal, token, seq=None, **options)


def _default_services():
    from ..system.services import Services

    return Services()
