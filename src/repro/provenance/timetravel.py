"""Time travel over a journaled session: step through its history.

A :class:`TimeMachine` wraps one token's slice of a journal and exposes
its recorded life as a sequence of **positions**: position 0 is the boot
(the ``create`` record, or the recorded program's first render), and
position *n* is the state after the *n*-th journaled event.  Moving the
cursor (:meth:`goto`, :meth:`step_back`, :meth:`step_forward`)
materializes that state as a fully live session via
:func:`~repro.provenance.replayer.replay_to` — checkpoint-assisted, so
jumping around a long history replays short tails, not whole prefixes.

The materialized session at any position is a real
:class:`~repro.live.session.LiveSession`: the programmer can step back
three interactions and *tap something else* — the journal is unchanged
(it is append-only history; the time machine never writes to it), the
session is a live fork of the past.
"""

from __future__ import annotations

from ..core.errors import ReproError
from ..obs.trace import NULL_TRACER
from .replayer import replay_to, resolve_token


class TimeMachine:
    """Cursor-addressed deterministic replay over one journaled session."""

    def __init__(
        self,
        journal,
        token=None,
        make_host_impls=None,
        make_services=None,
        session_kwargs=None,
        use_checkpoints=True,
        tracer=None,
    ):
        self.journal = journal
        self.token = resolve_token(journal, token)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._options = {
            "make_host_impls": make_host_impls,
            "make_services": make_services,
            "session_kwargs": session_kwargs,
            "use_checkpoint": use_checkpoints,
        }
        #: Event seqs for this token, in journal order — the timeline.
        self.event_seqs = tuple(
            record["seq"]
            for record in journal.records_for(self.token)
            if record.get("kind") == "event"
        )
        self._position = None      # int once materialized
        self._result = None        # ReplayResult behind the cursor

    # -- the timeline -------------------------------------------------------

    def __len__(self):
        """Number of positions (boot + one per event)."""
        return len(self.event_seqs) + 1

    @property
    def position(self):
        """Current cursor position, or ``None`` before the first move."""
        return self._position

    @property
    def seq(self):
        """Journal seq of the event behind the cursor (``None`` at boot)."""
        if not self._position:
            return None
        return self.event_seqs[self._position - 1]

    def position_of(self, seq):
        """The position whose state includes every event up to ``seq``."""
        position = 0
        for event_seq in self.event_seqs:
            if event_seq > seq:
                break
            position += 1
        return position

    # -- moving the cursor --------------------------------------------------

    def goto(self, position):
        """Materialize position ``position``; returns the live session."""
        if not 0 <= position < len(self):
            raise ReproError(
                "position {} out of range 0..{}".format(
                    position, len(self) - 1
                )
            )
        target = None if position == 0 else self.event_seqs[position - 1]
        if position == 0:
            # "Up to seq None" means "to the end"; boot needs an explicit
            # bound below every event.
            target = self.event_seqs[0] - 1 if self.event_seqs else None
        self._result = replay_to(
            self.journal, self.token, seq=target,
            tracer=self.tracer, **self._options
        )
        self._position = position
        return self.session

    def goto_seq(self, seq):
        """Materialize the state as of journal ``seq``."""
        return self.goto(self.position_of(seq))

    def start(self):
        """Jump to the boot state (before any event)."""
        return self.goto(0)

    def end(self):
        """Jump to the latest recorded state."""
        return self.goto(len(self) - 1)

    def step_back(self):
        """One event earlier; raises at the boot state."""
        position = self._position if self._position is not None else len(self) - 1
        if position <= 0:
            raise ReproError("already at the boot state")
        return self.goto(position - 1)

    def step_forward(self):
        """One event later; raises at the end of the recording."""
        position = self._position if self._position is not None else -1
        if position >= len(self) - 1:
            raise ReproError("already at the end of the recording")
        return self.goto(position + 1)

    # -- looking at the materialized state ----------------------------------

    @property
    def session(self):
        """The live session behind the cursor (:meth:`goto` first)."""
        if self._result is None:
            raise ReproError("move the cursor first (goto/start/end)")
        return self._result.session

    @property
    def last_replay(self):
        """The :class:`~repro.provenance.replayer.ReplayResult` of the
        most recent cursor move — how much tail was replayed, which
        checkpoint seeded it."""
        return self._result

    def html(self, title="repro page"):
        return self.session.html(title=title)

    def screenshot(self, width=48):
        return self.session.screenshot(width=width)
