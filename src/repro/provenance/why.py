"""Provenance queries: from a rendered box, answer *what produced this?*

The paper's Fig. 2 navigation answers "which code drew this box"; the
incremental engine's read sets answer "which globals can this box
depend on"; the journal answers "which user actions assigned those
globals".  :func:`why` joins all three over one deterministic replay:

* **code span** — the box's ``box_id`` looks up the boxed statement's
  source span and enclosing definition (the existing box↔code map);
* **store slots** — the statically-computed global read set of the
  boxed subtree (its ``GlobalRead``\\ s, closed transitively over the
  functions it references — the same soundness argument that makes
  render memoization a complete key), with each slot's current value
  and write version;
* **journal events** — the replay runs with provenance capture on, so
  every journaled event's store reads and write versions are known.
  The slot versions name the exact events that last assigned them, and
  a reverse dependency closure walks further back: an event is linked
  if it wrote something the box (or an already-linked event) read.
  ``count := count + 1`` three times links all three taps, not just the
  last — the chain of reads *is* the provenance.

Each linked event carries the ``span_id`` its journal record was
stamped with (when the server traced it), so the answer joins into the
trace as well as the source.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..boxes.paths import resolve
from ..core import ast
from ..core.errors import ReproError
from ..eval.memo import global_read_sets
from ..eval.values import format_for_post
from ..obs.trace import NULL_TRACER
from .replayer import replay_to, resolve_token


@dataclass(frozen=True)
class SlotProvenance:
    """One global the box reads: its value and where it came from."""

    name: str
    value: str            # formatted current value
    version: int          # store write version (0 = never assigned)
    #: Journal seq of the event whose write produced this version;
    #: ``None`` means the value is the declared initial (EP-GLOBAL-2) or
    #: predates the journal's create record.
    origin_seq: object = None

    def __str__(self):
        if self.version == 0:
            return "{} = {} (declared initial, never assigned)".format(
                self.name, self.value
            )
        if self.origin_seq is None:
            return "{} = {} (version {})".format(
                self.name, self.value, self.version
            )
        return "{} = {} (version {}, written by journal seq {})".format(
            self.name, self.value, self.version, self.origin_seq
        )


@dataclass(frozen=True)
class EventLink:
    """One journal event in the box's dependency history."""

    seq: int
    op: str
    args: dict
    #: The globals this event wrote that the box (or a later linked
    #: event) read — why the event is part of the answer.
    wrote: tuple = ()
    #: Tracer span the journal record was stamped with (None untraced).
    span_id: object = None

    def __str__(self):
        detail = json.dumps(self.args, sort_keys=True) if self.args else ""
        suffix = ""
        if self.wrote:
            suffix += " wrote {}".format(", ".join(self.wrote))
        if self.span_id is not None:
            suffix += " [span {}]".format(self.span_id)
        return "seq {} {} {}{}".format(self.seq, self.op, detail, suffix)


@dataclass(frozen=True)
class WhyReport:
    """The full answer: code span, read slots, originating events."""

    token: str
    box_id: object
    occurrence: int
    path: tuple
    span: object          # source span of the boxed statement
    owner: str            # enclosing definition ("page start" / "fun f")
    reads: tuple          # static global read set of the boxed subtree
    slots: tuple          # SlotProvenance per read, in read-set order
    events: tuple         # EventLink, oldest first

    def __str__(self):
        lines = [
            "box #{} occurrence {} (path /{})".format(
                self.box_id, self.occurrence,
                "/".join(str(i) for i in self.path),
            ),
            "  code: {} in {}".format(self.span, self.owner),
        ]
        if not self.slots:
            lines.append("  reads: nothing — the box is constant")
        else:
            lines.append("  reads:")
            for slot in self.slots:
                lines.append("    " + str(slot))
        if self.events:
            lines.append("  events:")
            for event in self.events:
                lines.append("    " + str(event))
        else:
            lines.append("  events: none — no journaled event wrote these")
        return "\n".join(lines)


def box_owner(code, box_id):
    """``(definition label, Boxed node)`` for the statement behind
    ``box_id`` — searched across function bodies and page init/render
    expressions (pages hold expressions, not named functions)."""
    candidates = []
    for definition in code.functions():
        candidates.append(("fun " + definition.name, definition.body))
    for page in code.pages():
        candidates.append(("page {} (init)".format(page.name), page.init))
        candidates.append(("page {} (render)".format(page.name), page.render))
    for label, body in candidates:
        for node in ast.walk(body):
            if isinstance(node, ast.Boxed) and node.box_id == box_id:
                return label, node
    raise ReproError(
        "no boxed statement with box id {!r} in the program".format(box_id)
    )


def boxed_read_set(code, box_id):
    """Globals the boxed statement may read: its own ``GlobalRead``\\ s
    plus the transitive read sets of every function it references."""
    _label, boxed = box_owner(code, box_id)
    reads = set()
    refs = set()
    for node in ast.walk(boxed):
        if isinstance(node, ast.GlobalRead):
            reads.add(node.name)
        elif isinstance(node, ast.FunRef):
            refs.add(node.name)
    if refs:
        transitive = global_read_sets(code)
        for ref in refs:
            reads |= transitive.get(ref, frozenset())
    return frozenset(reads)


def _event_effects(provenance):
    """Flatten captured provenance: seq → (merged reads, merged writes)."""
    effects = {}
    for seq, info in provenance.items():
        reads = set()
        writes = {}
        for entry in info["entries"]:
            reads.update(entry.get("reads", ()))
            writes.update(entry.get("writes", {}))
        effects[seq] = (reads, writes)
    return effects


def link_events(reads, provenance):
    """Reverse dependency closure from the box's read set.

    Walking newest → oldest: an event is linked when it wrote a name in
    the needed set, and linking it adds *its* reads to the needed set —
    so an accumulating global (``count := count + 1``) links its whole
    assignment chain, and events that only touched unrelated state stay
    out.  Returns links oldest-first.
    """
    effects = _event_effects(provenance)
    needed = set(reads)
    links = []
    for seq in sorted(effects, reverse=True):
        event_reads, event_writes = effects[seq]
        relevant = needed.intersection(event_writes)
        if not relevant:
            continue
        info = provenance[seq]
        links.append(EventLink(
            seq=seq,
            op=info["op"],
            args=info["args"],
            wrote=tuple(sorted(relevant)),
            span_id=info["span_id"],
        ))
        needed |= event_reads
    links.reverse()
    return tuple(links)


def _slot(session, provenance, name):
    store = session.runtime.system.state.store
    version = store.version(name)
    value = store.lookup(name)
    if value is None:
        definition = session.runtime.system.code.global_(name)
        value = definition.init if definition is not None else None
    origin = None
    if version:
        for seq in sorted(provenance, reverse=True):
            _reads, writes = (set(), {})
            for entry in provenance[seq]["entries"]:
                writes.update(entry.get("writes", {}))
            if writes.get(name) == version:
                origin = seq
                break
    return SlotProvenance(
        name=name,
        value="?" if value is None else format_for_post(value),
        version=version,
        origin_seq=origin,
    )


def why(
    journal,
    token=None,
    path=None,
    text=None,
    make_host_impls=None,
    make_services=None,
    session_kwargs=None,
    tracer=None,
):
    """Answer "what produced this box?" for the journaled session's
    current display.

    The box is named by its display ``path`` (as in :meth:`LiveSession.
    select_box` — content inside the box resolves to the nearest
    enclosing boxed statement) or by its posted ``text``.  The replay
    runs cold from the create record with provenance capture on: the
    whole tape is the evidence, so checkpoints cannot stand in for it.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    token = resolve_token(journal, token)
    result = replay_to(
        journal, token,
        make_host_impls=make_host_impls,
        make_services=make_services,
        session_kwargs=session_kwargs,
        capture_provenance=True,
    )
    session = result.session
    if path is None:
        if text is None:
            raise ReproError("why needs a display path or a box text")
        path = session.runtime.require_text(text)
    selection = session.select_box(tuple(path))
    if selection is None:
        raise ReproError(
            "the box at {} was not created by a boxed statement".format(
                list(path)
            )
        )
    # The nearest boxed ancestor is what the selection anchored on.
    anchor = tuple(path)
    display = session.display
    while resolve(display, anchor).box_id is None:
        anchor = anchor[:-1]
    box = resolve(display, anchor)
    owner, _node = box_owner(session.runtime.system.code, selection.box_id)
    reads = boxed_read_set(session.runtime.system.code, selection.box_id)
    ordered = tuple(sorted(reads))
    slots = tuple(
        _slot(session, result.provenance, name) for name in ordered
    )
    events = link_events(reads, result.provenance)
    tracer.add("provenance.queries")
    tracer.add("provenance.events_linked", len(events))
    return WhyReport(
        token=token,
        box_id=selection.box_id,
        occurrence=box.occurrence,
        path=anchor,
        span=selection.span,
        owner=owner,
        reads=ordered,
        slots=slots,
        events=events,
    )
