"""Rendering backends for box trees (layout, text, HTML, hit-testing)."""

from .geometry import Rect, Size, as_cells
from .hittest import enclosing_chain, hit_test, node_at
from .html_backend import box_style, render_html, render_html_fragment
from .layout import LayoutEngine, LayoutNode
from .text_backend import (
    BACKGROUND_SHADES,
    Grid,
    render_layout,
    render_text,
    shade_for,
)

__all__ = [name for name in dir() if not name.startswith("_")]
