"""Integer cell geometry for the deterministic layout engine.

The paper explicitly does not formalize visual layout ("We do not
formalize the visual layout of box trees"), so this reproduction provides
a small deterministic one: boxes are laid out on a character grid, which
makes screenshots exactly assertable in tests while still exercising the
attributes the paper's improvements manipulate (margins, backgrounds,
layout direction).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ReproError


@dataclass(frozen=True)
class Size:
    """A width/height pair in character cells."""

    width: int
    height: int

    def __post_init__(self):
        if self.width < 0 or self.height < 0:
            raise ReproError("negative size: {}x{}".format(self.width, self.height))

    def grow(self, dw, dh):
        return Size(self.width + dw, self.height + dh)


@dataclass(frozen=True)
class Rect:
    """An absolute rectangle in character cells: origin + size."""

    x: int
    y: int
    width: int
    height: int

    @property
    def right(self):
        return self.x + self.width

    @property
    def bottom(self):
        return self.y + self.height

    def contains(self, x, y):
        """Is the cell ``(x, y)`` inside this rectangle?"""
        return self.x <= x < self.right and self.y <= y < self.bottom

    def inset(self, amount):
        """Shrink by ``amount`` cells on every side (clamped at zero)."""
        shrink = min(amount, self.width // 2, self.height // 2)
        return Rect(
            self.x + shrink,
            self.y + shrink,
            max(0, self.width - 2 * shrink),
            max(0, self.height - 2 * shrink),
        )

    def size(self):
        return Size(self.width, self.height)


def as_cells(value, what="attribute"):
    """Convert a numeric attribute value (float) to whole cells (>= 0)."""
    cells = int(value)
    if cells < 0:
        return 0
    return cells
