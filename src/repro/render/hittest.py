"""Hit testing: screen cells → box paths.

This is the device side of rule TAP: the user touches a position on the
display; hit testing finds the *deepest* box whose rectangle contains it,
and the system then bubbles to the nearest enclosing ``ontap`` handler
(:func:`repro.boxes.paths.innermost_box_with_attr`).

It is also the live-view side of Fig. 2's UI-code navigation: the IDE
hit-tests the programmer's click and maps the resulting box to the boxed
statement that created it.  The paper's "nested selection mode" — tapping
the same spot repeatedly to select enclosing boxes — is
:func:`enclosing_chain`.
"""

from __future__ import annotations

from .layout import LayoutNode


def hit_test(root_node, x, y):
    """Path of the deepest box whose rect contains ``(x, y)``, or ``None``."""
    best = None
    for node in root_node.walk():
        if node.rect.contains(x, y):
            if best is None or len(node.path) >= len(best.path):
                best = node
    return best.path if best is not None else None


def enclosing_chain(root_node, x, y):
    """All box paths containing ``(x, y)``, deepest first.

    Repeatedly tapping cycles through this chain ("the user can tap the
    same box multiple times to select enclosing boxes", Section 5).
    """
    chain = [
        node.path for node in root_node.walk() if node.rect.contains(x, y)
    ]
    chain.sort(key=len, reverse=True)
    return chain


def node_at(root_node, path):
    """The :class:`LayoutNode` for ``path``, or ``None``."""
    for node in root_node.walk():
        if node.path == tuple(path):
            return node
    return None
