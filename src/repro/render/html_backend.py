"""HTML backend: box trees → nested ``<div>`` markup.

TouchDevelop is "a device independent browser-based programming language
and development environment"; its box trees render to the DOM, "akin to
TeX and HTML" (Section 1).  This backend produces the equivalent nested
markup so the examples can dump a browsable page, and so tests can check
that attribute semantics (margins, colours, layout direction) survive a
second, independent backend.

The markup is self-contained (inline styles only) and deterministic.
Event handlers are emitted as ``data-`` annotations — they are closures,
which have no meaning outside the running system.
"""

from __future__ import annotations

import html as html_escape

from ..boxes.attributes import ATTRIBUTE_ENV, as_number, as_string
from ..boxes.tree import AttrSet, Box, Leaf
from ..core import names
from ..core.errors import ReproError
from ..core.types import NumberType
from ..eval.values import format_for_post

_STYLE_KEYS = {
    names.ATTR_MARGIN: lambda v: "margin:{}px".format(int(8 * v)),
    names.ATTR_PADDING: lambda v: "padding:{}px".format(int(8 * v)),
    names.ATTR_BACKGROUND: lambda v: "background:{}".format(_css_color(v)),
    names.ATTR_COLOR: lambda v: "color:{}".format(_css_color(v)),
    names.ATTR_FONT_SIZE: lambda v: "font-size:{}em".format(v),
    names.ATTR_WIDTH: lambda v: "width:{}ch".format(int(v)),
    names.ATTR_BORDER: lambda v: (
        "border:1px solid #444" if v else "border:none"
    ),
    names.ATTR_HORIZONTAL: lambda v: (
        "flex-direction:row" if v else "flex-direction:column"
    ),
}


def _css_color(name):
    """Map the language's colour names to CSS (spaces become dashes)."""
    return str(name).strip().replace(" ", "") or "transparent"


def box_style(box):
    """The inline CSS for one box's effective attributes."""
    rules = ["display:flex", "flex-direction:column"]
    for attr_name, value in box.attributes().items():
        style = _STYLE_KEYS.get(attr_name)
        if style is None:
            continue
        spec = ATTRIBUTE_ENV.get(attr_name)
        if spec is not None and isinstance(spec.type, NumberType):
            value = as_number(value)
        else:
            value = as_string(value)
        rules.append(style(value))
    return ";".join(rules)


def render_html_fragment(box, indent=0):
    """One box (and its content) as an HTML fragment."""
    if not isinstance(box, Box):
        raise ReproError("render_html_fragment expects a Box")
    pad = "  " * indent
    handlers = [
        name
        for name in (names.ATTR_ONTAP, names.ATTR_ONEDIT)
        if box.has_attr(name)
    ]
    data = "".join(' data-{}="1"'.format(h) for h in handlers)
    if box.box_id is not None:
        data += ' data-box-id="{}" data-occurrence="{}"'.format(
            box.box_id, box.occurrence
        )
    lines = [
        '{}<div style="{}"{}>'.format(pad, box_style(box), data)
    ]
    for item in box.items:
        if isinstance(item, Leaf):
            lines.append(
                "{}  <span>{}</span>".format(
                    pad, html_escape.escape(format_for_post(item.value))
                )
            )
        elif isinstance(item, Box):
            lines.append(render_html_fragment(item, indent + 1))
    lines.append("{}</div>".format(pad))
    return "\n".join(lines)


def render_html(display, title="repro page"):
    """A complete standalone HTML document for a display tree."""
    return (
        "<!DOCTYPE html>\n<html>\n<head>\n"
        '<meta charset="utf-8"/>\n<title>{}</title>\n'
        "</head>\n<body>\n{}\n</body>\n</html>\n".format(
            html_escape.escape(title), render_html_fragment(display, 1)
        )
    )


def display_fingerprint(display):
    """A stable content hash of a display's HTML rendition.

    The markup is deterministic (inline styles, document-order
    traversal), so two displays fingerprint equal iff their HTML bytes
    are identical — which is exactly the "did the client's view change?"
    question the server's 304-style render generation answers
    (:mod:`repro.serve.host`).
    """
    import hashlib

    fragment = render_html_fragment(display)
    return hashlib.sha256(fragment.encode("utf-8")).hexdigest()
