"""The layout engine: box trees → positioned rectangles.

Layout proceeds in the classic two passes:

1. **measure** — bottom-up natural sizes.  A leaf measures as one text
   line; a box stacks its items vertically (the paper's default) or
   horizontally (``horizontal`` attribute), adds ``padding``, a one-cell
   ``border`` when requested, and reserves ``margin`` around itself.
2. **arrange** — top-down assignment of absolute :class:`Rect`\\ s.

The engine keeps a **measure cache keyed by box object identity**.  Boxes
are immutable once rendered, so a box object always measures the same —
and when the system runs with the Section 5 reuse optimization
(:mod:`repro.boxes.diff`), re-renders share unchanged subtree *objects*
with the previous display, turning their entire measure pass into cache
hits.  That cache is what benchmark E3 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..boxes.attributes import as_number, as_string
from ..boxes.tree import AttrSet, Box, Leaf
from ..core import names
from ..core.errors import ReproError
from ..eval.values import format_for_post
from .geometry import Rect, Size, as_cells


@dataclass
class LayoutNode:
    """A positioned box: absolute rect, text runs, and laid-out children."""

    box: Box
    path: tuple
    rect: Rect                 # the border box (margins lie outside)
    texts: list = field(default_factory=list)   # (x, y, line) absolute
    children: list = field(default_factory=list)

    @property
    def background(self):
        return as_string(self.box.get_attr(names.ATTR_BACKGROUND))

    @property
    def bordered(self):
        return as_number(self.box.get_attr(names.ATTR_BORDER)) > 0

    def walk(self):
        yield self
        for child in self.children:
            for node in child.walk():
                yield node


def _box_metrics(box):
    """margin, padding, border thickness, fixed width for ``box``."""
    margin = as_cells(as_number(box.get_attr(names.ATTR_MARGIN)))
    padding = as_cells(as_number(box.get_attr(names.ATTR_PADDING)))
    border = 1 if as_number(box.get_attr(names.ATTR_BORDER)) > 0 else 0
    fixed_width = as_cells(as_number(box.get_attr(names.ATTR_WIDTH)))
    horizontal = as_number(box.get_attr(names.ATTR_HORIZONTAL)) != 0.0
    return margin, padding, border, fixed_width, horizontal


def _leaf_lines(value):
    """A posted value's display lines (multi-line strings split)."""
    text = format_for_post(value)
    return text.split("\n") if text else [""]


class LayoutEngine:
    """Measures and arranges box trees, caching measures by box identity."""

    def __init__(self):
        self._measure_cache = {}
        #: Cache statistics (reset per :meth:`layout` call), reported by
        #: benchmark E3.
        self.cache_hits = 0
        self.cache_misses = 0

    def invalidate(self):
        """Drop the cache (e.g. between unrelated programs)."""
        self._measure_cache.clear()

    # -- measure ----------------------------------------------------------------

    def measure(self, box):
        """Natural *outer* size of ``box`` (including its margin)."""
        cached = self._measure_cache.get(id(box))
        if cached is not None and cached[0] is box:
            self.cache_hits += 1
            return cached[1]
        self.cache_misses += 1
        margin, padding, border, fixed_width, horizontal = _box_metrics(box)
        content_w = 0
        content_h = 0
        for item in box.items:
            if isinstance(item, Leaf):
                lines = _leaf_lines(item.value)
                item_w = max(len(line) for line in lines)
                item_h = len(lines)
            elif isinstance(item, Box):
                size = self.measure(item)
                item_w, item_h = size.width, size.height
            else:
                continue  # attributes occupy no space
            if horizontal:
                content_w += item_w
                content_h = max(content_h, item_h)
            else:
                content_w = max(content_w, item_w)
                content_h += item_h
        # ``width`` sets a *minimum*: a box never shrinks below its
        # content, so children always fit inside their parent's rect (the
        # geometric invariant hit-testing relies on).
        inner_w = max(fixed_width, content_w) if fixed_width > 0 else content_w
        outer = Size(
            inner_w + 2 * (padding + border + margin),
            content_h + 2 * (padding + border + margin),
        )
        # Keep a strong reference to the box so id() stays unambiguous for
        # the lifetime of the cache entry.
        self._measure_cache[id(box)] = (box, outer)
        return outer

    # -- arrange -----------------------------------------------------------------

    def layout(self, root, width=None):
        """Lay out ``root`` at the origin; returns the root LayoutNode.

        ``width`` optionally stretches the root to a device width (pages
        fill the screen), leaving children at natural size.
        """
        if not isinstance(root, Box):
            raise ReproError("layout expects a Box, got {!r}".format(root))
        self.cache_hits = 0
        self.cache_misses = 0
        natural = self.measure(root)
        outer_w = max(natural.width, width or 0)
        return self._arrange(root, (), 0, 0, outer_w, natural.height)

    def _arrange(self, box, path, x, y, outer_w, outer_h):
        margin, padding, border, fixed_width, horizontal = _box_metrics(box)
        rect = Rect(
            x + margin, y + margin,
            max(0, outer_w - 2 * margin),
            max(0, outer_h - 2 * margin),
        )
        node = LayoutNode(box=box, path=path, rect=rect)
        cursor_x = rect.x + padding + border
        cursor_y = rect.y + padding + border
        child_index = 0
        for item in box.items:
            if isinstance(item, Leaf):
                lines = _leaf_lines(item.value)
                for offset, line in enumerate(lines):
                    node.texts.append((cursor_x, cursor_y + offset, line))
                if horizontal:
                    cursor_x += max(len(line) for line in lines)
                else:
                    cursor_y += len(lines)
            elif isinstance(item, Box):
                size = self.measure(item)
                child = self._arrange(
                    item,
                    path + (child_index,),
                    cursor_x,
                    cursor_y,
                    size.width,
                    size.height,
                )
                node.children.append(child)
                child_index += 1
                if horizontal:
                    cursor_x += size.width
                else:
                    cursor_y += size.height
        return node
