"""ASCII backend: box trees → character "screenshots".

This is the reproduction's display device.  It regenerates the *shape* of
the paper's Figure 1 screens as deterministic text, which the example
scripts print and the integration tests assert against:

* posted content appears as text at its laid-out position;
* bordered boxes draw a ``+--+`` frame;
* non-empty ``background`` colours fill the box's empty cells with a
  shade character (one per colour, see :data:`BACKGROUND_SHADES`) — this
  is how the I3 improvement ("highlight every fifth line") becomes
  visible in tests;
* a selection (for the live IDE of Fig. 2) is drawn as a ``#`` frame
  around the selected box(es), the textual analogue of the red outline.
"""

from __future__ import annotations

from ..boxes.tree import Box
from ..core.errors import ReproError
from .layout import LayoutEngine, LayoutNode

#: Shade characters for background colours; unknown colours get ``'░'``.
BACKGROUND_SHADES = {
    "": " ",
    "white": " ",
    "light blue": "░",
    "light gray": "▒",
    "gray": "▓",
    "yellow": "~",
    "green": "+",
    "red": "!",
}


def shade_for(color):
    return BACKGROUND_SHADES.get(color, "░")


class Grid:
    """A mutable character grid with painter's-algorithm drawing."""

    def __init__(self, width, height, fill=" "):
        self.width = width
        self.height = height
        self._rows = [[fill] * width for _ in range(height)]

    def put(self, x, y, char):
        if 0 <= x < self.width and 0 <= y < self.height:
            self._rows[y][x] = char

    def text(self, x, y, line):
        for offset, char in enumerate(line):
            self.put(x + offset, y, char)

    def fill_rect(self, rect, char):
        for y in range(rect.y, rect.bottom):
            for x in range(rect.x, rect.right):
                self.put(x, y, char)

    def frame(self, rect, horizontal="-", vertical="|", corner="+"):
        if rect.width < 2 or rect.height < 1:
            return
        for x in range(rect.x, rect.right):
            self.put(x, rect.y, horizontal)
            self.put(x, rect.bottom - 1, horizontal)
        for y in range(rect.y, rect.bottom):
            self.put(rect.x, y, vertical)
            self.put(rect.right - 1, y, vertical)
        for x, y in (
            (rect.x, rect.y),
            (rect.right - 1, rect.y),
            (rect.x, rect.bottom - 1),
            (rect.right - 1, rect.bottom - 1),
        ):
            self.put(x, y, corner)

    def render(self):
        return "\n".join("".join(row).rstrip() for row in self._rows)


def render_layout(root_node, selected_paths=()):
    """Draw a laid-out tree to text; ``selected_paths`` get a ``#`` frame."""
    selected = {tuple(path) for path in selected_paths}
    width = max(root_node.rect.right, 1)
    height = max(root_node.rect.bottom, 1)
    grid = Grid(width, height)
    # Pass 1: backgrounds and borders, outermost first so inner boxes
    # paint over their ancestors.
    for node in root_node.walk():
        background = node.background
        if background:
            grid.fill_rect(node.rect, shade_for(background))
        if node.bordered:
            grid.frame(node.rect)
    # Pass 2: text on top.
    for node in root_node.walk():
        for x, y, line in node.texts:
            grid.text(x, y, line)
    # Pass 3: selection frames on top of everything (the IDE's red
    # outline of Fig. 2).
    for node in root_node.walk():
        if node.path in selected:
            grid.frame(node.rect, horizontal="#", vertical="#", corner="#")
    return grid.render()


def render_text(display, width=48, selected_paths=(), engine=None):
    """Layout + draw in one call.  ``display`` is a box tree."""
    if not isinstance(display, Box):
        raise ReproError("render_text expects a Box, got {!r}".format(display))
    if engine is None:
        engine = LayoutEngine()
    root_node = engine.layout(display, width=width)
    return render_layout(root_node, selected_paths=selected_paths)
