"""Live repair: budgeted search over candidate fixes for faulting code.

The resilience layer (:mod:`repro.resilience`) keeps a session *alive*
through a bad edit — the supervisor rolls the UPDATE back, the circuit
breaker quarantines a crash-looping session — but it leaves the
programmer with a bare ``rolled_back``/``degraded`` envelope and no path
forward.  This package closes that gap: when an update faults (or a
breaker opens), it **searches** for a fix.

Three modules:

* :mod:`~repro.repair.candidates` — the search space: small surface-
  level edits of the faulting program (delete the suspect statement,
  replace it with a hole, revert one declaration to its last-good
  text), generated from the parsed AST's source spans;
* :mod:`~repro.repair.localize` — fault localization: the changed-
  declaration diff for a rolled-back UPDATE, and the fault → journal
  event → box ↔ code span join (:func:`repro.provenance.why`'s map) for
  a breaker opened by live traffic;
* :mod:`~repro.repair.search` — the searcher: each candidate is
  validated in an **isolated throwaway system** (a fresh
  :class:`~repro.live.session.LiveSession` materialized by journal
  replay, never the live one) under per-transition
  :class:`~repro.resilience.Budget` limits, by applying the candidate
  as an ordinary supervised edit and re-driving a window of recent
  journaled traffic; candidates are scored (validates cleanly >
  preserves more recent traffic > smaller edit) and ranked under a
  global wall-clock/candidate-count budget with early cancellation.

A repair is **just an edit**: applying a ranked candidate routes
through the normal ``edit_source``/Supervisor path and must pass the
same supervision — the searcher proposes, the supervisor disposes.
See ``docs/RESILIENCE.md`` ("Live repair").
"""

from __future__ import annotations

from .candidates import CandidateEdit, generate_candidates
from .localize import FaultLocus, changed_decl_names, locus_from_selection
from .search import (
    RankedRepair,
    RepairBudget,
    RepairReport,
    search_repairs,
)

__all__ = [
    "CandidateEdit",
    "FaultLocus",
    "RankedRepair",
    "RepairBudget",
    "RepairReport",
    "changed_decl_names",
    "generate_candidates",
    "locus_from_selection",
    "search_repairs",
]
