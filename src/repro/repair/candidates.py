"""The repair search space: small surface-level edits of a faulting program.

Three candidate kinds, in the spirit of generate-and-validate program
repair (the search is honest: every candidate must still compile, type,
and survive supervised application — generation only has to be
*plausible*, not correct):

* ``delete_statement`` — remove one statement (the classic "delete the
  faulting statement" edit);
* ``hole`` — replace one statement with a neutral placeholder that
  keeps the surrounding shape: ``post`` statements post ``"?"``, and
  assignments become self-assignments (``x := x``), so the statement
  slot survives but its faulting expression is gone;
* ``revert_decl`` — splice one top-level declaration's *last-good*
  source text over its faulting version (finer-grained than the
  supervisor's whole-program rollback: the rest of the edit survives).

Candidates are generated from the parsed surface AST's source spans —
the same spans that drive Fig. 2's UI-code navigation — and are plain
line edits on the source text, exactly like
:func:`repro.live.manipulation.apply_manipulation`'s direct-manipulation
edits.  A ``suspects`` set (declaration names from
:mod:`repro.repair.localize`) focuses statement-level candidates on the
declarations the fault implicates; revert candidates are implicitly
localized by the old/new text diff.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import SyntaxProblem
from ..surface import surface_ast as sast
from ..surface.parser import parse


@dataclass(frozen=True)
class CandidateEdit:
    """One proposed fix: a full replacement source plus its provenance."""

    kind: str          # "delete_statement" | "hole" | "revert_decl"
    description: str   # human-readable, e.g. 'delete line 7 in fun f'
    source: str        # the complete repaired source text
    edit_size: int     # lines removed + lines added (smaller is better)
    target: str = ""   # declaration the edit touches ("f", "start", ...)
    line: int = 0      # first source line the edit touches (1-based)


def _decl_name(decl):
    return getattr(decl, "name", None)


def _line_range(source_lines, source, span):
    """Inclusive 1-based ``(first, last)`` line range a span covers.

    Spans are half-open and may end at the *next* token's start (past
    trailing newlines), so the last line is recomputed from the span's
    actual text: everything after the final non-whitespace character is
    not part of the statement.
    """
    text = source[span.start.offset:span.end.offset].rstrip()
    first = span.start.line
    last = first + text.count("\n")
    return first, min(last, len(source_lines))


def _indent_of(line_text):
    return line_text[: len(line_text) - len(line_text.lstrip())]


def _splice(source_lines, first, last, replacement_lines):
    """New source with lines ``first..last`` (1-based, inclusive)
    replaced by ``replacement_lines`` (possibly empty = deletion)."""
    lines = (
        source_lines[: first - 1]
        + list(replacement_lines)
        + source_lines[last:]
    )
    return "\n".join(lines)


def _block_statements(block, out):
    """Flatten every statement in a block, recursing into bodies."""
    if block is None:
        return
    for stmt in block.stmts:
        out.append(stmt)
        for child in (
            getattr(stmt, "body", None),
            getattr(stmt, "then_block", None),
            getattr(stmt, "else_block", None),
        ):
            if isinstance(child, sast.Block):
                _block_statements(child, out)


def _decl_statements(decl):
    """Every statement inside one declaration, with spans."""
    out = []
    if isinstance(decl, sast.DFun):
        _block_statements(decl.body, out)
    elif isinstance(decl, sast.DPage):
        _block_statements(decl.init_block, out)
        _block_statements(decl.render_block, out)
    return out


def _hole_replacement(stmt, indent):
    """The placeholder line(s) for a ``hole`` candidate, or ``None``
    when deletion already covers the statement kind."""
    if isinstance(stmt, sast.SPost):
        return [indent + 'post "?"']
    if isinstance(stmt, sast.SAssign):
        # A self-assignment types for every variable and keeps the
        # statement slot (and any accumulation structure) in place.
        return [indent + "{0} := {0}".format(stmt.name)]
    return None


def _statement_candidates(source, source_lines, decl, stmts):
    name = _decl_name(decl) or "?"
    for stmt in stmts:
        first, last = _line_range(source_lines, source, stmt.span)
        removed = last - first + 1
        yield CandidateEdit(
            kind="delete_statement",
            description="delete line{} {}{} in {}".format(
                "" if removed == 1 else "s", first,
                "" if removed == 1 else "-{}".format(last), name,
            ),
            source=_splice(source_lines, first, last, []),
            edit_size=removed,
            target=name,
            line=first,
        )
        hole = _hole_replacement(stmt, _indent_of(source_lines[first - 1]))
        if hole is not None:
            yield CandidateEdit(
                kind="hole",
                description="replace line {} in {} with {!r}".format(
                    first, name, hole[0].strip(),
                ),
                source=_splice(source_lines, first, last, hole),
                edit_size=removed + len(hole),
                target=name,
                line=first,
            )


def _decl_texts(source, program):
    """name → (first, last, text lines) for every named declaration."""
    lines = source.split("\n")
    texts = {}
    for decl in program.decls:
        name = _decl_name(decl)
        if name is None:
            continue
        first, last = _line_range(lines, source, decl.span)
        texts[name] = (first, last, lines[first - 1:last])
    return texts


def _revert_candidates(source, source_lines, program, last_good_source):
    """One candidate per declaration whose text differs from last-good:
    splice the last-good declaration over the faulting one."""
    try:
        good_program = parse(last_good_source)
    except SyntaxProblem:
        return
    good_texts = _decl_texts(last_good_source, good_program)
    new_texts = _decl_texts(source, program)
    for name, (first, last, text) in new_texts.items():
        good = good_texts.get(name)
        if good is None or good[2] == text:
            continue
        yield CandidateEdit(
            kind="revert_decl",
            description="revert {} to its last-good version".format(name),
            source=_splice(source_lines, first, last, good[2]),
            edit_size=(last - first + 1) + len(good[2]),
            target=name,
            line=first,
        )


def generate_candidates(
    faulting_source,
    last_good_source=None,
    suspects=(),
    max_candidates=None,
):
    """The ranked-for-search candidate list for one faulting program.

    ``suspects`` (declaration names from fault localization) restricts
    statement-level candidates to the implicated declarations; when
    empty, every function and page is fair game.  Revert candidates are
    localized by the text diff itself.  Candidates are deduplicated by
    resulting source, ordered smallest-edit-first (the cheap-to-try,
    likely-minimal fixes lead when ``max_candidates`` truncates), and
    never include the unmodified faulting source.
    """
    try:
        program = parse(faulting_source)
    except SyntaxProblem:
        # A rolled-back or breaker-tripped program always parsed (it
        # compiled once) — but be defensive for direct callers.
        return []
    source_lines = faulting_source.split("\n")
    suspect_set = set(suspects or ())
    candidates = []
    for decl in program.decls:
        name = _decl_name(decl)
        if suspect_set and name not in suspect_set:
            continue
        stmts = _decl_statements(decl)
        candidates.extend(
            _statement_candidates(faulting_source, source_lines, decl, stmts)
        )
    if last_good_source is not None and last_good_source != faulting_source:
        candidates.extend(
            _revert_candidates(
                faulting_source, source_lines, program, last_good_source
            )
        )
    seen = {faulting_source}
    unique = []
    for candidate in sorted(
        candidates, key=lambda c: (c.edit_size, c.line, c.kind)
    ):
        if candidate.source in seen:
            continue
        seen.add(candidate.source)
        unique.append(candidate)
    if max_candidates is not None:
        unique = unique[:max_candidates]
    return unique
