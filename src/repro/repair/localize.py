"""Fault localization: which declarations does a fault implicate?

Two complementary localizers, one per repair trigger:

* **Rolled-back UPDATE** — the faulting program is a *diff* away from
  the running one, and the diff is the localization:
  :func:`changed_decl_names` parses both sources and names every
  declaration whose text changed.  The fault must live in (or be
  provoked by) the changed code — the last-good program rendered.

* **Breaker opened by live traffic** — the running program faults on a
  user event.  The journal record of the faulting op is span-stamped
  (``repro.provenance``'s trace ↔ journal join) and carries the event's
  display path; :func:`locus_from_selection` resolves that path through
  the box ↔ code span map (the :func:`repro.provenance.why` join:
  display path → ``box_id`` → owning declaration) to the function or
  page whose code ran.

Both produce a :class:`FaultLocus`: the suspect declaration names that
focus :func:`repro.repair.candidates.generate_candidates`, plus the
fault identity (``span_id`` / ``vtimestamp``) that the enriched
``degraded`` envelope surfaces to clients.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ReproError, SyntaxProblem
from ..surface.parser import parse


@dataclass(frozen=True)
class FaultLocus:
    """Where a fault points: suspect declarations plus fault identity."""

    suspects: tuple = ()       # declaration names ((), meaning "anywhere")
    box_id: object = None      # the box whose code faulted, when known
    owner: str = None          # box_owner label ("fun f", "page p (render)")
    span_id: object = None     # tracer span of the faulting transition
    vtimestamp: object = None  # virtual-clock time of the fault


def _decl_texts(source):
    program = parse(source)
    lines = source.split("\n")
    texts = {}
    for decl in program.decls:
        name = getattr(decl, "name", None)
        if name is None:
            continue
        span = decl.span
        text = source[span.start.offset:span.end.offset].rstrip()
        first = span.start.line
        last = first + text.count("\n")
        texts[name] = tuple(lines[first - 1:last])
    return texts


def changed_decl_names(old_source, new_source):
    """Declarations added or textually changed between two programs.

    This is the rolled-back UPDATE's localization: the last-good
    program rendered, so the fault lives in (or is provoked by) exactly
    these declarations.  Returns ``()`` when either source fails to
    parse — no localization beats wrong localization.
    """
    try:
        old_texts = _decl_texts(old_source)
        new_texts = _decl_texts(new_source)
    except SyntaxProblem:
        return ()
    return tuple(
        name for name, text in new_texts.items()
        if old_texts.get(name) != text
    )


def _owner_decl_name(owner_label):
    """``box_owner``'s label → the declaration name it lives in."""
    if owner_label.startswith("fun "):
        return owner_label[4:]
    if owner_label.startswith("page "):
        return owner_label[5:].split(" ")[0].strip()
    return None


def locus_from_selection(session, path=None, text=None, fault=None):
    """The breaker trigger's localization: the faulting event's display
    path, resolved through the box ↔ code map to its owning declaration
    (the ``why()`` join without the replay — the live session is right
    here).  Degrades gracefully: an unresolvable path yields an
    unfocused locus, never an error."""
    box_id = None
    owner = None
    suspects = ()
    try:
        if path is None and text is not None:
            path = session.runtime.require_text(text)
        if path is not None:
            selection = session.select_box(tuple(path))
            if selection is not None:
                from ..provenance.why import box_owner

                box_id = selection.box_id
                owner, _node = box_owner(
                    session.runtime.system.code, box_id
                )
                name = _owner_decl_name(owner)
                if name is not None:
                    suspects = (name,)
    except (ReproError, LookupError, AttributeError):
        pass  # unfocused beats wrong
    return FaultLocus(
        suspects=suspects,
        box_id=box_id,
        owner=owner,
        span_id=getattr(fault, "span_id", None),
        vtimestamp=getattr(fault, "vtimestamp", None),
    )
