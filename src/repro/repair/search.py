"""The repair searcher: validate candidate fixes in isolated systems.

One search answers: *of the plausible small edits of this faulting
program, which ones actually work?*  For every candidate
(:mod:`repro.repair.candidates`):

1. **compile** — the candidate must parse and type (most bad candidates
   die here, for the cost of a compile);
2. **materialize an isolated system** — a throwaway
   :class:`~repro.live.session.LiveSession` holding the recorded
   session's current state, built by :func:`repro.provenance.replay_to`
   (checkpoint-seeked via the journal's byte-offset index, so a long
   history costs only its tail) — the *live* session is never touched,
   which is what keeps the search off the request path;
3. **apply as a supervised edit** — the candidate goes through the
   ordinary ``edit_source`` path under per-transition
   :class:`~repro.resilience.Budget` fuel/deadline limits; an update
   that cannot draw its first frame is rolled back, exactly as it would
   be live;
4. **re-drive recent traffic** — the last ``window`` journaled user
   events (taps/edits/backs — not past code edits) replay against the
   repaired program; every event that completes without a fault is
   evidence the repair preserves behavior.

Scoring is lexicographic — validates cleanly > more re-driven events
survive > smaller edit — with the candidate's generation index as the
deterministic tie-break, so **the ranking is a pure function of the
journal and the candidate set**: worker-thread scheduling affects
per-candidate wall times, never the order (the determinism property in
``tests/repair`` holds the searcher to this).

The whole search runs under a global :class:`RepairBudget`: at most
``max_candidates`` candidates, at most ``wall_seconds`` of wall clock
(workers observe a stop flag between candidates — early cancellation),
``parallelism`` validation threads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..core.errors import EvalError, ReproError, SyntaxProblem, TypeProblem
from ..live.session import LiveSession
from ..obs.trace import NULL_TRACER, Stopwatch, clock
from ..provenance.replayer import apply_event, replay_to
from ..resilience.supervisor import Budget
from .candidates import generate_candidates

#: Ops the validation window re-drives.  Past ``edit_source`` events
#: stay out: re-applying an old program over the candidate under test
#: would un-repair it.
_WINDOW_OPS = ("tap", "back", "edit_box", "batch")


@dataclass(frozen=True)
class RepairBudget:
    """Global limits for one search plus per-transition limits for
    every validation system.

    ``wall_seconds=None`` means no wall-clock cap (the candidate count
    still bounds the search); ``fuel``/``deadline`` build the
    :class:`~repro.resilience.Budget` each throwaway session runs
    under, so a candidate that diverges or spins blows *its* budget,
    never the server's.
    """

    max_candidates: int = 12
    wall_seconds: float = None
    window: int = 20
    parallelism: int = 4
    fuel: int = None           # None → the evaluator's default fuel
    deadline: float = None     # virtual seconds per transition

    def __post_init__(self):
        if self.max_candidates < 1:
            raise ReproError("repair budget needs at least one candidate")
        if self.parallelism < 1:
            raise ReproError("repair parallelism must be at least 1")
        if self.window < 0:
            raise ReproError("repair window must be non-negative")

    def transition_budget(self):
        kwargs = {}
        if self.fuel is not None:
            kwargs["fuel"] = self.fuel
        return Budget(deadline=self.deadline, **kwargs)


@dataclass(frozen=True)
class RankedRepair:
    """One searched candidate with its validation verdict and rank."""

    rank: int
    kind: str
    description: str
    target: str
    source: str
    edit_size: int
    compile_ok: bool
    validated: bool            # compiled + applied + first render clean
    events_ok: int             # re-driven window events that stayed clean
    events_replayed: int
    faults: int                # faults recorded across the re-drive
    elapsed: float             # wall seconds this candidate cost


@dataclass
class RepairReport:
    """The search's full answer, candidates ranked best-first."""

    token: str
    trigger: str               # "rollback" | "breaker" | "manual"
    fault: dict = field(default_factory=dict)
    generated: int = 0         # candidates generated
    searched: int = 0          # candidates actually validated
    candidates: tuple = ()     # RankedRepair, best first
    wall_seconds: float = 0.0
    budget_exhausted: bool = False

    @property
    def found(self):
        """Did the search validate at least one repair?"""
        return any(c.validated for c in self.candidates)

    def best(self):
        best = self.candidates[0] if self.candidates else None
        return best if best is not None and best.validated else None

    def candidate(self, rank):
        for item in self.candidates:
            if item.rank == rank:
                return item
        raise ReproError(
            "no repair candidate with rank {} (the report holds "
            "{})".format(rank, len(self.candidates))
        )

    def summaries(self):
        """JSON-clean per-candidate summaries (no source text — the
        ``repair{apply=rank}`` op routes by rank, so envelopes stay
        small)."""
        return [
            {
                "rank": c.rank,
                "kind": c.kind,
                "description": c.description,
                "target": c.target,
                "validated": c.validated,
                "events_ok": c.events_ok,
                "edit_size": c.edit_size,
            }
            for c in self.candidates
        ]


class _Verdict:
    """Mutable per-candidate validation outcome (pre-ranking)."""

    __slots__ = (
        "index", "candidate", "compile_ok", "validated",
        "events_ok", "events_replayed", "faults", "elapsed",
    )

    def __init__(self, index, candidate):
        self.index = index
        self.candidate = candidate
        self.compile_ok = False
        self.validated = False
        self.events_ok = 0
        self.events_replayed = 0
        self.faults = 0
        self.elapsed = 0.0

    def sort_key(self):
        # validates cleanly > preserves more recent traffic > smaller
        # edit; the generation index is the deterministic tie-break.
        return (
            not self.validated,
            -self.events_ok,
            self.candidate.edit_size,
            self.index,
        )


def _fault_summary(fault):
    """A JSON-clean description of the triggering fault (accepts a
    recorded :class:`~repro.system.runtime.Fault`, a raw exception, or
    ``None``)."""
    if fault is None:
        return {}
    error = getattr(fault, "error", fault)
    summary = {
        "type": type(error).__name__,
        "message": str(error),
    }
    for key in ("during", "span_id", "vtimestamp"):
        value = getattr(fault, key, None)
        if value is not None:
            summary[key] = value
    return summary


def _window_events(journal, token, window):
    """The last ``window`` re-drivable journaled events for ``token``."""
    if journal is None or window <= 0:
        return []
    from collections import deque

    tail = deque(maxlen=window)
    for record in journal.records_for(token):
        if record.get("kind") != "event":
            continue
        if record.get("op") not in _WINDOW_OPS:
            continue
        tail.append((record.get("op"), record.get("args") or {}))
    return list(tail)


def search_repairs(
    journal=None,
    token=None,
    *,
    faulting_source,
    last_good_source=None,
    suspects=(),
    trigger="manual",
    fault=None,
    budget=None,
    make_host_impls=None,
    make_services=None,
    session_kwargs=None,
    tracer=None,
    count=None,
    observe=None,
):
    """Search for validated repairs of ``faulting_source``.

    With a ``journal`` + ``token``, every candidate is validated
    against the recorded session's current state (checkpoint-assisted
    replay) and the recent-traffic window; without one, validation
    boots a fresh session from ``last_good_source`` (or the faulting
    source) and checks only that the candidate applies cleanly.

    ``count`` / ``observe`` override how metrics are recorded (the
    :class:`~repro.serve.host.SessionHost` passes its lock-guarded
    counter hook — searches run on background threads).  Returns a
    :class:`RepairReport`; never raises for a candidate's failure, only
    for misuse.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    count = count if count is not None else tracer.add
    observe = observe if observe is not None else tracer.observe
    budget = budget if budget is not None else RepairBudget()
    make_host_impls = make_host_impls or dict
    watch = Stopwatch()

    candidates = generate_candidates(
        faulting_source,
        last_good_source=last_good_source,
        suspects=suspects,
        max_candidates=budget.max_candidates,
    )
    count("repair.searches")
    count("repair.candidates_generated", len(candidates))

    kwargs = dict(session_kwargs or {})
    kwargs.setdefault("fault_policy", "record")
    kwargs.setdefault("supervised", True)
    kwargs["budget"] = budget.transition_budget()
    window = _window_events(journal, token, budget.window)

    def make_session():
        """A fresh isolated system at the recorded session's state."""
        if journal is not None:
            return replay_to(
                journal, token,
                make_host_impls=make_host_impls,
                make_services=make_services,
                session_kwargs=kwargs,
            ).session
        return LiveSession(
            last_good_source
            if last_good_source is not None else faulting_source,
            host_impls=make_host_impls(),
            services=make_services() if make_services else None,
            **kwargs
        )

    def validate(verdict):
        candidate_watch = Stopwatch()
        try:
            from ..surface.compile import compile_source

            try:
                compile_source(verdict.candidate.source, make_host_impls())
            except (SyntaxProblem, TypeProblem, ReproError):
                return
            verdict.compile_ok = True
            session = make_session()
            faults_before = len(session.runtime.faults)
            try:
                result = session.edit_source(verdict.candidate.source)
            except EvalError:
                return  # "raise"-policy session kwargs: the edit faulted
            clean = len(session.runtime.faults) == faults_before
            if result.status != "applied" or not clean:
                return
            verdict.validated = True
            for op, args in window:
                before = len(session.runtime.faults)
                try:
                    apply_event(session, op, args)
                except EvalError:
                    verdict.faults += 1
                except ReproError:
                    pass  # e.g. a tap whose box the repair removed
                else:
                    recorded = len(session.runtime.faults) - before
                    if recorded:
                        verdict.faults += recorded
                    else:
                        verdict.events_ok += 1
                verdict.events_replayed += 1
        finally:
            verdict.elapsed = candidate_watch.elapsed()

    stop = threading.Event()
    deadline = (
        clock() + budget.wall_seconds
        if budget.wall_seconds is not None else None
    )
    cursor_lock = threading.Lock()
    state = {"next": 0, "first_valid": None, "exhausted": False}
    verdicts = [None] * len(candidates)

    def worker():
        while True:
            if stop.is_set():
                return
            if deadline is not None and clock() >= deadline:
                state["exhausted"] = True
                stop.set()
                return
            with cursor_lock:
                index = state["next"]
                if index >= len(candidates):
                    return
                state["next"] = index + 1
            verdict = _Verdict(index, candidates[index])
            validate(verdict)
            verdicts[index] = verdict
            if verdict.validated:
                count("repair.candidates_validated")
                with cursor_lock:
                    if state["first_valid"] is None:
                        state["first_valid"] = watch.elapsed()
                        observe("repair.first_valid", state["first_valid"])

    threads = [
        threading.Thread(
            target=worker, name="repair-search-{}".format(i), daemon=True
        )
        for i in range(min(budget.parallelism, max(1, len(candidates))))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    completed = [v for v in verdicts if v is not None]
    completed.sort(key=_Verdict.sort_key)
    ranked = tuple(
        RankedRepair(
            rank=position,
            kind=v.candidate.kind,
            description=v.candidate.description,
            target=v.candidate.target,
            source=v.candidate.source,
            edit_size=v.candidate.edit_size,
            compile_ok=v.compile_ok,
            validated=v.validated,
            events_ok=v.events_ok,
            events_replayed=v.events_replayed,
            faults=v.faults,
            elapsed=v.elapsed,
        )
        for position, v in enumerate(completed, start=1)
    )
    report = RepairReport(
        token=token or "",
        trigger=trigger,
        fault=_fault_summary(fault),
        generated=len(candidates),
        searched=len(completed),
        candidates=ranked,
        wall_seconds=watch.elapsed(),
        budget_exhausted=state["exhausted"],
    )
    if report.found:
        count("repair.found")
    observe("repair.search", report.wall_seconds)
    return report
