"""Fault tolerance for live sessions (``repro.resilience``).

Three cooperating layers keep the live-programming promise — the system
*never dies under you* — honest at server scale:

* **supervision** (:mod:`.supervisor`) — per-transition
  :class:`~repro.resilience.supervisor.Budget` limits (fuel +
  virtual-clock deadline) and a
  :class:`~repro.resilience.supervisor.Supervisor` that rolls a
  faulting code UPDATE back to the last-good program;
* **durability** (:mod:`.journal`) — a write-ahead
  :class:`~repro.resilience.journal.Journal` of every state-changing
  request plus periodic image checkpoints, and
  :func:`~repro.resilience.journal.recover`, which rebuilds every
  session byte-identically after a crash;
* **chaos** (:mod:`.chaos`) — a seeded, deterministic
  :class:`~repro.resilience.chaos.FaultPlan` /
  :class:`~repro.resilience.chaos.FaultInjector` pair and wrappers
  that make services, evaluators and the HTTP layer fail on demand, so
  the failure paths above are *proved* by tests, not assumed.

See ``docs/RESILIENCE.md`` for the policy walkthrough.
"""

from .chaos import (
    ChaosEvaluator,
    ChaosServices,
    FaultInjector,
    FaultPlan,
    POINTS,
    truncate_journal,
)
from .journal import (
    RecoveryReport,
    decode_batch_events,
    encode_batch_events,
    recover,
)
from .supervisor import Budget, Supervisor, UNLIMITED, UpdateOutcome

from .._compat import deprecated_facade

# ``repro.resilience.Journal`` still works, with a DeprecationWarning —
# the supported spelling is ``from repro.api import Journal``.
__getattr__ = deprecated_facade(
    __name__, {"Journal": ("repro.resilience.journal", "Journal")}
)

__all__ = [
    "Budget",
    "ChaosEvaluator",
    "ChaosServices",
    "FaultInjector",
    "FaultPlan",
    "Journal",
    "POINTS",
    "RecoveryReport",
    "Supervisor",
    "UNLIMITED",
    "UpdateOutcome",
    "decode_batch_events",
    "encode_batch_events",
    "recover",
    "truncate_journal",
]
