"""Deterministic fault injection — the chaos harness.

Recovery code that is never exercised does not work.  This module makes
the failure paths *testable*: a seeded :class:`FaultPlan` decides, fully
deterministically, which invocations of which **injection points**
fail, and thin wrappers put those points where faults really originate:

* :class:`ChaosServices` — the host-services boundary: ``get`` may
  raise (service unavailable → :class:`~repro.core.errors.InjectedFault`,
  an :class:`~repro.core.errors.EvalError`) or charge extra virtual
  latency first (slow I/O — which trips a
  :class:`~repro.resilience.supervisor.Budget` deadline);
* :class:`ChaosEvaluator` — wraps either eval machine: a run may raise
  an injected :class:`~repro.core.errors.EvalError` outright or be
  handed a squeezed fuel allowance
  (→ :class:`~repro.core.errors.FuelExhausted`);
* the HTTP layer (``repro.serve.app``) asks the injector before
  dispatching a request and answers a *typed* 503 instead of serving —
  never an untyped 500;
* :func:`truncate_journal` — chops bytes off a write-ahead journal the
  way a crash mid-append would, so recovery tests prove the reader
  tolerates a torn tail.

Determinism: every injection point draws from its own
``random.Random("{seed}:{point}")`` stream (string seeds hash through
SHA-512, stable across processes), so two runs with the same plan and
the same per-point call sequence inject byte-identical faults — chaos
tests are ordinary reproducible tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.errors import InjectedFault, ReproError
from ..obs.trace import NULL_TRACER

#: The named injection points wrappers consult.
POINTS = (
    "eval",       # handler/render evaluation raises InjectedFault
    "fuel",       # evaluation runs under a squeezed fuel allowance
    "service",    # Services.get raises (substrate unavailable)
    "slow_io",    # Services.get charges extra virtual latency first
    "http",       # the HTTP layer refuses the request with a typed 503
)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded recipe for *which* faults to inject *how often*.

    ``rates`` maps injection-point names (:data:`POINTS`) to failure
    probabilities in ``[0, 1]``; unlisted points never fire.
    ``fuel_squeeze`` is the tiny fuel allowance a fired ``"fuel"``
    injection imposes; ``slow_io_seconds`` is the virtual latency a
    fired ``"slow_io"`` injection charges; ``max_faults`` optionally
    caps the total injections (handy for "exactly one fault" tests).
    """

    seed: int = 20130616
    rates: dict = field(default_factory=dict)
    fuel_squeeze: int = 25
    slow_io_seconds: float = 30.0
    max_faults: int = None

    def __post_init__(self):
        for point, rate in self.rates.items():
            if point not in POINTS:
                raise ReproError(
                    "unknown injection point {!r}; known: {}".format(
                        point, ", ".join(POINTS)
                    )
                )
            if not 0.0 <= rate <= 1.0:
                raise ReproError(
                    "rate for {!r} must be in [0, 1]".format(point)
                )


class FaultInjector:
    """Draws deterministic fault decisions from a :class:`FaultPlan`.

    One injector is shared by every wrapper of one system-under-chaos;
    ``counts`` records fired injections per point and the shared tracer
    accumulates the ``faults_injected`` counter.
    """

    def __init__(self, plan, tracer=None):
        self.plan = plan
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.counts = dict.fromkeys(POINTS, 0)
        self._streams = {
            point: random.Random("{}:{}".format(plan.seed, point))
            for point in POINTS
        }

    @property
    def total(self):
        return sum(self.counts.values())

    def should_fail(self, point):
        """Deterministically decide whether this invocation faults."""
        rate = self.plan.rates.get(point, 0.0)
        if rate <= 0.0:
            return False
        if (self.plan.max_faults is not None
                and self.total >= self.plan.max_faults):
            return False
        # Draw even when the decision is forced (rate >= 1) so the
        # stream position only depends on the call sequence.
        fired = self._streams[point].random() < rate
        if fired:
            self.counts[point] += 1
            self.tracer.add("faults_injected")
        return fired

    def maybe_raise(self, point, message):
        if self.should_fail(point):
            raise InjectedFault(
                "injected fault at {}: {}".format(point, message)
            )


# ---------------------------------------------------------------------------
# wrappers
# ---------------------------------------------------------------------------


class ChaosServices:
    """A :class:`~repro.system.services.Services` front that can fail.

    ``get`` — the only call natives make on the way to a substrate —
    first may charge ``slow_io_seconds`` of virtual latency (a slow
    download), then may refuse outright (the substrate is "down").
    Everything else delegates, so the wrapper is drop-in wherever a
    ``Services`` is expected.
    """

    def __init__(self, services, injector):
        self._services = services
        self._injector = injector

    @property
    def clock(self):
        return self._services.clock

    def provide(self, name, substrate):
        return self._services.provide(name, substrate)

    def get(self, name):
        if self._injector.should_fail("slow_io"):
            self.clock.advance(self._injector.plan.slow_io_seconds)
        self._injector.maybe_raise(
            "service", "service {!r} unavailable".format(name)
        )
        return self._services.get(name)

    def has(self, name):
        return self._services.has(name)

    def names(self):
        return self._services.names()


class ChaosEvaluator:
    """Wraps a :class:`~repro.eval.machine.BigStep` / ``SmallStep``.

    Satisfies the evaluator protocol ``system.transitions`` consumes
    (``run_state`` / ``run_render`` / ``run_pure``).  A fired ``"eval"``
    injection raises before the machine starts; a fired ``"fuel"``
    injection squeezes the run's fuel so the machine itself raises
    :class:`~repro.core.errors.FuelExhausted` mid-flight — partial
    store effects and all, exactly like a genuine runaway handler.
    """

    def __init__(self, evaluator, injector):
        self._evaluator = evaluator
        self._injector = injector

    def _fuel(self, fuel):
        if self._injector.should_fail("fuel"):
            return min(fuel, self._injector.plan.fuel_squeeze)
        return fuel

    def run_state(self, store, queue, expr, **kwargs):
        self._injector.maybe_raise("eval", "event handler")
        kwargs["fuel"] = self._fuel(
            kwargs.get("fuel", _default_fuel())
        )
        return self._evaluator.run_state(store, queue, expr, **kwargs)

    def run_render(self, store, expr, **kwargs):
        self._injector.maybe_raise("eval", "render")
        kwargs["fuel"] = self._fuel(
            kwargs.get("fuel", _default_fuel())
        )
        return self._evaluator.run_render(store, expr, **kwargs)

    def run_pure(self, store, expr, **kwargs):
        self._injector.maybe_raise("eval", "pure evaluation")
        kwargs["fuel"] = self._fuel(
            kwargs.get("fuel", _default_fuel())
        )
        return self._evaluator.run_pure(store, expr, **kwargs)

    def __getattr__(self, name):
        # Anything beyond the protocol (memo inspection in tests, …).
        return getattr(self._evaluator, name)


def _default_fuel():
    from ..eval.machine import DEFAULT_FUEL

    return DEFAULT_FUEL


def truncate_journal(path, drop_bytes=16):
    """Tear the tail off a journal file, as a crash mid-append would.

    Returns the number of bytes actually dropped.  Recovery must treat
    the torn trailing line as never written (the write was not
    acknowledged) and replay everything before it.
    """
    import os

    size = os.path.getsize(path)
    dropped = min(drop_bytes, size)
    with open(path, "ab") as handle:
        handle.truncate(size - dropped)
    return dropped
