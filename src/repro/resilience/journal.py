"""Durability: a write-ahead event journal plus image checkpoints.

A process crash must not cost a user their session.  Two mechanisms,
both built on facts the semantics already guarantees, make the
multi-session server recoverable:

* every state-changing request (``create`` / ``tap`` / ``back`` /
  ``edit_box`` / ``batch`` / ``edit_source`` / ``destroy``) is appended
  to a JSONL **journal** *before* it executes (write-ahead), and
* periodically a session's full image (:func:`repro.persist.save_image`
  — code + store + stack, the paper's "program = code and persistent
  data") is appended as a **checkpoint**, truncating the tail that must
  be replayed.

Recovery (:func:`recover`) rebuilds every journaled session: load the
latest checkpoint (loading an image *is* an UPDATE, so the Fig. 12
fix-up governs what survives) and re-apply the events journaled after
it.  The system between user actions is deterministic — "exactly one
internal transition is enabled" — and sessions run against virtual
clocks and seeded substrates, so replay reconstructs **byte-identical
HTML**.  A torn trailing line (crash mid-append) is treated as never
written: the request was not acknowledged, so dropping it is correct.

Record shapes (one JSON object per line)::

    {"kind": "create",     "seq": N, "token": t, "source": s, "title": u}
    {"kind": "event",      "seq": N, "token": t, "op": o, "args": {...}}
    {"kind": "checkpoint", "seq": N, "token": t, "image": {...}}
    {"kind": "destroy",    "seq": N, "token": t}
    {"kind": "recover",    "seq": N, "sessions": k}

``seq`` is a global monotone counter; per-token order in the file
matches execution order because appends happen under the session's
lock.  A ``recover`` record marks each completed crash recovery — it
names no token; its ``seq`` anchors the display-generation floor
recovered sessions restart from (see :func:`recover`).
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass

from ..core.errors import ReproError
from ..obs.trace import NULL_TRACER

#: Journal file name inside a ``--journal-dir`` directory.
JOURNAL_FILE = "journal.jsonl"

#: Ops that may appear in ``event`` records and how to replay them.
REPLAYABLE_OPS = ("tap", "back", "edit_box", "batch", "edit_source")


class Journal:
    """Append-only JSONL journal for one :class:`SessionHost`.

    ``checkpoint_every`` is the per-session event count between image
    checkpoints (the replay-tail bound).  Opening an existing journal
    resumes its sequence counter, so restarts keep appending rather
    than renumbering.
    """

    def __init__(self, directory, checkpoint_every=50, tracer=None):
        if checkpoint_every < 1:
            raise ReproError("checkpoint_every must be at least 1")
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, JOURNAL_FILE)
        self.checkpoint_every = checkpoint_every
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._lock = threading.Lock()
        self._since_checkpoint = {}     # token -> events since last image
        self._seq = 0
        self._repair()
        for record in self.read():
            self._seq = max(self._seq, record.get("seq", 0))
            self._note_for_checkpoint(record)

    def _repair(self):
        """Truncate a torn trailing line left by a crash mid-append.

        :meth:`read` drops the torn tail, but appends open the file in
        append mode — left in place, the fragment would glue onto the
        first post-recovery record, making *that* line undecodable and
        silently cutting off everything after it on the next restart.
        So opening an existing journal cuts the file back to the end of
        the last intact record.  A final line missing its newline is
        torn by definition (appends write record and newline in one
        write), even if the fragment happens to parse.
        """
        try:
            with open(self.path, "rb") as handle:
                good_end = 0
                for line in handle:
                    if not line.endswith(b"\n"):
                        break
                    try:
                        record = json.loads(line.decode("utf-8"))
                    except (ValueError, UnicodeDecodeError):
                        break
                    if not isinstance(record, dict):
                        break
                    good_end += len(line)
            size = os.path.getsize(self.path)
        except OSError:
            return
        if good_end < size:
            with open(self.path, "ab") as handle:
                handle.truncate(good_end)

    def _note_for_checkpoint(self, record):
        token = record.get("token")
        kind = record.get("kind")
        if kind in ("create", "checkpoint"):
            self._since_checkpoint[token] = 0
        elif kind == "event":
            self._since_checkpoint[token] = (
                self._since_checkpoint.get(token, 0) + 1
            )
        elif kind == "destroy":
            self._since_checkpoint.pop(token, None)

    # -- appending ----------------------------------------------------------

    def _append(self, record):
        with self._lock:
            self._seq += 1
            record["seq"] = self._seq
            line = json.dumps(record, separators=(",", ":"))
            # Open-append-close per record: survives process death (the
            # recovery contract) without holding an fd hostage; the OS
            # page cache makes this cheap, and fsync-per-request would
            # buy whole-machine-crash durability at ~10x the latency.
            with open(self.path, "a") as handle:
                handle.write(line + "\n")
            self._note_for_checkpoint(record)
            return self._seq

    def record_create(self, token, source, title):
        self._append({
            "kind": "create", "token": token,
            "source": source, "title": title,
        })

    def record_event(self, token, op, args):
        """Write-ahead one state-changing op; returns ``True`` when the
        session is due for a checkpoint."""
        if op not in REPLAYABLE_OPS:
            raise ReproError("op {!r} is not journalable".format(op))
        self._append({
            "kind": "event", "token": token, "op": op, "args": args,
        })
        self.tracer.add("journal_events")
        return self._since_checkpoint.get(token, 0) >= self.checkpoint_every

    def record_checkpoint(self, token, image):
        self._append({"kind": "checkpoint", "token": token, "image": image})
        self.tracer.add("journal_checkpoints")

    def record_destroy(self, token):
        self._append({"kind": "destroy", "token": token})

    def record_recover(self, sessions):
        """Mark a completed recovery; returns the marker's ``seq``.

        The marker keeps the global sequence strictly increasing across
        recoveries, which is what lets ``seq`` bound every display
        generation the pre-crash server could have acknowledged (see
        :func:`recover`).
        """
        return self._append({"kind": "recover", "sessions": sessions})

    # -- reading ------------------------------------------------------------

    def read(self):
        """All intact records, in order; a torn tail is dropped.

        Reading stops at the first undecodable line: a crash tears at
        most the final append, and everything after a torn write is
        unacknowledged by construction.
        """
        records = []
        try:
            with open(self.path) as handle:
                for line in handle:
                    try:
                        record = json.loads(line)
                    except ValueError:
                        break
                    if not isinstance(record, dict):
                        break
                    records.append(record)
        except OSError:
            return []
        return records


# ---------------------------------------------------------------------------
# recovery
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RecoveryReport:
    """What :func:`recover` rebuilt."""

    sessions: int = 0
    events_replayed: int = 0
    checkpoints_used: int = 0
    faults_during_replay: int = 0
    torn_tail: bool = False

    def __str__(self):
        return (
            "recovered {} session{} ({} event{} replayed, "
            "{} checkpoint{})".format(
                self.sessions, "" if self.sessions == 1 else "s",
                self.events_replayed,
                "" if self.events_replayed == 1 else "s",
                self.checkpoints_used,
                "" if self.checkpoints_used == 1 else "s",
            )
        )


class _SessionLog:
    """Everything the journal says about one token."""

    __slots__ = ("token", "source", "title", "checkpoint", "checkpoint_seq",
                 "events", "destroyed", "created")

    def __init__(self, token):
        self.token = token
        self.source = None
        self.title = None
        self.checkpoint = None
        self.checkpoint_seq = -1
        self.events = []           # (seq, op, args)
        self.destroyed = False
        self.created = False


def _collate(records):
    logs = {}
    order = []
    for record in records:
        token = record.get("token")
        if token is None:
            continue
        log = logs.get(token)
        if log is None:
            log = logs[token] = _SessionLog(token)
            order.append(log)
        kind = record.get("kind")
        if kind == "create":
            log.created = True
            log.source = record.get("source")
            log.title = record.get("title")
            log.destroyed = False
        elif kind == "event":
            log.events.append(
                (record["seq"], record.get("op"), record.get("args") or {})
            )
        elif kind == "checkpoint":
            log.checkpoint = record.get("image")
            log.checkpoint_seq = record["seq"]
        elif kind == "destroy":
            log.destroyed = True
    return order


def _replay_event(host, token, op, args):
    if op == "tap":
        if args.get("text") is not None:
            host.tap(token, text=args["text"])
        else:
            host.tap(token, path=tuple(args.get("path") or ()))
    elif op == "back":
        host.back(token)
    elif op == "edit_box":
        host.edit_box(token, tuple(args.get("path") or ()), args.get("text"))
    elif op == "batch":
        host.batch(token, decode_batch_events(args.get("events") or []))
    elif op == "edit_source":
        host.edit_source(token, args.get("source"))
    else:
        raise ReproError("journal holds unknown op {!r}".format(op))


def encode_batch_events(events):
    """Batching tuples → JSON-clean lists (paths become lists)."""
    return [
        [list(part) if isinstance(part, tuple) else part for part in event]
        for event in events
    ]


def decode_batch_events(events):
    """JSON lists → the batching tuples ``apply_batch`` consumes."""
    decoded = []
    for event in events:
        kind = event[0]
        if kind in ("tap", "edit"):
            decoded.append(tuple([kind, tuple(event[1])] + event[2:]))
        else:
            decoded.append(tuple(event))
    return decoded


def recover(host, journal):
    """Rebuild every journaled session into ``host``, then attach the
    journal so new traffic keeps appending.

    The host must not be journaling yet (replayed events would be
    re-journaled); sessions already registered under a journaled token
    are left alone.  Errors during replay are *expected*: write-ahead
    means the journal also holds ops that then failed live (a tap on a
    missing box, a rejected edit, a handler fault) — each fails
    identically on replay, which is exactly how the fault history is
    reconstructed — so they are counted (``faults_during_replay`` for
    evaluation faults), never propagated.

    Renders are *not* journaled, so at crash time the live display
    generations may have advanced past anything the journal knows.  To
    keep a stale client from ever getting ``not_modified`` for changed
    content, recovery appends a ``recover`` marker and restarts every
    rebuilt session's generation counter at ``marker_seq + 2`` — the
    global sequence bounds every generation the pre-crash server could
    have acknowledged (each bump is enabled by one journaled op, plus
    one initial render), so the floor is strictly past all of them and
    recovered generations never collide with pre-crash ones.
    """
    from ..core.errors import EvalError, ReproError

    if getattr(host, "journal", None) is not None:
        raise ReproError("recover() must run before the host journals")
    recovered = []
    events_replayed = 0
    checkpoints_used = 0
    faults = 0
    existing = set(host.tokens())
    for log in _collate(journal.read()):
        if log.destroyed or log.token in existing:
            continue
        if log.checkpoint is not None:
            host.restore(log.token, image=log.checkpoint, title=log.title)
            checkpoints_used += 1
        elif log.created and log.source is not None:
            host.restore(log.token, source=log.source, title=log.title)
        else:
            continue  # nothing intact enough to rebuild from
        for seq, op, args in log.events:
            if seq <= log.checkpoint_seq:
                continue  # already inside the checkpoint image
            try:
                _replay_event(host, log.token, op, args)
            except EvalError:
                faults += 1  # replayed faults rebuild the fault history
            except ReproError:
                pass  # failed identically live; the client saw the error
            events_replayed += 1
        recovered.append(log.token)
        host.tracer.add("journal_replays")
    if recovered:
        floor = journal.record_recover(len(recovered)) + 2
        for token in recovered:
            host.complete_recovery(token, floor)
    host.attach_journal(journal)
    report_sessions = len(recovered)
    return RecoveryReport(
        sessions=report_sessions,
        events_replayed=events_replayed,
        checkpoints_used=checkpoints_used,
        faults_during_replay=faults,
    )
