"""Durability: a write-ahead event journal plus image checkpoints.

A process crash must not cost a user their session.  Two mechanisms,
both built on facts the semantics already guarantees, make the
multi-session server recoverable:

* every state-changing request (``create`` / ``tap`` / ``back`` /
  ``edit_box`` / ``batch`` / ``edit_source`` / ``destroy``) is appended
  to a JSONL **journal** *before* it executes (write-ahead), and
* periodically a session's full image (:func:`repro.persist.save_image`
  — code + store + stack, the paper's "program = code and persistent
  data") is appended as a **checkpoint**, truncating the tail that must
  be replayed.

Recovery (:func:`recover`) rebuilds every journaled session: load the
latest checkpoint (loading an image *is* an UPDATE, so the Fig. 12
fix-up governs what survives) and re-apply the events journaled after
it.  The system between user actions is deterministic — "exactly one
internal transition is enabled" — and sessions run against virtual
clocks and seeded substrates, so replay reconstructs **byte-identical
HTML**.  A torn trailing line (crash mid-append) is treated as never
written: the request was not acknowledged, so dropping it is correct.

Beyond crash recovery, the journal is the system's **flight recorder**
(:mod:`repro.provenance`): :meth:`Journal.read` streams records lazily
so long journals replay in O(1) memory, a byte-offset **seek index**
built from create and checkpoint records lets
:func:`repro.provenance.replay_to` materialize any past sequence number
without reading the whole file prefix, and every record written while a
tracer span is open is stamped with that ``span_id`` (the span itself is
annotated with the record's ``journal_seq``), so the trace and the
journal join in both directions.

Record shapes (one JSON object per line)::

    {"kind": "create",     "seq": N, "token": t, "source": s, "title": u}
    {"kind": "event",      "seq": N, "token": t, "op": o, "args": {...}}
    {"kind": "checkpoint", "seq": N, "token": t, "image": {...}}
    {"kind": "destroy",    "seq": N, "token": t}
    {"kind": "recover",    "seq": N, "sessions": k}
    {"kind": "shutdown",   "seq": N}
    {"kind": "meta",       "seq": N, "fsync": "interval"}

**Durability policy.**  By default (``fsync="none"``) appends rely on
the OS page cache: each record is written with open-append-close, which
survives *process* death (the recovery contract) but not a machine
crash.  ``fsync="always"`` fsyncs every append — whole-machine-crash
durability at a large per-request latency cost — and
``fsync="interval"`` fsyncs at most once per ``fsync_interval`` seconds
(bounded data loss, near-``none`` throughput); see docs/RESILIENCE.md
for measured overhead.  A non-default policy is recorded in a ``meta``
header record when the journal opens (and whenever the policy changes
across restarts), so a reader can tell what durability the file was
written under; the default writes no marker, keeping existing journals
byte-identical.

Records may additionally carry ``"span_id"`` when tracing was active at
append time.  ``seq`` is a global monotone counter; per-token order in
the file matches execution order because appends happen under the
session's lock.  A ``recover`` record marks each completed crash
recovery — it names no token; its ``seq`` anchors the display-generation
floor recovered sessions restart from (see :func:`recover`).
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass

from ..core.errors import ReproError
from ..obs.trace import NULL_TRACER

#: Journal file name inside a ``--journal-dir`` directory.
JOURNAL_FILE = "journal.jsonl"

#: Ops that may appear in ``event`` records and how to replay them.
REPLAYABLE_OPS = ("tap", "back", "edit_box", "batch", "edit_source")

#: Valid journal durability policies (see :class:`Journal`).
FSYNC_POLICIES = ("none", "interval", "always")


class _TokenIndex:
    """Seek index for one token: where replay can start reading.

    ``create`` is the byte offset of the token's ``create`` record;
    ``checkpoints`` is a list of ``(seq, offset)`` pairs in file (and
    therefore seq) order.  Offsets point at the *start* of the record's
    line, so a reader can seek there and stream forward.
    """

    __slots__ = ("create", "create_seq", "checkpoints", "destroyed")

    def __init__(self):
        self.create = None
        self.create_seq = None
        self.checkpoints = []      # [(seq, byte offset)] in order
        self.destroyed = False


class Journal:
    """Append-only JSONL journal for one :class:`SessionHost`.

    ``checkpoint_every`` is the per-session event count between image
    checkpoints (the replay-tail bound).  Opening an existing journal
    resumes its sequence counter, so restarts keep appending rather
    than renumbering.
    """

    def __init__(
        self, directory, checkpoint_every=50, tracer=None,
        fsync="none", fsync_interval=1.0,
    ):
        if checkpoint_every < 1:
            raise ReproError("checkpoint_every must be at least 1")
        if fsync not in FSYNC_POLICIES:
            raise ReproError(
                "fsync must be one of {} (got {!r})".format(
                    "/".join(FSYNC_POLICIES), fsync
                )
            )
        if fsync_interval <= 0:
            raise ReproError("fsync_interval must be positive")
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, JOURNAL_FILE)
        self.checkpoint_every = checkpoint_every
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.fsync = fsync
        self.fsync_interval = fsync_interval
        self._last_fsync = None
        self._recorded_fsync = None     # last meta record's policy
        self._lock = threading.Lock()
        self._since_checkpoint = {}     # token -> events since last image
        self._seq = 0
        self._size = 0                  # end offset of the intact file
        self._index = {}                # token -> _TokenIndex
        self._repair()
        self._scan()
        # Record a non-default durability policy (or a policy change) in
        # the journal header; the default writes nothing, so existing
        # journals and seq numbering stay byte-identical.
        if (self._recorded_fsync != fsync
                and (fsync != "none" or self._recorded_fsync is not None)):
            self._append({"kind": "meta", "fsync": fsync})

    def _repair(self):
        """Truncate a torn trailing line left by a crash mid-append.

        :meth:`read` drops the torn tail, but appends open the file in
        append mode — left in place, the fragment would glue onto the
        first post-recovery record, making *that* line undecodable and
        silently cutting off everything after it on the next restart.
        So opening an existing journal cuts the file back to the end of
        the last intact record.  A final line missing its newline is
        torn by definition (appends write record and newline in one
        write), even if the fragment happens to parse.
        """
        try:
            with open(self.path, "rb") as handle:
                good_end = 0
                for line in handle:
                    if not line.endswith(b"\n"):
                        break
                    try:
                        record = json.loads(line.decode("utf-8"))
                    except (ValueError, UnicodeDecodeError):
                        break
                    if not isinstance(record, dict):
                        break
                    good_end += len(line)
            size = os.path.getsize(self.path)
        except OSError:
            return
        if good_end < size:
            with open(self.path, "ab") as handle:
                handle.truncate(good_end)

    def _scan(self):
        """Resume the sequence counter and build the seek index.

        One streaming pass (records are *not* materialized as a list —
        a long journal full of checkpoint images costs one record of
        memory at a time).
        """
        for offset, record in self._iter_offsets():
            self._seq = max(self._seq, record.get("seq", 0))
            self._size = offset + record["__bytes__"]
            del record["__bytes__"]
            if record.get("kind") == "meta":
                self._recorded_fsync = record.get("fsync")
            self._note_for_checkpoint(record)
            self._note_index(record, offset)

    def _note_for_checkpoint(self, record):
        token = record.get("token")
        kind = record.get("kind")
        if kind in ("create", "checkpoint"):
            self._since_checkpoint[token] = 0
        elif kind == "event":
            self._since_checkpoint[token] = (
                self._since_checkpoint.get(token, 0) + 1
            )
        elif kind == "destroy":
            self._since_checkpoint.pop(token, None)

    def _note_index(self, record, offset):
        token = record.get("token")
        if token is None:
            return
        kind = record.get("kind")
        index = self._index.get(token)
        if index is None:
            index = self._index[token] = _TokenIndex()
        if kind == "create":
            index.create = offset
            index.create_seq = record.get("seq")
            index.checkpoints = []
            index.destroyed = False
        elif kind == "checkpoint":
            index.checkpoints.append((record.get("seq", 0), offset))
        elif kind == "destroy":
            index.destroyed = True

    # -- appending ----------------------------------------------------------

    def _append(self, record):
        with self._lock:
            self._seq += 1
            record["seq"] = self._seq
            if self.tracer.enabled:
                span_id = self.tracer.current_span_id
                if span_id is not None:
                    record["span_id"] = span_id
                # The other direction of the join: the span that caused
                # this record learns the record's sequence number.  Only
                # create/event records annotate — a checkpoint riding
                # the same op span must not overwrite the op's own seq.
                if record.get("kind") in ("create", "event"):
                    self.tracer.annotate_current(journal_seq=self._seq)
            line = json.dumps(record, separators=(",", ":")) + "\n"
            offset = self._size
            # Open-append-close per record: survives process death (the
            # recovery contract) without holding an fd hostage; the OS
            # page cache makes this cheap.  The fsync policy decides
            # whether (and how often) to also survive machine death:
            # "always" pays the sync on every append, "interval" at most
            # once per fsync_interval seconds, "none" never (default).
            with open(self.path, "a") as handle:
                handle.write(line)
                if self.fsync == "always":
                    self._sync(handle)
                elif self.fsync == "interval":
                    from ..obs.trace import clock

                    now = clock()
                    if (self._last_fsync is None
                            or now - self._last_fsync >= self.fsync_interval):
                        self._sync(handle)
                        self._last_fsync = now
            self._size = offset + len(line.encode("utf-8"))
            self._note_for_checkpoint(record)
            self._note_index(record, offset)
            return self._seq

    def _sync(self, handle):
        handle.flush()
        os.fsync(handle.fileno())
        self.tracer.add("journal_fsyncs")

    def record_create(self, token, source, title):
        self._append({
            "kind": "create", "token": token,
            "source": source, "title": title,
        })

    def record_event(self, token, op, args):
        """Write-ahead one state-changing op; returns ``True`` when the
        session is due for a checkpoint."""
        if op not in REPLAYABLE_OPS:
            raise ReproError("op {!r} is not journalable".format(op))
        self._append({
            "kind": "event", "token": token, "op": op, "args": args,
        })
        self.tracer.add("journal_events")
        return self._since_checkpoint.get(token, 0) >= self.checkpoint_every

    def record_checkpoint(self, token, image):
        self._append({"kind": "checkpoint", "token": token, "image": image})
        self.tracer.add("journal_checkpoints")

    def record_destroy(self, token):
        self._append({"kind": "destroy", "token": token})

    def record_recover(self, sessions):
        """Mark a completed recovery; returns the marker's ``seq``.

        The marker keeps the global sequence strictly increasing across
        recoveries, which is what lets ``seq`` bound every display
        generation the pre-crash server could have acknowledged (see
        :func:`recover`).
        """
        return self._append({"kind": "recover", "sessions": sessions})

    def close(self):
        """Append a ``shutdown`` marker: this journal ended *cleanly*.

        The graceful-shutdown path (SIGTERM on ``repro serve`` or a
        cluster worker) calls this after the last in-flight request
        drains, so the next recovery — and any human reading the file —
        can tell an orderly exit from a crash.  The marker names no
        token; collation and per-token reads skip it, and like the
        ``recover`` marker it keeps the global sequence monotone across
        restarts.  Returns the marker's ``seq``.
        """
        return self._append({"kind": "shutdown"})

    # -- reading ------------------------------------------------------------

    def _iter_offsets(self, start=0):
        """Yield ``(offset, record)`` lazily from byte ``start``.

        Each record carries a transient ``"__bytes__"`` length so the
        scanner can track offsets; :meth:`read` strips it.  Reading
        stops at the first undecodable line: a crash tears at most the
        final append, and everything after a torn write is
        unacknowledged by construction.
        """
        try:
            handle = open(self.path, "rb")
        except OSError:
            return
        with handle:
            if start:
                handle.seek(start)
            offset = start
            for line in handle:
                if not line.endswith(b"\n"):
                    return
                try:
                    record = json.loads(line.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    return
                if not isinstance(record, dict):
                    return
                record["__bytes__"] = len(line)
                yield offset, record
                offset += len(line)

    def read(self, start=0):
        """All intact records from byte offset ``start``, **lazily**.

        Returns a generator — a multi-gigabyte journal is replayed in
        O(record) memory, never materialized.  A torn tail is dropped
        (see :meth:`_iter_offsets`).  Callers that need a list (tests,
        small journals) wrap it in ``list(...)``.
        """
        for _offset, record in self._iter_offsets(start):
            del record["__bytes__"]
            yield record

    def records_for(self, token, start=0, include_images=False):
        """This token's records, lazily, in journal order.

        ``include_images=False`` (the default) replaces each checkpoint
        record's ``image`` payload with its size marker — history and
        timeline queries should not drag full session images through
        memory.
        """
        for record in self.read(start=start):
            if record.get("token") != token:
                continue
            if not include_images and record.get("kind") == "checkpoint":
                record = dict(record)
                record["image"] = {"omitted": True}
            yield record

    def tokens(self):
        """Every token the journal knows, in first-create order."""
        return tuple(self._index)

    def start_offset(self, token):
        """Byte offset of the token's ``create`` record (``None`` when
        the journal never saw one — e.g. only a checkpoint survived)."""
        index = self._index.get(token)
        return index.create if index is not None else None

    def checkpoint_before(self, token, seq=None):
        """``(checkpoint_seq, offset)`` of the latest checkpoint for
        ``token`` with ``checkpoint_seq <= seq`` — the seek point that
        makes :func:`repro.provenance.replay_to` skip the prefix — or
        ``None`` when no checkpoint qualifies.

        ``seq=None`` means "the latest checkpoint at all".
        """
        index = self._index.get(token)
        if index is None:
            return None
        best = None
        for cp_seq, offset in index.checkpoints:
            if seq is not None and cp_seq > seq:
                break
            best = (cp_seq, offset)
        return best

    def last_seq(self, token=None):
        """The journal's global high-water seq (or a token's, scanning)."""
        if token is None:
            return self._seq
        last = None
        for record in self.records_for(token):
            last = record.get("seq", last)
        return last


# ---------------------------------------------------------------------------
# recovery
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RecoveryReport:
    """What :func:`recover` rebuilt."""

    sessions: int = 0
    events_replayed: int = 0
    checkpoints_used: int = 0
    faults_during_replay: int = 0
    torn_tail: bool = False

    def __str__(self):
        return (
            "recovered {} session{} ({} event{} replayed, "
            "{} checkpoint{})".format(
                self.sessions, "" if self.sessions == 1 else "s",
                self.events_replayed,
                "" if self.events_replayed == 1 else "s",
                self.checkpoints_used,
                "" if self.checkpoints_used == 1 else "s",
            )
        )


class _SessionLog:
    """Everything the journal says about one token."""

    __slots__ = ("token", "source", "title", "checkpoint", "checkpoint_seq",
                 "events", "destroyed", "created")

    def __init__(self, token):
        self.token = token
        self.source = None
        self.title = None
        self.checkpoint = None
        self.checkpoint_seq = -1
        self.events = []           # (seq, op, args)
        self.destroyed = False
        self.created = False


def _collate(records):
    logs = {}
    order = []
    for record in records:
        token = record.get("token")
        if token is None:
            continue
        log = logs.get(token)
        if log is None:
            log = logs[token] = _SessionLog(token)
            order.append(log)
        kind = record.get("kind")
        if kind == "create":
            log.created = True
            log.source = record.get("source")
            log.title = record.get("title")
            log.destroyed = False
        elif kind == "event":
            log.events.append(
                (record["seq"], record.get("op"), record.get("args") or {})
            )
        elif kind == "checkpoint":
            log.checkpoint = record.get("image")
            log.checkpoint_seq = record["seq"]
            # Events before the checkpoint are inside its image; drop
            # them so a long-lived session's replay tail stays bounded
            # in memory as well as in time.
            log.events = [
                event for event in log.events
                if event[0] > log.checkpoint_seq
            ]
        elif kind == "destroy":
            log.destroyed = True
    return order


def _replay_event(host, token, op, args):
    if op == "tap":
        if args.get("text") is not None:
            host.tap(token, text=args["text"])
        else:
            host.tap(token, path=tuple(args.get("path") or ()))
    elif op == "back":
        host.back(token)
    elif op == "edit_box":
        host.edit_box(token, tuple(args.get("path") or ()), args.get("text"))
    elif op == "batch":
        host.batch(token, decode_batch_events(args.get("events") or []))
    elif op == "edit_source":
        host.edit_source(token, args.get("source"))
    else:
        raise ReproError("journal holds unknown op {!r}".format(op))


def encode_batch_events(events):
    """Batching tuples → JSON-clean lists (paths become lists)."""
    return [
        [list(part) if isinstance(part, tuple) else part for part in event]
        for event in events
    ]


def decode_batch_events(events):
    """JSON lists → the batching tuples ``apply_batch`` consumes."""
    decoded = []
    for event in events:
        kind = event[0]
        if kind in ("tap", "edit"):
            decoded.append(tuple([kind, tuple(event[1])] + event[2:]))
        else:
            decoded.append(tuple(event))
    return decoded


def recover(host, journal):
    """Rebuild every journaled session into ``host``, then attach the
    journal so new traffic keeps appending.

    The host must not be journaling yet (replayed events would be
    re-journaled); sessions already registered under a journaled token
    are left alone.  Errors during replay are *expected*: write-ahead
    means the journal also holds ops that then failed live (a tap on a
    missing box, a rejected edit, a handler fault) — each fails
    identically on replay, which is exactly how the fault history is
    reconstructed — so they are counted (``faults_during_replay`` for
    evaluation faults), never propagated.

    Renders are *not* journaled, so at crash time the live display
    generations may have advanced past anything the journal knows.  To
    keep a stale client from ever getting ``not_modified`` for changed
    content, recovery appends a ``recover`` marker and restarts every
    rebuilt session's generation counter at ``marker_seq + 2`` — the
    global sequence bounds every generation the pre-crash server could
    have acknowledged (each bump is enabled by one journaled op, plus
    one initial render), so the floor is strictly past all of them and
    recovered generations never collide with pre-crash ones.
    """
    from ..core.errors import EvalError, ReproError

    if getattr(host, "journal", None) is not None:
        raise ReproError("recover() must run before the host journals")
    recovered = []
    events_replayed = 0
    checkpoints_used = 0
    faults = 0
    existing = set(host.tokens())
    for log in _collate(journal.read()):
        if log.destroyed or log.token in existing:
            continue
        if log.checkpoint is not None:
            host.restore(log.token, image=log.checkpoint, title=log.title)
            checkpoints_used += 1
        elif log.created and log.source is not None:
            host.restore(log.token, source=log.source, title=log.title)
        else:
            continue  # nothing intact enough to rebuild from
        for seq, op, args in log.events:
            if seq <= log.checkpoint_seq:
                continue  # already inside the checkpoint image
            try:
                _replay_event(host, log.token, op, args)
            except EvalError:
                faults += 1  # replayed faults rebuild the fault history
            except ReproError:
                pass  # failed identically live; the client saw the error
            events_replayed += 1
        recovered.append(log.token)
        host.tracer.add("journal_replays")
    if recovered:
        floor = journal.record_recover(len(recovered)) + 2
        for token in recovered:
            host.complete_recovery(token, floor)
    host.attach_journal(journal)
    report_sessions = len(recovered)
    return RecoveryReport(
        sessions=report_sessions,
        events_replayed=events_replayed,
        checkpoints_used=checkpoints_used,
        faults_during_replay=faults,
    )
