"""Supervision: transition budgets and UPDATE rollback.

The paper's system is *always live*: between user actions the scheduler
runs internal transitions until the display is valid again.  A runaway
handler or a pathological render breaks that promise — so every
transition runs under a :class:`Budget` (an evaluation-step *fuel* cap
plus a *virtual-clock deadline*), and a :class:`Supervisor` guards the
one transition that swaps code under a running program: an UPDATE whose
very first render faults is **rolled back** to the last-good code, the
way the paper's IDE keeps the old program running while the programmer
types through broken states (Section 2's fix-up relation is itself a
recovery mechanism; rolling back is its conservative dual).

Budgets are enforced *inside* :meth:`repro.system.transitions.System`
(fuel is threaded into every evaluator run; the deadline is checked
against the services' :class:`~repro.system.services.VirtualClock`
after each event/render), so they compose with both fault policies:
under ``"raise"`` a blown budget propagates as
:class:`~repro.core.errors.FuelExhausted` /
:class:`~repro.core.errors.DeadlineExceeded`; under ``"record"`` it is
logged and the session stays live — exactly like any other fault.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import (
    DeadlineExceeded,
    EvalError,
    FuelExhausted,
    ReproError,
    UpdateRejected,
)
from ..eval.machine import DEFAULT_FUEL
from ..obs.trace import NULL_TRACER


@dataclass(frozen=True)
class Budget:
    """Per-transition resource limits.

    ``fuel`` bounds evaluation steps for one handler or render run
    (:class:`~repro.core.errors.FuelExhausted` past it); ``deadline``
    bounds the *virtual* seconds a single transition may charge to the
    session's clock (:class:`~repro.core.errors.DeadlineExceeded` past
    it), ``None`` meaning unlimited.  Virtual time only advances when
    natives charge simulated latency, so the deadline is deterministic —
    the same program blows the same budget on every replay.
    """

    fuel: int = DEFAULT_FUEL
    deadline: float = None

    def __post_init__(self):
        if self.fuel < 1:
            raise ReproError("budget fuel must be at least 1")
        if self.deadline is not None and self.deadline < 0:
            raise ReproError("budget deadline must be non-negative")

    @staticmethod
    def charge(steps, fuel, machine):
        """The one fuel check every evaluation machine shares.

        Raises :class:`~repro.core.errors.FuelExhausted` once ``steps``
        exceeds ``fuel``; ``machine`` names the machine in the message
        (``"small-step"`` / ``"big-step"`` / ``"compiled"``).  The
        machines keep their own step *counting* in their hot loops and
        delegate the raise here, so the message format and the boundary
        condition cannot drift between backends.
        """
        if steps > fuel:
            raise FuelExhausted(
                "{} budget of {} exhausted".format(machine, fuel)
            )

    def check_deadline(self, rule, spent):
        """The virtual-clock deadline check shared by all transitions.

        ``spent`` is the virtual seconds one transition charged;
        ``rule`` names it (``"THUNK"``, ``"RENDER"``, …) in the
        :class:`~repro.core.errors.DeadlineExceeded` message.
        """
        deadline = self.deadline
        if deadline is not None and spent > deadline:
            raise DeadlineExceeded(
                "{} charged {:.3f} virtual seconds; the budget allows "
                "{:.3f}".format(rule, spent, deadline)
            )


#: The do-nothing budget: default fuel, no deadline.
UNLIMITED = Budget()


@dataclass(frozen=True)
class UpdateOutcome:
    """What :meth:`Supervisor.apply_update` did.

    ``status`` is ``"applied"`` (the new code is running) or
    ``"rolled_back"`` (its first render faulted, the last-good code is
    running again and ``fault`` holds the error).  ``report`` is the
    forward UPDATE's fix-up report when one completed.
    """

    status: str
    report: object = None
    fault: object = None

    @property
    def applied(self):
        return self.status == "applied"

    @property
    def rolled_back(self):
        return self.status == "rolled_back"


class Supervisor:
    """Guards code UPDATEs on a :class:`~repro.system.runtime.Runtime`.

    A well-typed program can still fault at runtime (division by zero in
    render code, an injected chaos fault, a blown budget).  The plain
    UPDATE transition commits the new code *before* the first render
    proves it can draw a frame; the supervisor adds the missing
    contract: **an update only sticks if it renders**.  On a faulting
    first render the supervisor re-applies the previous code (another
    UPDATE, so the Fig. 12 fix-up governs what state survives) and
    reports ``rolled_back`` — the old program keeps running, the model
    state is untouched, and the ``rollbacks`` counter ticks.

    Type rejections (:class:`~repro.core.errors.UpdateRejected`) are
    *not* the supervisor's business — the running program was never
    touched — and propagate unchanged.
    """

    def __init__(self, runtime, tracer=None):
        self.runtime = runtime
        self.tracer = tracer if tracer is not None else runtime.tracer
        #: Rollbacks performed, newest last: ``(fault, during)`` pairs.
        self.rollbacks = []

    def apply_update(self, new_code, natives=None):
        """UPDATE to ``new_code``; roll back if its first render faults."""
        runtime = self.runtime
        old_code = runtime.system.code
        old_natives = runtime.system.natives
        faults_before = len(runtime.faults)
        try:
            report = runtime.update_code(new_code, natives=natives)
        except UpdateRejected:
            raise  # never committed; nothing to roll back
        except EvalError as fault:
            # "raise" policy: the post-update settle faulted.
            self._roll_back(old_code, old_natives, fault)
            return UpdateOutcome(status="rolled_back", fault=fault)
        render_faults = [
            fault for fault in runtime.faults[faults_before:]
            if fault.during == "RENDER"
        ]
        if render_faults:
            # "record" policy: the fault screen is up; restore the code
            # that could draw and drop the fault screen with it.
            self._roll_back(old_code, old_natives, render_faults[0].error)
            return UpdateOutcome(
                status="rolled_back",
                report=report,
                fault=render_faults[0].error,
            )
        return UpdateOutcome(status="applied", report=report)

    def _roll_back(self, old_code, old_natives, fault):
        runtime = self.runtime
        runtime.system.update(old_code, natives=old_natives)
        runtime._settle()
        self.rollbacks.append((fault, "UPDATE"))
        self.tracer.add("rollbacks")
