"""``repro.serve`` — a multi-session live-programming server.

The paper's runtime is single-programmer: one
:class:`~repro.live.session.LiveSession`, one display, one event queue.
This package puts a service in front of the Fig. 6–9 transition system
so *many* programs can be live at once:

* :mod:`repro.serve.host` — :class:`SessionHost`, a token-keyed session
  registry with per-session locks and an LRU pool.  Idle sessions are
  evicted by serializing them to session images
  (:func:`repro.persist.save_image`) and transparently rehydrated on the
  next request — eviction *is* save/resume, so the Fig. 12 fix-up gives
  correct edit-while-evicted semantics for free;
* :mod:`repro.serve.protocol` — the versioned JSON wire protocol
  (``create`` / ``tap`` / ``back`` / ``edit_source`` / ``probe`` /
  ``render`` / ``snapshot`` / ``stats`` …) with 304-style
  display-generation render responses;
* :mod:`repro.serve.batching` — event batching and render coalescing:
  N queued events produce one RENDER, the semantics' "render only on
  quiescence";
* :mod:`repro.serve.app` — a stdlib-only ``ThreadingHTTPServer`` JSON
  API behind the ``repro serve`` CLI subcommand.

Everything is standard library only, like the rest of the repository.
See ``docs/SERVER.md`` for the protocol reference and pooling semantics.
"""

from .batching import BatchReport, apply_batch
from .protocol import PROTOCOL_VERSION, handle_request

from .._compat import deprecated_facade

__all__ = [
    "BatchReport",
    "PROTOCOL_VERSION",
    "SessionHost",
    "apply_batch",
    "handle_request",
]

# ``repro.serve.SessionHost`` still works, with a DeprecationWarning —
# the supported spelling is ``from repro.api import SessionHost``.
__getattr__ = deprecated_facade(
    __name__, {"SessionHost": ("repro.serve.host", "SessionHost")}
)
