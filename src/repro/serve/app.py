"""The HTTP face of the server: stdlib-only JSON over POST.

* ``POST /`` (or ``/api``) — body is one protocol request
  (:mod:`repro.serve.protocol`), response is one protocol response;
* ``GET /stats`` — the ``stats`` op, for dashboards and smoke tests;
* ``GET /healthz`` — liveness probe.

:class:`http.server.ThreadingHTTPServer` gives one thread per request;
the :class:`~repro.serve.host.SessionHost` locks make that safe.  No
framework, no dependency — the whole wire format is ``json`` +
``Content-Length``.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..core.errors import InjectedFault, ReproError
from .host import SessionHost
from .protocol import error_response, handle_request

#: Cap request bodies (sources, batches) well above any legitimate use.
MAX_BODY_BYTES = 4 * 1024 * 1024


def make_handler(host, quiet=True, chaos=None):
    """The request-handler class bound to one :class:`SessionHost`.

    ``chaos`` is an optional
    :class:`~repro.resilience.chaos.FaultInjector`: when its ``"http"``
    point fires, the request is refused *before* dispatch with a typed
    503 — the chaos suite's way of proving clients see overload as a
    first-class protocol error, never a hung socket or an untyped 500.
    """

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve/1"

        def log_message(self, fmt, *args):  # pragma: no cover - noise
            if not quiet:
                BaseHTTPRequestHandler.log_message(self, fmt, *args)

        def _respond(self, payload, status=200):
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self):
            if self.path == "/healthz":
                self._respond({"ok": True})
            elif self.path == "/stats":
                self._respond(handle_request(host, {"op": "stats"}))
            else:
                self._respond(
                    {"ok": False,
                     "error": {"type": "BadRequest",
                               "message": "GET serves /stats and /healthz; "
                                          "POST protocol requests to /"}},
                    status=404,
                )

        def do_POST(self):
            if self.path not in ("/", "/api"):
                self._respond(
                    {"ok": False,
                     "error": {"type": "BadRequest",
                               "message": "POST to / or /api"}},
                    status=404,
                )
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
            except ValueError:
                length = -1
            if length < 0 or length > MAX_BODY_BYTES:
                self._respond(
                    {"ok": False,
                     "error": {"type": "BadRequest",
                               "message": "missing or oversized body"}},
                    status=400,
                )
                return
            try:
                request = json.loads(self.rfile.read(length) or b"null")
            except (ValueError, UnicodeDecodeError):
                self._respond(
                    {"ok": False,
                     "error": {"type": "BadRequest",
                               "message": "body is not valid JSON"}},
                    status=400,
                )
                return
            op = request.get("op") if isinstance(request, dict) else None
            if chaos is not None and chaos.should_fail("http"):
                # The same type ("InjectedFault") and protocol/op
                # envelope every other injected fault reaches the wire
                # with — clients dispatch on one name for one fault
                # class.  No tracer: the refusal never entered a span.
                self._respond(
                    error_response(
                        op,
                        InjectedFault(
                            "injected fault at http: request refused"
                        ),
                    ),
                    status=503,
                )
                return
            try:
                response = handle_request(host, request)
            except ReproError as error:
                # A fault that escaped the protocol dispatcher (e.g.
                # raised while *serializing* a response) is still a
                # session-level event, not a server bug: answer with
                # the same typed shape the protocol uses — an
                # EvalFault / FuelExhausted / UpdateRejected must never
                # reach a client as an opaque 500.
                self._respond(
                    error_response(op, error, tracer=host.tracer),
                    status=500,
                )
                return
            except Exception as error:  # a server bug, not a client error
                self._respond(
                    {"ok": False,
                     "error": {"type": "InternalError",
                               "message": "{}: {}".format(
                                   type(error).__name__, error)}},
                    status=500,
                )
                return
            self._respond(response)

    return Handler


def make_server(host, port=0, bind="127.0.0.1", quiet=True, chaos=None):
    """A ready-to-serve :class:`ThreadingHTTPServer` on ``bind:port``.

    ``port=0`` picks an ephemeral port; read the actual one from
    ``server.server_address[1]``.
    """
    if not isinstance(host, SessionHost):
        raise TypeError("make_server expects a SessionHost")
    server = ThreadingHTTPServer(
        (bind, port), make_handler(host, quiet=quiet, chaos=chaos)
    )
    server.daemon_threads = True
    server.repro_host = host
    return server


def serve(host, port=0, bind="127.0.0.1", quiet=True, ready=None):
    """Blocking serve loop; ``ready(server)`` is called once listening."""
    server = make_server(host, port=port, bind=bind, quiet=quiet)
    if ready is not None:
        ready(server)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.server_close()
    return server
