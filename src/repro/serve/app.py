"""The HTTP face of the server: stdlib-only JSON over POST.

* ``POST /`` (or ``/api``) — body is one protocol request
  (:mod:`repro.serve.protocol`), response is one protocol response;
* ``GET /stats`` — the ``stats`` op, for dashboards and smoke tests;
* ``GET /metrics`` — Prometheus text exposition
  (:mod:`repro.obs.metrics`): counters, gauges and latency histograms,
  merged across the whole fleet when the face is a cluster front;
* ``GET /healthz`` — liveness: role, session counts, journaling flag
  for a single host; per-worker liveness for a cluster.  Answers 503
  (body still JSON, ``"ok": false``) when any worker is down, so load
  balancers and the CI smoke tests read health without parsing.

:class:`http.server.ThreadingHTTPServer` gives one thread per request;
the :class:`~repro.serve.host.SessionHost` locks make that safe.  No
framework, no dependency — the whole wire format is ``json`` +
``Content-Length``.

**One HTTP layer, two backends.**  The handler talks to a *face* — an
object with ``dispatch(request)``, ``healthz()`` and ``tracer`` — not
to a :class:`SessionHost` directly.  A host is wrapped in
:class:`_HostFace`; a :class:`repro.cluster.frontend.ClusterRouter`
satisfies the contract natively.  Everything about body parsing,
typed-error envelopes and graceful drains is therefore written once.

**Graceful shutdown.**  The server counts in-flight requests;
:func:`shutdown_gracefully` stops the accept loop, waits for the count
to reach zero (bounded), closes the journal with a clean-shutdown
marker, then closes the socket — SIGTERM never tears a request midway
(see :func:`repro.cli.cmd_serve` for the signal wiring).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..core.errors import InjectedFault, ReproError
from ..obs.metrics import CONTENT_TYPE as _METRICS_CONTENT_TYPE
from ..obs.metrics import render_prometheus
from .host import SessionHost
from .protocol import error_response, handle_request

#: Cap request bodies (sources, batches) well above any legitimate use.
MAX_BODY_BYTES = 4 * 1024 * 1024


class _HostFace:
    """The single-host backend of the HTTP layer's face contract."""

    def __init__(self, host):
        self.host = host
        self.tracer = host.tracer

    def dispatch(self, request):
        return handle_request(self.host, request)

    def healthz(self):
        payload = {"ok": True, "role": "host"}
        payload.update(self.host.healthz())
        return payload

    def metrics_text(self):
        """The Prometheus exposition document for ``GET /metrics``."""
        counters, gauges, histograms = self.host.observability_snapshot()
        return render_prometheus(
            counters=counters, gauges=gauges, histograms=histograms
        )

    def drain(self):
        """Single hosts drain at the journal, handled by the caller."""


def _as_face(target):
    if isinstance(target, SessionHost):
        return _HostFace(target)
    if hasattr(target, "dispatch") and hasattr(target, "healthz"):
        return target
    raise TypeError(
        "expected a SessionHost or a face with dispatch()/healthz()"
    )


def make_handler(target, quiet=True, chaos=None):
    """The request-handler class bound to one host (or cluster router).

    ``chaos`` is an optional
    :class:`~repro.resilience.chaos.FaultInjector`: when its ``"http"``
    point fires, the request is refused *before* dispatch with a typed
    503 — the chaos suite's way of proving clients see overload as a
    first-class protocol error, never a hung socket or an untyped 500.
    """
    face = _as_face(target)

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve/1"
        # Keep-alive POSTs otherwise hit the Nagle/delayed-ACK
        # interaction: ~40ms stalls between the response's header and
        # body segments dwarf every warm render.
        disable_nagle_algorithm = True

        def log_message(self, fmt, *args):  # pragma: no cover - noise
            if not quiet:
                BaseHTTPRequestHandler.log_message(self, fmt, *args)

        def _respond(self, payload, status=200):
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _enter(self):
            track = getattr(self.server, "track_request", None)
            if track is not None:
                track(1)

        def _leave(self):
            track = getattr(self.server, "track_request", None)
            if track is not None:
                track(-1)

        def do_GET(self):
            self._enter()
            try:
                if self.path == "/healthz":
                    payload = face.healthz()
                    ok = bool(payload.get("ok", True))
                    self._respond(payload, status=200 if ok else 503)
                elif self.path == "/stats":
                    self._respond(face.dispatch({"op": "stats"}))
                elif self.path == "/metrics":
                    metrics_text = getattr(face, "metrics_text", None)
                    if metrics_text is None:
                        self._respond(
                            {"ok": False,
                             "error": {"type": "BadRequest",
                                       "message": "this face exposes "
                                                  "no metrics"}},
                            status=404,
                        )
                    else:
                        body = metrics_text().encode("utf-8")
                        self.send_response(200)
                        self.send_header(
                            "Content-Type", _METRICS_CONTENT_TYPE
                        )
                        self.send_header(
                            "Content-Length", str(len(body))
                        )
                        self.end_headers()
                        self.wfile.write(body)
                else:
                    self._respond(
                        {"ok": False,
                         "error": {"type": "BadRequest",
                                   "message": "GET serves /stats, "
                                              "/healthz and /metrics; "
                                              "POST protocol requests "
                                              "to /"}},
                        status=404,
                    )
            finally:
                self._leave()

        def do_POST(self):
            self._enter()
            try:
                self._post()
            finally:
                self._leave()

        def _post(self):
            if self.path not in ("/", "/api"):
                self._respond(
                    {"ok": False,
                     "error": {"type": "BadRequest",
                               "message": "POST to / or /api"}},
                    status=404,
                )
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
            except ValueError:
                length = -1
            if length < 0 or length > MAX_BODY_BYTES:
                self._respond(
                    {"ok": False,
                     "error": {"type": "BadRequest",
                               "message": "missing or oversized body"}},
                    status=400,
                )
                return
            try:
                request = json.loads(self.rfile.read(length) or b"null")
            except (ValueError, UnicodeDecodeError):
                self._respond(
                    {"ok": False,
                     "error": {"type": "BadRequest",
                               "message": "body is not valid JSON"}},
                    status=400,
                )
                return
            op = request.get("op") if isinstance(request, dict) else None
            if chaos is not None and chaos.should_fail("http"):
                # The same type ("InjectedFault") and protocol/op
                # envelope every other injected fault reaches the wire
                # with — clients dispatch on one name for one fault
                # class.  No tracer: the refusal never entered a span.
                self._respond(
                    error_response(
                        op,
                        InjectedFault(
                            "injected fault at http: request refused"
                        ),
                    ),
                    status=503,
                )
                return
            try:
                response = face.dispatch(request)
            except ReproError as error:
                # A fault that escaped the protocol dispatcher (e.g.
                # raised while *serializing* a response) is still a
                # session-level event, not a server bug: answer with
                # the same typed shape the protocol uses — an
                # EvalFault / FuelExhausted / UpdateRejected must never
                # reach a client as an opaque 500.
                self._respond(
                    error_response(op, error, tracer=face.tracer),
                    status=500,
                )
                return
            except Exception as error:  # a server bug, not a client error
                self._respond(
                    {"ok": False,
                     "error": {"type": "InternalError",
                               "message": "{}: {}".format(
                                   type(error).__name__, error)}},
                    status=500,
                )
                return
            self._respond(response)

    return Handler


def make_server(target, port=0, bind="127.0.0.1", quiet=True, chaos=None):
    """A ready-to-serve :class:`ThreadingHTTPServer` on ``bind:port``.

    ``target`` is a :class:`SessionHost` or a cluster router face.
    ``port=0`` picks an ephemeral port; read the actual one from
    ``server.server_address[1]``.  The server tracks in-flight requests
    so :func:`shutdown_gracefully` can drain them.
    """
    server = ThreadingHTTPServer(
        (bind, port), make_handler(target, quiet=quiet, chaos=chaos)
    )
    server.daemon_threads = True
    server.repro_host = target
    in_flight_lock = threading.Lock()
    drained = threading.Event()
    drained.set()
    server.in_flight = 0

    def track_request(delta):
        with in_flight_lock:
            server.in_flight += delta
            if server.in_flight == 0:
                drained.set()
            else:
                drained.clear()

    server.track_request = track_request
    server.request_drained = drained
    return server


def shutdown_gracefully(server, journal=None, drain_timeout=5.0):
    """Stop accepting, finish in-flight requests, close the journal.

    Must be called from a thread other than the one running
    ``serve_forever`` (that is, from a signal-triggered helper thread —
    ``server.shutdown()`` waits for the serve loop to exit).  Returns
    ``True`` iff every in-flight request completed within
    ``drain_timeout``; either way the journal (when given) gets its
    clean-shutdown marker *after* the drain, so the marker truthfully
    claims every journaled op also finished executing.
    """
    server.shutdown()
    drained = server.request_drained.wait(drain_timeout)
    if journal is not None:
        journal.close()
    server.server_close()
    return drained


def serve(target, port=0, bind="127.0.0.1", quiet=True, ready=None):
    """Blocking serve loop; ``ready(server)`` is called once listening."""
    server = make_server(target, port=port, bind=bind, quiet=quiet)
    if ready is not None:
        ready(server)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.server_close()
    return server
