"""Event batching and render coalescing.

The scheduler of Fig. 9 already renders only on quiescence: EVENT has
priority over RENDER in
:meth:`~repro.system.transitions.System.enabled_internal_transition`, so
a queue holding N events drains completely before the single RENDER
fires.  The interactive :class:`~repro.system.runtime.Runtime` hides
this by settling after *every* user action — right for one programmer at
one screen, wasteful for a server receiving a burst of taps from a
client that has not seen any of the intermediate displays anyway.

:func:`apply_batch` restores the semantics' batching: it enqueues a
whole burst of user events and settles once, so N events cost one
render.  Targets (tap paths, editable boxes) are resolved against the
**reference display** — the last valid display, i.e. exactly the view
the remote client was looking at when it queued the events.  This is the
same kind of implementation layering as the Section 5 reuse
optimization: the enqueued events are byte-identical to what TAP / EDIT
/ BACK would enqueue one at a time against that display.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ReproError, SystemError_
from ..core.names import ATTR_ONEDIT, ATTR_ONTAP
from ..boxes.paths import innermost_box_with_attr, resolve
from ..eval.values import format_for_post
from ..system.events import ExecEvent, PopEvent, edit_thunk


@dataclass(frozen=True)
class BatchReport:
    """What one flushed batch did."""

    events: int        # user events applied
    renders: int       # RENDER transitions actually fired (usually 1)
    coalesced: int     # renders saved vs. the one-settle-per-event path

    @property
    def quiescent_render(self):
        return self.renders <= 1


def _find_text(display, text):
    """Path of the first box posting exactly ``text`` in ``display``."""
    for path, box in display.walk():
        for leaf in box.leaves():
            if format_for_post(leaf) == text:
                return path
    return None


def _reference_display(runtime):
    system = runtime.system
    display = system.state.display
    if system.state.display_is_valid():
        return display
    if system._last_valid_display is not None:
        return system._last_valid_display
    raise SystemError_("batch events require a previously valid display")


def apply_batch(session, events):
    """Apply a burst of user events to ``session`` with one settle.

    ``events`` is a sequence of tuples:

    * ``("tap", path)`` — tap the box at ``path`` (bubbles to the nearest
      ``ontap`` handler, like TAP);
    * ``("tap_text", text)`` — tap the first box displaying ``text``;
    * ``("edit", path, text)`` — type ``text`` into the editable box at
      ``path`` (like EDIT);
    * ``("back",)`` — the device back button (POP).

    Returns a :class:`BatchReport`.  ``renders_coalesced`` (the number of
    renders saved relative to settling after every event) is added to the
    session's tracer metrics.
    """
    runtime = session.runtime
    runtime.start()
    system = runtime.system
    tracer = runtime.tracer
    reference = _reference_display(runtime)
    queued = 0
    with tracer.span("batch", events=len(tuple(events))) as span:
        for event in events:
            kind = event[0]
            if kind == "tap":
                path, box = innermost_box_with_attr(
                    reference, tuple(event[1]), ATTR_ONTAP
                )
                if box is None:
                    raise SystemError_(
                        "no box at or above {} has an ontap handler".format(
                            list(event[1])
                        )
                    )
                system.state.queue.enqueue(
                    ExecEvent(box.get_attr(ATTR_ONTAP))
                )
                system._record("TAP", "/".join(str(i) for i in path))
            elif kind == "tap_text":
                path = _find_text(reference, event[1])
                if path is None:
                    raise ReproError(
                        "no box displays {!r} in the reference "
                        "display".format(event[1])
                    )
                _path, box = innermost_box_with_attr(
                    reference, path, ATTR_ONTAP
                )
                if box is None:
                    raise SystemError_(
                        "the box displaying {!r} has no ontap "
                        "handler".format(event[1])
                    )
                system.state.queue.enqueue(
                    ExecEvent(box.get_attr(ATTR_ONTAP))
                )
                system._record("TAP", event[1])
            elif kind == "edit":
                box = resolve(reference, tuple(event[1]))
                handler = box.get_attr(ATTR_ONEDIT)
                if handler is None:
                    raise SystemError_(
                        "box at {} has no onedit handler".format(
                            list(event[1])
                        )
                    )
                system.state.queue.enqueue(
                    ExecEvent(edit_thunk(handler, event[2]))
                )
                system._record("EDIT", event[2])
            elif kind == "back":
                system.state.queue.enqueue(PopEvent())
                system._record("BACK")
            else:
                raise ReproError("unknown batch event kind {!r}".format(kind))
            tracer.add("events_queued")
            system.state.invalidate_display()
            queued += 1
        renders_before = sum(
            1 for t in system.trace if t.rule == "RENDER"
        )
        runtime._settle()
        renders = sum(
            1 for t in system.trace if t.rule == "RENDER"
        ) - renders_before
        coalesced = max(0, queued - renders)
        if coalesced:
            tracer.add("renders_coalesced", coalesced)
        span.annotate(renders=renders, coalesced=coalesced)
    return BatchReport(events=queued, renders=renders, coalesced=coalesced)
