"""The multi-session host: registry, locks, LRU pool, image eviction.

A :class:`SessionHost` owns many live programs at once.  Each session is
keyed by an opaque token and guarded by its own lock, so HTTP worker
threads can drive different sessions concurrently while operations on
one session stay serialized.

**Pooling.**  Only ``pool_size`` sessions are *resident* (a full
:class:`~repro.live.session.LiveSession`: compiled code, evaluator,
display).  When the pool overflows, the least-recently-used idle
sessions are **evicted**: serialized to session images with
:func:`repro.persist.save_image` and dropped.  The next request for an
evicted session transparently **rehydrates** it with
:func:`~repro.persist.load_image`.  Because loading an image *is* an
UPDATE (the saved state is fixed up against the code with the Fig. 12
relation), eviction is invisible to clients: the rehydrated display is
byte-identical to a never-evicted one, and an ``edit_source`` arriving
while the session is paged out behaves exactly like a live edit.

**Generations.**  Every session carries a display generation — a counter
bumped whenever the HTML rendition of its display actually changes
(content-hashed via
:func:`repro.render.html_backend.display_fingerprint`).  ``render``
requests carrying the client's last generation get a 304-style
"not modified" answer without re-rendering.

**Resilience.**  Every state-changing op runs through a per-session
**circuit breaker**: ``quarantine_after`` consecutive faulting
operations open it, after which interactions are refused with the typed
:class:`~repro.core.errors.SessionQuarantined` error while ``render``
keeps serving the last-good document — degraded, never dead.  An
``edit_source`` that applies cleanly (the programmer fixing the bug)
closes the breaker.  Attaching a
:class:`~repro.resilience.journal.Journal` additionally write-ahead
logs every state-changing op with periodic image checkpoints, so
:func:`repro.resilience.recover` can rebuild every session after a
crash.  See ``docs/RESILIENCE.md``.

**Metrics.**  The host records ``sessions_created`` /
``sessions_evicted`` / ``sessions_rehydrated`` / ``renders_coalesced`` /
``bytes_served`` / ``sessions_quarantined`` / ``journal_events`` into
the shared metric catalog (``repro.obs.CATALOG``); counter updates are
serialized behind a lock because :class:`~repro.obs.Tracer` itself is
single-threaded by design.
"""

from __future__ import annotations

import secrets
import threading
from collections import OrderedDict
from contextlib import contextmanager

from ..core.errors import EvalError, ReproError, SessionQuarantined
from ..live.session import LiveSession
from ..obs.trace import NULL_TRACER
from ..persist import load_image, save_image
from ..render.html_backend import display_fingerprint, render_html
from ..system.services import Services
from .batching import apply_batch


class UnknownToken(ReproError):
    """No session (resident or evicted) is registered under this token."""


class _Entry:
    """One hosted session: either resident (``session``) or an image."""

    __slots__ = (
        "token", "lock", "session", "image",
        "generation", "html", "fingerprint", "dirty", "title",
        "consecutive_faults", "quarantined",
        "repair_report", "repair_thread",
    )

    def __init__(self, token, session, title):
        self.token = token
        # Deliberately non-reentrant: eviction probes busyness with a
        # non-blocking acquire, which must fail even when the probing
        # thread itself is the one using the session.
        self.lock = threading.Lock()
        self.session = session     # LiveSession when resident, else None
        self.image = None          # persist image dict when evicted
        self.generation = 0        # bumped when the HTML bytes change
        self.html = None           # last rendered document
        self.fingerprint = None    # content hash behind ``generation``
        self.dirty = True          # a mutation may have changed the view
        self.title = title
        # Circuit breaker (repro.resilience): faults on consecutive
        # operations open the breaker; the entry outlives eviction, so
        # paging a faulty session out does not reset its record.
        self.consecutive_faults = 0
        self.quarantined = False
        # Live repair (repro.repair): the latest search report and the
        # background thread computing it, if a search is in flight.
        self.repair_report = None
        self.repair_thread = None

    @property
    def resident(self):
        return self.session is not None


class _GuardedOutcome:
    """What a ``_guarded`` body reports back: did the op actually run
    against the runtime?  Rejected edits clear the flag so they leave
    the breaker's fault streak untouched."""

    __slots__ = ("executed",)

    def __init__(self):
        self.executed = True


class SessionHost:
    """A registry of live sessions behind an LRU pool.

    ``make_services`` / ``make_host_impls`` are factories called once per
    session construction *and* once per rehydration, so every session
    gets a fresh virtual clock and substrate set (virtual time and
    request counts are not part of the persistent image — only code and
    state are, exactly as in :mod:`repro.persist`).

    ``session_kwargs`` (e.g. ``reuse_boxes=True, memo_render=True``) are
    passed to every session; sessions always run with the null tracer —
    host-level metrics live on ``self.tracer``.
    """

    def __init__(
        self,
        pool_size=16,
        default_source=None,
        make_host_impls=None,
        make_services=None,
        tracer=None,
        session_kwargs=None,
        quarantine_after=3,
        journal=None,
        memo_store=None,
        repair=None,
        backend=None,
    ):
        if pool_size < 1:
            raise ReproError("pool_size must be at least 1")
        if quarantine_after is not None and quarantine_after < 1:
            raise ReproError("quarantine_after must be at least 1 or None")
        self.pool_size = pool_size
        self.default_source = default_source
        self._make_host_impls = make_host_impls or dict
        self._make_services = make_services or Services
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.session_kwargs = dict(session_kwargs or {})
        #: Evaluator backend for every session (repro.eval.backends):
        #: a registered name (``"tree"``/``"compiled"``) or an
        #: :class:`~repro.eval.backends.EvalBackend`.  A ``backend`` in
        #: ``session_kwargs`` takes precedence over this convenience
        #: keyword; ``None`` leaves the sessions on their default.
        if backend is not None:
            self.session_kwargs.setdefault("backend", backend)
        #: Circuit breaker threshold: this many *consecutive* faulting
        #: operations quarantine a session (``None`` disables).  A
        #: quarantined session refuses interactions with the typed
        #: :class:`~repro.core.errors.SessionQuarantined` error but
        #: keeps serving its last-good display — degraded, never dead —
        #: and a successfully *applied* ``edit_source`` (the programmer
        #: fixing the bug) closes the breaker again.
        self.quarantine_after = quarantine_after
        #: Write-ahead journal (repro.resilience) — attach one and every
        #: state-changing op is logged before it runs, with periodic
        #: image checkpoints; see :func:`repro.resilience.recover`.
        self.journal = journal
        self._adopt_journal_tracer()
        #: Per-program shared memo cache (repro.incremental /
        #: repro.cluster).  When given, every session — created,
        #: restored or rehydrated — runs against a
        #: :class:`~repro.incremental.store.SessionMemoView` over this
        #: one store instead of a private per-System cache, so sessions
        #: running the same app warm each other; validated hits on
        #: foreign entries count ``cluster.memo.shared_hits``.  Passing
        #: a store implies ``memo_render=True`` for every session.
        self.memo_store = memo_store
        #: Live repair (repro.repair).  ``repair=True`` (or a
        #: :class:`~repro.repair.RepairBudget`) arms *automatic* repair
        #: search: a rolled-back ``edit_source`` or a breaker opening
        #: launches a budgeted candidate search on a background thread —
        #: the live session is never touched, so the search stays off
        #: the request path.  ``None`` leaves only the explicit
        #: ``repair_search`` entry point.
        if repair is True:
            from ..repair import RepairBudget

            repair = RepairBudget()
        self.repair = repair
        self._lock = threading.Lock()          # registry + LRU order
        self._metrics_lock = threading.Lock()  # tracer counter updates
        self._entries = OrderedDict()          # token -> _Entry, LRU order

    # -- metrics ------------------------------------------------------------

    def _count(self, name, amount=1):
        with self._metrics_lock:
            self.tracer.add(name, amount)

    def metrics(self):
        """Counter/gauge snapshot (``{}`` with the null tracer)."""
        with self._metrics_lock:
            return self.tracer.metrics()

    # -- session lifecycle --------------------------------------------------

    def create(self, source=None, title=None, token=None):
        """Boot a new live session; returns its token.

        ``source`` defaults to the host's ``default_source`` (the app the
        server was started with).  ``token`` installs the session under a
        caller-chosen token instead of a freshly minted one — the cluster
        front mints tokens itself so it can consistent-hash them to a
        worker *before* the create lands (see :mod:`repro.cluster`).
        """
        if source is None:
            source = self.default_source
        if source is None:
            raise ReproError(
                "create needs a source (the host has no default app)"
            )
        if token is None:
            token = "s-" + secrets.token_hex(8)
        elif not isinstance(token, str) or not token:
            raise ReproError("create token must be a non-empty string")
        session = self._make_session(source, token)
        entry = _Entry(token, session, title or token)
        with self._lock:
            if token in self._entries:
                raise ReproError(
                    "token {!r} is already registered".format(token)
                )
            self._entries[token] = entry
        if self.journal is not None:
            self.journal.record_create(token, source, entry.title)
        self._count("sessions_created")
        self._enforce_capacity(protect=entry)
        return token

    def _session_kwargs_for(self, token):
        """Per-session construction kwargs; wires the shared memo view."""
        kwargs = dict(self.session_kwargs)
        if self.memo_store is not None:
            from ..incremental.store import SessionMemoView

            kwargs["memo_store"] = SessionMemoView(
                self.memo_store, origin=token, count=self._count
            )
        return kwargs

    def _make_session(self, source, token):
        return LiveSession(
            source,
            host_impls=self._make_host_impls(),
            services=self._make_services(),
            **self._session_kwargs_for(token)
        )

    def restore(self, token, source=None, image=None, title=None):
        """Install a session under a *known* token (journal recovery).

        ``image`` restores a checkpoint (loading is an UPDATE with the
        Fig. 12 fix-up); ``source`` boots fresh, for sessions journaled
        before their first checkpoint.  The journal replays events on
        top afterwards.
        """
        if image is not None:
            session = load_image(
                image,
                host_impls=self._make_host_impls(),
                services=self._make_services(),
                **self._session_kwargs_for(token)
            )
        elif source is not None:
            session = self._make_session(source, token)
        else:
            raise ReproError("restore needs an image or a source")
        entry = _Entry(token, session, title or token)
        meta = getattr(session, "last_restore_meta", None) or {}
        entry.generation = meta.get("generation", 0)
        with self._lock:
            if token in self._entries:
                raise ReproError(
                    "token {!r} is already registered".format(token)
                )
            self._entries[token] = entry
        self._enforce_capacity(protect=entry)
        return token

    def complete_recovery(self, token, generation_floor):
        """Seal one recovered session (see :func:`repro.resilience.recover`).

        Renders are not journaled, so the pre-crash server may have
        acknowledged display generations ahead of anything replay
        rebuilds; re-issuing those numbers for different content would
        let a stale client poll into ``not_modified`` forever.  The
        floor (derived from the journal's global sequence, which bounds
        every pre-crash generation) restarts the counter strictly past
        them, and priming the fingerprint keeps the next render from
        spending an extra bump on the restore itself.
        """
        with self.session(token) as entry:
            entry.generation = max(entry.generation, generation_floor)
            entry.fingerprint = display_fingerprint(entry.session.display)
            entry.dirty = True

    def attach_journal(self, journal):
        """Start write-ahead journaling (after recovery has replayed)."""
        self.journal = journal
        self._adopt_journal_tracer()

    def _adopt_journal_tracer(self):
        """Give an untraced journal the host's tracer.

        Span stamping (journal record ↔ tracer span, both directions)
        only works when the journal appends against the *same* tracer
        whose span is open around the op — adopting it here makes
        ``Journal(dir)`` + a traced host correlate out of the box.
        """
        if (self.journal is not None and self.tracer.enabled
                and not self.journal.tracer.enabled):
            self.journal.tracer = self.tracer

    def tokens(self):
        with self._lock:
            return tuple(self._entries)

    def has_token(self, token):
        """Is a session (resident or evicted) registered under ``token``?"""
        with self._lock:
            return token in self._entries

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def _checkout(self, token):
        """Find + LRU-touch an entry (registry lock only)."""
        with self._lock:
            entry = self._entries.get(token)
            if entry is None:
                raise UnknownToken(
                    "no session with token {!r}".format(token)
                )
            self._entries.move_to_end(token)
            return entry

    def session(self, token):
        """Context manager: the entry, locked and resident.

        Rehydrates an evicted session before yielding.  All public
        per-session operations go through this, so a session is only
        ever touched by one thread at a time.
        """
        return _LockedSession(self, token)

    def _rehydrate(self, entry):
        """Entry lock held: rebuild the LiveSession from its image."""
        entry.session = load_image(
            entry.image,
            host_impls=self._make_host_impls(),
            services=self._make_services(),
            **self._session_kwargs_for(entry.token)
        )
        entry.image = None
        entry.dirty = True  # recompute + compare; generation is stable
        self._count("sessions_rehydrated")
        self._enforce_capacity(protect=entry)

    # -- eviction -----------------------------------------------------------

    def _resident_count(self):
        return sum(1 for e in self._entries.values() if e.resident)

    def _enforce_capacity(self, protect=None):
        """Evict LRU idle residents until the pool fits ``pool_size``.

        Busy sessions (their lock is held) are skipped — they are in use,
        hence not idle; the pool may transiently overflow if everything
        is busy.  Lock order is registry → entry(non-blocking), which
        cannot deadlock against the entry → registry order used by
        rehydration.
        """
        with self._lock:
            excess = self._resident_count() - self.pool_size
            if excess <= 0:
                return 0
            evicted = 0
            for entry in list(self._entries.values()):  # LRU order
                if excess <= 0:
                    break
                if entry is protect or not entry.resident:
                    continue
                if not entry.lock.acquire(blocking=False):
                    continue
                try:
                    self._evict_entry(entry)
                    evicted += 1
                    excess -= 1
                finally:
                    entry.lock.release()
            return evicted

    def _evict_entry(self, entry):
        """Entry lock held: serialize to an image and drop the session."""
        entry.image = save_image(
            entry.session,
            meta={"token": entry.token, "generation": entry.generation},
        )
        entry.session = None
        self._count("sessions_evicted")

    def evict(self, token):
        """Force-evict one session (idempotent; returns True if evicted)."""
        entry = self._checkout(token)
        with entry.lock:
            if not entry.resident:
                return False
            self._evict_entry(entry)
            return True

    def evicted(self, token):
        """Is the session currently paged out to an image?"""
        return not self._checkout(token).resident

    # -- circuit breaker + write-ahead journaling ---------------------------

    @contextmanager
    def _guarded(self, entry, op=None, args=None):
        """Wrap one state-changing op on a locked, resident entry.

        Order matters: the quarantine gate first (refused ops are never
        journaled — they do not run), then the write-ahead journal
        append (the op is durable *before* it executes, so a crash
        mid-op replays it), then breaker accounting around the op
        itself.  Faults count whether they propagate (``"raise"``
        policy) or are recorded in the session (``"record"`` policy).

        Yields a mutable outcome whose ``executed`` flag the body may
        clear: only ops that actually ran against the runtime close the
        fault streak — a rejected ``edit_source`` (compile/type error)
        never touched it, so it must neither count as a fault nor
        launder one.
        """
        if entry.quarantined and op != "edit_source":
            raise SessionQuarantined(
                "session {} is quarantined after {} consecutive faulting "
                "operations; fix it with edit_source or read its "
                "degraded display via render".format(
                    entry.token, entry.consecutive_faults
                )
            )
        # One tracer span per state-changing op (best-effort under
        # concurrent traffic: the Tracer is single-threaded by design,
        # so interleaved requests may mis-nest spans — counters stay
        # correct either way).  The span is open *before* the journal
        # append, so the record is stamped with its span_id and the
        # span is annotated with the record's journal_seq.
        span = None
        if self.tracer.enabled and op is not None:
            span = self.tracer.span("op." + op, token=entry.token)
        try:
            checkpoint_due = False
            if self.journal is not None and op is not None:
                checkpoint_due = self.journal.record_event(
                    entry.token, op, args or {}
                )
            outcome = _GuardedOutcome()
            faults_before = len(entry.session.runtime.faults)
            try:
                yield outcome
            except EvalError:
                self._note_fault(entry, op, args)
                raise
            recorded = len(entry.session.runtime.faults) - faults_before
            if recorded > 0:
                # Sessions run with the null tracer; surface their
                # recorded faults in the host-level metrics.
                self._count("faults_recorded", recorded)
                self._note_fault(entry, op, args)
            elif outcome.executed:
                entry.consecutive_faults = 0
            if checkpoint_due:
                self._checkpoint(entry)
        finally:
            if span is not None:
                span.finish()

    def _note_fault(self, entry, op=None, args=None):
        entry.consecutive_faults += 1
        if (self.quarantine_after is not None
                and not entry.quarantined
                and entry.consecutive_faults >= self.quarantine_after):
            entry.quarantined = True
            self._count("sessions_quarantined")
            if self.repair is not None:
                self._repair_on_breaker(entry, op, args or {})

    def _repair_on_breaker(self, entry, op, args):
        """Breaker just opened: localize via the faulting event's display
        path (the ``why()`` box ↔ code join, live) and launch a search.
        Entry lock held; never raises — repair is best-effort."""
        try:
            from ..repair import locus_from_selection

            session = entry.session
            faults = session.runtime.faults
            fault = faults[-1] if faults else None
            locus = locus_from_selection(
                session,
                path=args.get("path"),
                text=args.get("text"),
                fault=fault,
            )
            last_good = (
                session._undo_stack[-1] if session._undo_stack else None
            )
            self._launch_repair(
                entry,
                trigger="breaker",
                faulting_source=session.source,
                last_good_source=(
                    last_good if last_good != session.source else None
                ),
                suspects=locus.suspects,
                fault=fault,
            )
        except Exception:
            pass

    def _checkpoint(self, entry):
        """Entry lock held: append a full image checkpoint to the journal."""
        self.journal.record_checkpoint(
            entry.token,
            save_image(
                entry.session,
                meta={"token": entry.token, "generation": entry.generation},
            ),
        )

    def is_quarantined(self, token):
        """Is the session's circuit breaker currently open?"""
        return self._checkout(token).quarantined

    # -- per-session operations --------------------------------------------

    def tap(self, token, path=None, text=None):
        if text is None and path is None:
            raise ReproError("tap needs a path or a text")
        args = {"text": text} if text is not None else {"path": list(path)}
        with self.session(token) as entry:
            with self._guarded(entry, "tap", args):
                if text is not None:
                    entry.session.tap_text(text)
                else:
                    entry.session.tap(tuple(path))
                entry.dirty = True
            return entry.session.runtime.page_name()

    def back(self, token):
        with self.session(token) as entry:
            with self._guarded(entry, "back"):
                entry.session.back()
                entry.dirty = True
            return entry.session.runtime.page_name()

    def edit_box(self, token, path, text):
        with self.session(token) as entry:
            with self._guarded(
                entry, "edit_box", {"path": list(path), "text": text}
            ):
                entry.session.edit_box(tuple(path), text)
                entry.dirty = True
            return entry.session.runtime.page_name()

    def batch(self, token, events):
        """Apply a burst of events with one render (see ``batching``)."""
        from ..resilience.journal import encode_batch_events

        with self.session(token) as entry:
            with self._guarded(
                entry, "batch", {"events": encode_batch_events(events)}
            ):
                report = apply_batch(entry.session, events)
                entry.dirty = True
        if report.coalesced:
            self._count("renders_coalesced", report.coalesced)
        return report

    def edit_source(self, token, new_source):
        """Live-apply an edit; works identically on evicted sessions.

        Rehydration runs first (load = UPDATE with the Fig. 12 fix-up),
        then the edit takes the ordinary
        :meth:`~repro.live.session.LiveSession.edit_source` path — so an
        edit-while-evicted is exactly a save → edit → resume.

        This is also the *repair path* for a quarantined session: it is
        the one state-changing op the quarantine gate admits, and an
        edit that applies cleanly closes the circuit breaker.
        """
        with self.session(token) as entry:
            faults_before = len(entry.session.runtime.faults)
            with self._guarded(
                entry, "edit_source", {"source": new_source}
            ) as outcome:
                result = entry.session.edit_source(new_source)
                # A rejected edit never touched the runtime: it must
                # not break (or pad) the breaker's fault streak.
                outcome.executed = result.status != "rejected"
                if result.applied:
                    entry.dirty = True
            clean = len(entry.session.runtime.faults) == faults_before
            if entry.quarantined and result.applied and clean:
                entry.quarantined = False
                entry.consecutive_faults = 0
            if result.status == "rolled_back" and self.repair is not None:
                self._repair_on_rollback(entry, new_source)
            return result

    def _repair_on_rollback(self, entry, new_source):
        """A supervised UPDATE just rolled back: the running code is the
        last-good program, the buffer holds the faulting text, and the
        old/new declaration diff is the localization.  Entry lock held;
        never raises — repair is best-effort."""
        try:
            from ..repair import changed_decl_names

            session = entry.session
            last_good = (
                session._undo_stack[-1] if session._undo_stack else None
            )
            faults = session.runtime.faults
            self._launch_repair(
                entry,
                trigger="rollback",
                faulting_source=new_source,
                last_good_source=last_good,
                suspects=(
                    changed_decl_names(last_good, new_source)
                    if last_good is not None else ()
                ),
                fault=faults[-1] if faults else None,
            )
        except Exception:
            pass

    def probe(self, token, expression):
        with self.session(token) as entry:
            return entry.session.probe_expr(expression)

    def render(self, token, if_generation=None):
        """``(html, generation, modified)`` for the session's display.

        When the client's ``if_generation`` still matches (and nothing
        mutated since the last render), the HTML is not even recomputed —
        the 304 path costs a dirty-flag check.  ``html`` is ``None`` iff
        ``modified`` is False.
        """
        with self.session(token) as entry:
            if entry.quarantined and entry.html is not None:
                # Degraded service: the last-good document, no recompute
                # — a quarantined session never dies, it dims.
                if if_generation == entry.generation:
                    return None, entry.generation, False
                self._count("bytes_served", len(entry.html.encode("utf-8")))
                return entry.html, entry.generation, True
            if not entry.dirty and if_generation == entry.generation:
                return None, entry.generation, False
            html = None
            fingerprint = None
            if entry.html is not None and entry.fingerprint is not None:
                # Incremental short-circuit (repro.incremental): when the
                # render behind this dirty flag replayed every memoizable
                # call (zero misses), check the cheap fragment hash first
                # — if the display fingerprint is unchanged, the cached
                # document is still exact and the full HTML build is
                # skipped.
                reuse = getattr(
                    entry.session.runtime.system, "last_render_stats", None
                )
                if reuse and not reuse.get("misses"):
                    fingerprint = display_fingerprint(entry.session.display)
                    if fingerprint == entry.fingerprint:
                        html = entry.html
                        self._count("incremental.html_short_circuits")
            if html is None:
                html = render_html(entry.session.display, title=entry.title)
                if fingerprint is None:
                    fingerprint = display_fingerprint(entry.session.display)
            if fingerprint != entry.fingerprint:
                entry.generation += 1
                entry.fingerprint = fingerprint
            entry.html = html
            entry.dirty = False
            if if_generation == entry.generation:
                return None, entry.generation, False
            self._count("bytes_served", len(html.encode("utf-8")))
            return html, entry.generation, True

    def screenshot(self, token, width=48):
        with self.session(token) as entry:
            return entry.session.screenshot(width=width)

    def snapshot(self, token):
        """The session's persist image, without evicting it."""
        with self.session(token) as entry:
            return save_image(
                entry.session,
                meta={
                    "token": entry.token,
                    "generation": entry.generation,
                },
            )

    def source(self, token):
        with self.session(token) as entry:
            return entry.session.source

    # -- provenance & time travel (repro.provenance) ------------------------

    def history(self, token, limit=None):
        """The session's journal timeline, newest-last, images omitted.

        Each item is a JSON-clean summary — ``seq``, ``kind``, plus
        ``op``/``args`` for events and ``span_id`` when the record was
        written under a traced op — cheap enough to serve as the
        ``history`` protocol op even for long journals (the read is a
        lazy stream; checkpoint images never leave the file).  ``limit``
        keeps only the most recent items.  Destroyed sessions still have
        history: the journal is append-only memory, not the registry.
        """
        journal = self._require_journal()
        if journal.start_offset(token) is None:
            self._checkout(token)  # raises UnknownToken when nowhere
        from collections import deque

        items = deque(maxlen=limit)
        for record in journal.records_for(token):
            summary = {"seq": record["seq"], "kind": record["kind"]}
            if record["kind"] == "event":
                summary["op"] = record.get("op")
                summary["args"] = record.get("args") or {}
            if record.get("span_id") is not None:
                summary["span_id"] = record["span_id"]
            items.append(summary)
        return list(items)

    def why(self, token, path=None, text=None):
        """Provenance query against the journaled history (see
        :func:`repro.provenance.why`): replays the session cold with
        capture on, so it costs a full replay — a debugging op, not a
        rendering-path one."""
        journal = self._require_journal()
        from ..provenance import why as provenance_why

        report = provenance_why(
            journal, token, path=path, text=text,
            make_host_impls=self._make_host_impls,
            make_services=self._make_services,
            session_kwargs=self.session_kwargs,
        )
        self._count("provenance.queries")
        self._count("provenance.events_linked", len(report.events))
        return report

    def replay_check(self, token, edited_source):
        """Divergence report for ``edited_source`` against the recorded
        trace (see :func:`repro.provenance.divergence_report`)."""
        journal = self._require_journal()
        from ..provenance import divergence_report

        report = divergence_report(
            journal, edited_source, token=token,
            make_host_impls=self._make_host_impls,
            make_services=self._make_services,
            session_kwargs=self.session_kwargs,
        )
        self._count("replay.sessions", 2)
        self._count("replay.events", report.events_replayed * 2)
        if report.diverged:
            self._count("replay.divergences")
        return report

    def _require_journal(self):
        if self.journal is None:
            raise ReproError(
                "this host has no journal — history, why and replay "
                "need one (serve with --journal-dir)"
            )
        return self.journal

    # -- live repair (repro.repair) -----------------------------------------

    def _repair_budget(self, budget=None):
        from ..repair import RepairBudget

        if budget is not None:
            return budget
        if isinstance(self.repair, RepairBudget):
            return self.repair
        return RepairBudget()

    def _launch_repair(
        self, entry, *, trigger, faulting_source,
        last_good_source, suspects, fault,
    ):
        """Kick off a background search for ``entry`` (entry lock held).

        At most one search per session is in flight; the thread
        validates candidates only against throwaway replayed systems —
        it never takes the entry lock, which is what keeps the search
        off the request path.
        """
        if entry.repair_thread is not None and entry.repair_thread.is_alive():
            return
        entry.repair_report = None
        budget = self._repair_budget()

        def run():
            from ..repair import search_repairs

            try:
                entry.repair_report = search_repairs(
                    self.journal,
                    entry.token,
                    faulting_source=faulting_source,
                    last_good_source=last_good_source,
                    suspects=suspects,
                    trigger=trigger,
                    fault=fault,
                    budget=budget,
                    make_host_impls=self._make_host_impls,
                    make_services=self._make_services,
                    session_kwargs=self.session_kwargs,
                    count=self._count,
                    observe=self.tracer.observe,
                )
            except Exception:
                pass  # best-effort: a failed search leaves no report

        entry.repair_thread = threading.Thread(
            target=run, name="repair-" + entry.token, daemon=True
        )
        entry.repair_thread.start()

    def repair_info(self, token):
        """The session's repair state, JSON-clean: ``status`` is
        ``searching`` (a background search is in flight), ``ready`` (a
        report is available — with its ranked candidate summaries), or
        ``none``."""
        entry = self._checkout(token)
        thread = entry.repair_thread
        if thread is not None and thread.is_alive():
            return {"status": "searching"}
        report = entry.repair_report
        if report is None:
            return {"status": "none"}
        return self.report_info(report)

    @staticmethod
    def report_info(report):
        """A :class:`~repro.repair.RepairReport` as the JSON-clean
        ``repair`` payload (summaries only — apply routes by rank, so
        candidate source text never rides the envelope)."""
        return {
            "status": "ready",
            "trigger": report.trigger,
            "found": report.found,
            "generated": report.generated,
            "searched": report.searched,
            "wall_seconds": report.wall_seconds,
            "budget_exhausted": report.budget_exhausted,
            "fault": report.fault,
            "repairs": report.summaries(),
        }

    def repair_wait(self, token, timeout=None):
        """Block until the in-flight search (if any) finishes; returns
        :meth:`repair_info`.  Test/CLI convenience — servers poll."""
        thread = self._checkout(token).repair_thread
        if thread is not None:
            thread.join(timeout)
        return self.repair_info(token)

    def repair_search(self, token, budget=None):
        """Search for repairs *now*, synchronously; returns the
        :class:`~repro.repair.RepairReport` (also stored, so a later
        ``repair{apply}`` can route by rank).

        The faulting program is the session's edit buffer when it holds
        text the supervisor refused (a rolled-back UPDATE leaves the
        buffer at the faulting source while the runtime keeps last-good
        code); otherwise the running program itself is searched — the
        breaker case, where live traffic faults the accepted code.
        """
        from ..repair import changed_decl_names, search_repairs

        with self.session(token) as entry:
            session = entry.session
            last_good = (
                session._undo_stack[-1] if session._undo_stack else None
            )
            faulting = session.source
            rolled_back = last_good is not None and faulting != last_good
            suspects = (
                changed_decl_names(last_good, faulting)
                if rolled_back else ()
            )
            faults = session.runtime.faults
            fault = faults[-1] if faults else None
            trigger = "rollback" if rolled_back else "manual"
        report = search_repairs(
            self.journal,
            token,
            faulting_source=faulting,
            last_good_source=last_good if rolled_back else None,
            suspects=suspects,
            trigger=trigger,
            fault=fault,
            budget=self._repair_budget(budget),
            make_host_impls=self._make_host_impls,
            make_services=self._make_services,
            session_kwargs=self.session_kwargs,
            count=self._count,
            observe=self.tracer.observe,
        )
        entry.repair_report = report
        return report

    def repair_apply(self, token, rank):
        """Apply the ranked candidate as an ordinary supervised edit.

        A repair is *just an edit*: it routes through
        :meth:`edit_source`, so it must pass the same Supervisor (and an
        applied repair closes an open breaker exactly like a hand-written
        fix).  Returns ``(edit_result, candidate)``.
        """
        report = self._checkout(token).repair_report
        if report is None:
            raise ReproError(
                "session {} has no repair report — run a repair search "
                "first".format(token)
            )
        candidate = report.candidate(rank)
        result = self.edit_source(token, candidate.source)
        if result.applied:
            self._count("repair.applied")
        return result, candidate

    def degraded_detail(self, token):
        """Why this session is degraded: the breaker's fault streak plus
        the latest recorded fault's identity (type, message, ``span_id``,
        ``vtimestamp``) — enough for a client (or the repair searcher)
        to localize without a second ``stats`` round trip."""
        with self.session(token) as entry:
            detail = {"fault_streak": entry.consecutive_faults}
            faults = entry.session.runtime.faults
            if faults:
                fault = faults[-1]
                detail["error"] = str(fault.error)
                detail["type"] = type(fault.error).__name__
                detail["during"] = fault.during
                if fault.span_id is not None:
                    detail["span_id"] = fault.span_id
                if fault.vtimestamp is not None:
                    detail["vtimestamp"] = fault.vtimestamp
            return detail

    def destroy(self, token):
        """Forget a session entirely (resident or evicted)."""
        with self._lock:
            entry = self._entries.pop(token, None)
        if entry is not None and self.journal is not None:
            self.journal.record_destroy(token)
        return entry is not None

    # -- introspection ------------------------------------------------------

    def healthz(self):
        """Cheap liveness payload: session counts, no metric catalog.

        This is what ``GET /healthz`` answers and what the cluster
        supervisor's ``__status__`` probe embeds — it takes only the
        registry lock, never a session lock, so a wedged session cannot
        make the host look dead.
        """
        with self._lock:
            resident = self._resident_count()
            total = len(self._entries)
            quarantined = sum(
                1 for e in self._entries.values() if e.quarantined
            )
        return {
            "sessions": total,
            "resident": resident,
            "evicted": total - resident,
            "quarantined": quarantined,
            "pool_size": self.pool_size,
            "journaling": self.journal is not None,
        }

    def stats(self):
        """Pool + metric snapshot for the ``stats`` protocol op."""
        stats = self.healthz()
        del stats["journaling"]
        if self.memo_store is not None:
            stats["shared_memo"] = self.memo_store.stats()
        counters, gauges, _ = self.observability_snapshot()
        metrics = dict(gauges)
        metrics.update(counters)
        stats["metrics"] = metrics
        # Gauges restated under their own key so an aggregating front
        # can tell them apart from counters: counters sum across
        # workers, gauges must never be summed (repro.obs.GAUGES).
        stats["gauges"] = gauges
        return stats

    def observability_snapshot(self):
        """``(counters, gauges, histograms)`` — the host's full metric
        state in mergeable form, for ``/metrics`` exposition (and, on a
        cluster worker, the ``__metrics__`` frame op).  Histograms are
        point-in-time :class:`~repro.obs.Histogram` copies; refreshes
        the ``sessions.open_breakers`` gauge on the way out so the
        breaker count is always scrape-fresh."""
        open_breakers = self.healthz()["quarantined"]
        with self._metrics_lock:
            self.tracer.gauge("sessions.open_breakers", open_breakers)
            return (
                dict(self.tracer.counters),
                dict(self.tracer.gauges),
                self.tracer.histogram_snapshots(),
            )


class _LockedSession:
    """``with host.session(token) as entry:`` — locked and resident."""

    __slots__ = ("_host", "_token", "_entry")

    def __init__(self, host, token):
        self._host = host
        self._token = token
        self._entry = None

    def __enter__(self):
        entry = self._host._checkout(self._token)
        entry.lock.acquire()
        self._entry = entry
        try:
            if not entry.resident:
                self._host._rehydrate(entry)
        except BaseException:
            entry.lock.release()
            self._entry = None
            raise
        return entry

    def __exit__(self, _exc_type, _exc, _tb):
        entry, self._entry = self._entry, None
        if entry is not None:
            entry.lock.release()
        return False
