"""The versioned JSON wire protocol.

One request is one JSON object with an ``"op"`` field; one response is
one JSON object with ``"ok"``, ``"protocol"`` and ``"op"`` fields plus
op-specific payload.  The transition system of Fig. 6–9 already is an
event/render protocol — this module only names its messages:

======================  ====================================================
op                      request fields → response payload
======================  ====================================================
``create``              ``source?``, ``title?`` → ``token``, ``page``
``tap``                 ``token``, ``path`` | ``text`` → ``page``
``back``                ``token`` → ``page``
``edit_box``            ``token``, ``path``, ``text`` → ``page``
``batch``               ``token``, ``events`` → ``events``, ``renders``,
                        ``coalesced``
``edit_source``         ``token``, ``source`` → ``status``, ``problems``,
                        ``dropped_globals``, ``dropped_pages``
``probe``               ``token``, ``expression`` → ``result``
``render``              ``token``, ``generation?``, ``width?`` →
                        ``html`` + ``generation``, or ``not_modified``
``snapshot``            ``token`` → ``image`` (a ``repro-image/1`` dict)
``evict``               ``token`` → ``evicted``
``stats``               → ``stats``
``history``             ``token``, ``limit?`` → ``history`` (journal
                        timeline: seq/kind/op/args/span_id, no images)
``why``                 ``token``, ``path`` | ``text`` → ``why`` (code
                        span, store slots, originating journal events —
                        see :mod:`repro.provenance`)
``repair``              ``token``, plus one of ``search`` (+ ``budget?``),
                        ``apply`` (a rank), ``wait?`` (seconds) →
                        ``status`` (``searching``/``ready``/``none``)
                        with ranked ``repairs`` summaries — see
                        :mod:`repro.repair`
======================  ====================================================

``history`` and ``why`` need the host to be journaling (started with
``--journal-dir``); without a journal they answer a typed
``"ReproError"``.

A request may carry ``"protocol": N``; a version other than
:data:`PROTOCOL_VERSION` is rejected up front so clients fail loudly
instead of misparsing.  Errors come back as
``{"ok": false, "error": {"type": ..., "message": ...}}`` — the type is
the raising :class:`~repro.core.errors.ReproError` subclass name, so
clients can dispatch on e.g. ``"UnknownToken"`` or ``"SyntaxProblem"``.

**Runtime faults are typed, never opaque.**  A handler fault surfaces
as ``"EvalFault"`` (subclasses keep their names: ``"FuelExhausted"``,
``"DeadlineExceeded"``, ``"InjectedFault"``, ``"NativeError"``), a
refused code update as ``"UpdateRejected"`` with its ``problems``, and
an open circuit breaker as ``"SessionQuarantined"`` — each carrying a
``span_id`` when tracing is on, so a client error correlates with the
server's span tree.  ``render`` on a quarantined session succeeds with
``"degraded": true`` and the last-good document — plus a ``fault``
object (the quarantining fault's type, message, ``span_id``,
``vtimestamp`` and the breaker's ``fault_streak``) and the session's
``repair`` state, so clients can localize and offer a fix without a
second round trip: a faulting session is served degraded, never dropped
with an untyped 500.  Likewise a ``rolled_back`` ``edit_source``
response carries ``repair`` (usually ``{"status": "searching"}`` — the
background candidate search just launched; poll the ``repair`` op).

``render`` responses carry the display generation; a request whose
``generation`` still matches gets ``{"not_modified": true}`` with no
HTML — the 304 of this protocol.
"""

from __future__ import annotations

import dataclasses

from ..core.errors import EvalError, ReproError, UpdateRejected
from ..obs.trace import clock

PROTOCOL_VERSION = 1


def wire_encode(value):
    """The one dataclass → JSON-value codec for everything on the wire.

    Every result object this protocol serializes — ``EditResult``,
    ``FixupReport``, ``BatchReport``, error payloads — goes through this
    single recursion instead of a hand-rolled per-endpoint encoding, so
    a field added to a result dataclass (``memo_hits``, say) reaches the
    wire without touching any op handler.  Dataclasses become dicts,
    tuples become lists, JSON scalars pass through, and anything else
    (diagnostics, exceptions) falls back to ``str`` — the wire never
    carries a Python repr by accident, and never raises while encoding.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: wire_encode(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): wire_encode(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [wire_encode(item) for item in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return str(value)


def result_payload(result, flatten=("report",)):
    """``wire_encode`` a result dataclass into a flat op payload.

    Nested one-level reports named in ``flatten`` are merged into the
    top level (the wire shape predates the codec: ``dropped_globals``
    lives beside ``status``, not under ``report``).
    """
    payload = wire_encode(result)
    for name in flatten:
        nested = payload.pop(name, None)
        if isinstance(nested, dict):
            payload.update(nested)
    return payload


def _ok(op, **payload):
    response = {"ok": True, "protocol": PROTOCOL_VERSION, "op": op}
    response.update(payload)
    return response


def _error(op, type_, message, **extra):
    error = {"type": type_, "message": message}
    error.update(wire_encode(extra))
    return {
        "ok": False,
        "protocol": PROTOCOL_VERSION,
        "op": op,
        "error": error,
    }


def describe_error(error, tracer=None):
    """``(type, extra)`` for one :class:`ReproError` — the shared
    fault-to-wire translation (the HTTP layer's last-resort handler
    uses it too, so *no* session fault ever leaves as an untyped 500).

    A bare :class:`~repro.core.errors.EvalError` is named
    ``"EvalFault"`` (the class name would shadow the whole subtree);
    subclasses keep their own names.  ``extra`` carries ``problems``
    for :class:`~repro.core.errors.UpdateRejected` and a ``span_id``
    whenever the tracer saw the failing transition.
    """
    type_ = type(error).__name__
    if type(error) is EvalError:
        type_ = "EvalFault"
    extra = {}
    if isinstance(error, UpdateRejected):
        extra["problems"] = wire_encode(error.problems)
    span_id = getattr(tracer, "last_span_id", None)
    if span_id is not None:
        extra["span_id"] = span_id
    return type_, extra


def error_response(op, error, tracer=None):
    """The full protocol error envelope for one :class:`ReproError` —
    exactly what ``handle_request`` would answer had the error risen
    inside dispatch.  The HTTP layer uses it for faults that surface
    *outside* ``handle_request`` (chaos refusals, faults raised while
    serializing a response), so every wire error carries the same
    ``protocol`` / ``op`` / ``error.type`` shape and clients dispatch
    on one taxonomy."""
    type_, extra = describe_error(error, tracer=tracer)
    return _error(op, type_, str(error), **extra)


class BadRequest(ReproError):
    """The request object itself is malformed (shape, not semantics)."""


def _require(request, field, types):
    value = request.get(field)
    if not isinstance(value, types):
        raise BadRequest(
            "op {!r} requires field {!r}".format(
                request.get("op"), field
            )
        )
    return value


def _batch_events(raw):
    """Decode the wire event list into batching tuples."""
    if not isinstance(raw, list):
        raise BadRequest("batch requires an 'events' list")
    events = []
    for item in raw:
        if not isinstance(item, dict):
            raise BadRequest("batch events must be objects")
        kind = item.get("kind")
        if kind == "tap" and "text" in item:
            events.append(("tap_text", item["text"]))
        elif kind == "tap":
            events.append(("tap", tuple(item.get("path", ()))))
        elif kind == "edit":
            events.append(
                ("edit", tuple(item.get("path", ())), item.get("text", ""))
            )
        elif kind == "back":
            events.append(("back",))
        else:
            raise BadRequest(
                "unknown batch event kind {!r}".format(kind)
            )
    return events


def handle_request(host, request):
    """Dispatch one decoded request against a
    :class:`~repro.serve.host.SessionHost`; always returns a response
    dict (semantic failures are ``ok: false`` responses, never raises
    for anything a remote client can trigger)."""
    if not isinstance(request, dict):
        return _error(None, "BadRequest", "request must be a JSON object")
    op = request.get("op")
    version = request.get("protocol", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        return _error(
            op, "BadRequest",
            "unsupported protocol version {!r} (this server speaks "
            "{})".format(version, PROTOCOL_VERSION),
        )
    handler = _OPS.get(op)
    if handler is None:
        return _error(
            op, "BadRequest",
            "unknown op {!r}; valid ops: {}".format(
                op, ", ".join(sorted(_OPS))
            ),
        )
    tracer = host.tracer
    started = clock() if tracer.enabled else None
    try:
        return handler(host, request)
    except ReproError as error:
        type_, extra = describe_error(error, tracer=tracer)
        return _error(op, type_, str(error), **extra)
    finally:
        if started is not None:
            # Per-op latency distributions ("op.render", "op.edit_box",
            # …) — the histograms /metrics exposes and `repro top`
            # summarizes.  Errors count too: a failing op is latency a
            # client experienced.
            tracer.observe("op." + op, clock() - started)


# -- op handlers ------------------------------------------------------------


def _op_create(host, request):
    source = request.get("source")
    if source is not None and not isinstance(source, str):
        raise BadRequest("create: 'source' must be a string")
    token = request.get("token")
    if token is not None and not isinstance(token, str):
        raise BadRequest("create: 'token' must be a string")
    if token is not None and host.has_token(token):
        # Idempotent create-under-token: the cluster front mints tokens
        # and may retry a create whose worker died after journaling it —
        # the recovered session *is* the one the retry asks for.
        with host.session(token) as entry:
            page = entry.session.runtime.page_name()
        return _ok("create", token=token, page=page, existing=True)
    token = host.create(
        source=source, title=request.get("title"), token=token
    )
    with host.session(token) as entry:
        page = entry.session.runtime.page_name()
    return _ok("create", token=token, page=page)


def _op_tap(host, request):
    token = _require(request, "token", str)
    if "text" in request:
        page = host.tap(token, text=_require(request, "text", str))
    else:
        page = host.tap(token, path=_require(request, "path", list))
    return _ok("tap", token=token, page=page)


def _op_back(host, request):
    token = _require(request, "token", str)
    return _ok("back", token=token, page=host.back(token))


def _op_edit_box(host, request):
    token = _require(request, "token", str)
    page = host.edit_box(
        token,
        _require(request, "path", list),
        _require(request, "text", str),
    )
    return _ok("edit_box", token=token, page=page)


def _op_batch(host, request):
    token = _require(request, "token", str)
    report = host.batch(token, _batch_events(request.get("events")))
    return _ok("batch", token=token, **result_payload(report))


def _op_edit_source(host, request):
    token = _require(request, "token", str)
    result = host.edit_source(token, _require(request, "source", str))
    payload = result_payload(result)
    if result.status == "rolled_back":
        # The update faulted and was rolled back — surface the repair
        # search state so the client can poll (or apply) a fix.
        payload["repair"] = host.repair_info(token)
    return _ok("edit_source", token=token, **payload)


def _op_probe(host, request):
    token = _require(request, "token", str)
    result = host.probe(token, _require(request, "expression", str))
    return _ok("probe", token=token, result=result.describe())


def _op_render(host, request):
    token = _require(request, "token", str)
    if_generation = request.get("generation")
    html, generation, modified = host.render(
        token, if_generation=if_generation
    )
    degraded = {}
    if host.is_quarantined(token):
        # The typed "Degraded" envelope: still a successful render —
        # the last-good document — but flagged (with the quarantining
        # fault's identity and the repair search state) so clients can
        # tell the session needs a code fix, and offer one.
        degraded = {
            "degraded": True,
            "fault": host.degraded_detail(token),
            "repair": host.repair_info(token),
        }
    if not modified:
        return _ok(
            "render", token=token, generation=generation,
            not_modified=True, **degraded
        )
    return _ok(
        "render", token=token, generation=generation, html=html, **degraded
    )


def _op_snapshot(host, request):
    token = _require(request, "token", str)
    return _ok("snapshot", token=token, image=host.snapshot(token))


def _op_evict(host, request):
    token = _require(request, "token", str)
    return _ok("evict", token=token, evicted=host.evict(token))


def _op_stats(host, _request):
    return _ok("stats", stats=host.stats())


def _op_history(host, request):
    token = _require(request, "token", str)
    limit = request.get("limit")
    if limit is not None and (not isinstance(limit, int) or limit < 1):
        raise BadRequest("history: 'limit' must be a positive integer")
    return _ok(
        "history", token=token, history=host.history(token, limit=limit)
    )


def _op_why(host, request):
    token = _require(request, "token", str)
    if "path" in request:
        report = host.why(token, path=_require(request, "path", list))
    else:
        report = host.why(token, text=_require(request, "text", str))
    return _ok("why", token=token, why=wire_encode(report))


def _op_repair(host, request):
    token = _require(request, "token", str)
    if "apply" in request:
        rank = request.get("apply")
        if not isinstance(rank, int) or isinstance(rank, bool) or rank < 1:
            raise BadRequest("repair: 'apply' must be a positive rank")
        result, candidate = host.repair_apply(token, rank)
        return _ok(
            "repair", token=token, applied=result.applied,
            candidate=wire_encode(candidate), **result_payload(result)
        )
    if request.get("search"):
        budget = None
        spec = request.get("budget")
        if spec is not None:
            if not isinstance(spec, dict):
                raise BadRequest("repair: 'budget' must be an object")
            from ..repair import RepairBudget

            try:
                budget = RepairBudget(**spec)
            except TypeError:
                raise BadRequest(
                    "repair: unknown budget field; valid fields: "
                    "max_candidates, wall_seconds, window, parallelism, "
                    "fuel, deadline"
                )
        report = host.repair_search(token, budget=budget)
        return _ok("repair", token=token, **host.report_info(report))
    wait = request.get("wait")
    if wait is not None:
        if not isinstance(wait, (int, float)) or isinstance(wait, bool) \
                or wait < 0:
            raise BadRequest("repair: 'wait' must be non-negative seconds")
        return _ok("repair", token=token, **host.repair_wait(token, wait))
    return _ok("repair", token=token, **host.repair_info(token))


_OPS = {
    "create": _op_create,
    "tap": _op_tap,
    "back": _op_back,
    "edit_box": _op_edit_box,
    "batch": _op_batch,
    "edit_source": _op_edit_source,
    "probe": _op_probe,
    "render": _op_render,
    "snapshot": _op_snapshot,
    "evict": _op_evict,
    "stats": _op_stats,
    "history": _op_history,
    "why": _op_why,
    "repair": _op_repair,
}
