"""Substrates backing the example applications (simulated web, datasets)."""

from .listings import CITIES, STREETS, generate_listings
from .web import (
    DEFAULT_LATENCY,
    SimulatedWeb,
    make_services,
    web_host_impls,
)

__all__ = [name for name in dir() if not name.startswith("_")]
