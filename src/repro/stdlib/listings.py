"""Deterministic housing-listings dataset for the running example.

The paper's mortgage app downloads "local listings of houses for sale".
We have no network (and the paper's service is long gone), so this module
generates a deterministic, seeded dataset with the same shape: street
address, city, and asking price.  Determinism matters twice over — tests
assert against exact listings, and the edit-cycle benchmark must replay
identical downloads across baselines.
"""

from __future__ import annotations

import random

STREETS = (
    "Maple St", "Oak Ave", "Pine Rd", "Cedar Ln", "Elm Dr",
    "Birch Way", "Walnut Ct", "Spruce Blvd", "Aspen Pl", "Willow Ter",
)

CITIES = (
    "Seattle", "Redmond", "Bellevue", "Kirkland", "Tacoma",
    "Renton", "Bothell", "Issaquah",
)


def generate_listings(count=8, seed=20130616):
    """``count`` listings as ``(address, city, price)`` tuples.

    The default seed is the paper's conference date; prices land in the
    250k-900k range and are rounded to the nearest thousand, giving the
    screenshot-friendly numbers of Figure 1.
    """
    rng = random.Random(seed)
    listings = []
    for index in range(count):
        number = rng.randrange(100, 9900)
        street = STREETS[rng.randrange(len(STREETS))]
        city = CITIES[rng.randrange(len(CITIES))]
        price = 1000.0 * rng.randrange(250, 900)
        listings.append(("{} {}".format(number, street), city, price))
    return listings
