"""The simulated web substrate.

The paper's mortgage example "issues a web request to obtain listings"
on startup, and step 5 of its conventional edit cycle is "waiting for the
list to download".  This substrate reproduces both:

* :class:`SimulatedWeb` serves deterministic resources and charges its
  configured latency to the ambient :class:`~repro.system.services.
  VirtualClock` on every request — no real sleeping, so the test-suite is
  fast while the edit-cycle benchmark (E2) still *accounts* for download
  time exactly like a real restart-based workflow would pay it;
* :func:`web_host_impls` provides the ``extern fun`` implementations the
  example apps declare (``fetch_listings``), wired through
  :class:`~repro.system.services.Services` — so they carry effect ``s``
  and the type system keeps them out of render code.
"""

from __future__ import annotations

from ..core.errors import NativeError
from ..system.services import Services
from .listings import generate_listings

#: Default simulated latency per request, in virtual seconds.  Chosen to
#: dominate a restart-based edit cycle the way a real mobile download does.
DEFAULT_LATENCY = 1.5


class SimulatedWeb:
    """A tiny deterministic 'internet' with per-request latency accounting."""

    def __init__(self, clock, latency=DEFAULT_LATENCY, listing_count=8,
                 seed=20130616):
        self.clock = clock
        self.latency = latency
        self.request_count = 0
        self._resources = {
            "/listings": generate_listings(listing_count, seed),
        }

    def add_resource(self, path, payload):
        """Host another deterministic resource (used by other examples)."""
        self._resources[path] = payload
        return payload

    def fetch(self, path):
        """Serve ``path``, charging latency to the virtual clock."""
        self.request_count += 1
        self.clock.advance(self.latency)
        try:
            return self._resources[path]
        except KeyError:
            raise NativeError("web: no such resource {!r}".format(path))


def make_services(latency=DEFAULT_LATENCY, listing_count=8, seed=20130616):
    """A :class:`Services` with a fresh clock and simulated web attached."""
    services = Services()
    services.provide(
        "web",
        SimulatedWeb(
            services.clock, latency=latency, listing_count=listing_count,
            seed=seed,
        ),
    )
    return services


def _fetch_listings(services):
    return services.get("web").fetch("/listings")


def web_host_impls():
    """Host implementations for the web externs the example apps declare.

    Keys match ``extern fun`` names; see
    :func:`repro.surface.compile.compile_source`.
    """
    return {"fetch_listings": _fetch_listings}
