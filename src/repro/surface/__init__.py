"""The TouchDevelop-like surface language and its compiler to the core."""

from .compile import CompiledProgram, compile_source
from .format import format_program, format_source
from .lexer import tokenize
from .lower import LoweredProgram, lower_program
from .parser import parse
from .resolve import ProgramEnv, resolve, resolve_type
from .sourcemap import BoxedEntry, SourceMap, build_sourcemap
from .span import Pos, Span, dummy_span
from .typecheck import typecheck, typecheck_problems

__all__ = [name for name in dir() if not name.startswith("_")]
