"""The compile pipeline: source text → runnable core program.

    parse → resolve+typecheck (annotates the AST, infers effects)
          → lower (core calculus + extern signatures)
          → bind extern implementations (FFI)
          → re-check the core program against Fig. 10/11

The final core re-check is deliberate redundancy: the surface checker and
the lowering are substantial, and the core checker is tiny and rule-exact
— if they ever disagree, compilation fails loudly instead of producing a
program whose UPDATE transition would later be rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import ReproError, TypeProblem
from ..eval.natives import NativeTable
from ..obs.trace import NULL_TRACER
from ..typing.program import code_problems
from .lower import lower_program
from .parser import parse
from .sourcemap import SourceMap, build_sourcemap
from .typecheck import typecheck_problems


@dataclass
class CompiledProgram:
    """Everything the runtime and the live IDE need about one program."""

    source: str
    program: object           # the annotated surface AST
    env: object               # ProgramEnv
    code: object              # core Code
    natives: NativeTable
    sourcemap: SourceMap
    generated_functions: tuple


def compile_source(source, host_impls=None, check_core=True,
                   tracer=NULL_TRACER):
    """Compile surface ``source`` to a :class:`CompiledProgram`.

    ``host_impls`` maps each declared ``extern fun`` name to its Python
    implementation ``impl(services, *args)``.  Raises
    :class:`~repro.core.errors.SyntaxProblem` or
    :class:`~repro.core.errors.TypeProblem` on the first error.

    ``tracer`` (repro.obs) records one span per pipeline phase —
    ``parse`` / ``typecheck`` / ``lower`` — so a live edit cycle can be
    broken down end to end.
    """
    with tracer.span("parse"):
        program = parse(source)
    with tracer.span("typecheck"):
        env, problems = typecheck_problems(program)
    if problems:
        raise problems[0]
    with tracer.span("lower"):
        lowered = lower_program(program, env)
        natives = _bind_externs(lowered.extern_sigs, host_impls or {})
        if check_core:
            core_issues = code_problems(lowered.code, natives)
            if core_issues:
                raise ReproError(
                    "internal lowering error — the lowered program fails "
                    "the core checker: {}".format(core_issues[0])
                )
    return CompiledProgram(
        source=source,
        program=program,
        env=env,
        code=lowered.code,
        natives=natives,
        sourcemap=build_sourcemap(program),
        generated_functions=tuple(lowered.generated_functions),
    )


def _bind_externs(extern_sigs, host_impls):
    natives = NativeTable()
    missing = []
    for sig in extern_sigs:
        impl = host_impls.get(sig.name)
        if impl is None:
            missing.append(sig.name)
            continue
        natives.register(sig, impl)
    if missing:
        raise TypeProblem(
            "extern function(s) without a host implementation: {}".format(
                ", ".join(sorted(missing))
            )
        )
    return natives
