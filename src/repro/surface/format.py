"""A canonical source formatter for the surface language.

``format_program``/``format_source`` pretty-print a (parsed) program with
two-space indentation, canonical spacing and minimal parentheses.  The
formatter is semantics-preserving in a strong, testable sense: because
box ids follow statement order and lowering generates names
deterministically, ``compile(format(src)).code == compile(src).code`` —
the test-suite asserts exactly that on every example app — and it is
idempotent (``format ∘ format = format``).

Direct manipulation splices machine-written lines into human source;
running the formatter afterwards normalizes the result, which is how the
paper's "effects are enshrined in code" stays readable.
"""

from __future__ import annotations

from ..core.errors import ReproError
from . import surface_ast as S
from .parser import parse

# Expression precedence levels, mirroring the parser's ladder.
_LEVEL_OR = 1
_LEVEL_AND = 2
_LEVEL_NOT = 3
_LEVEL_CMP = 4
_LEVEL_CONCAT = 5
_LEVEL_ADD = 6
_LEVEL_MUL = 7
_LEVEL_UNARY = 8
_LEVEL_ATOM = 10

_BINOP_LEVEL = {
    "or": _LEVEL_OR,
    "and": _LEVEL_AND,
    "==": _LEVEL_CMP, "!=": _LEVEL_CMP,
    "<": _LEVEL_CMP, "<=": _LEVEL_CMP, ">": _LEVEL_CMP, ">=": _LEVEL_CMP,
    "||": _LEVEL_CONCAT,
    "+": _LEVEL_ADD, "-": _LEVEL_ADD,
    "*": _LEVEL_MUL, "/": _LEVEL_MUL, "%": _LEVEL_MUL,
}

#: Registry attribute names (spaced) → surface spelling.
_ATTR_SPELLING = {"font size": "font_size"}


def format_source(source):
    """Parse and reformat ``source`` canonically."""
    return format_program(parse(source))


def format_program(program):
    """Reformat a parsed program."""
    chunks = [_format_decl(decl) for decl in program.decls]
    return "\n\n".join(chunks) + "\n"


# ---------------------------------------------------------------------------
# declarations
# ---------------------------------------------------------------------------


def _format_decl(decl):
    if isinstance(decl, S.DGlobal):
        return "global {} : {} = {}".format(
            decl.name, _type(decl.type_expr), _expr(decl.init)
        )
    if isinstance(decl, S.DRecord):
        lines = ["record {}".format(decl.name)]
        lines += [
            "  {} : {}".format(name, _type(type_expr))
            for name, type_expr, _span in decl.fields
        ]
        return "\n".join(lines)
    if isinstance(decl, S.DExtern):
        text = "extern fun {}({})".format(
            decl.name, _params(decl.params)
        )
        if decl.return_type is not None:
            text += " : {}".format(_type(decl.return_type))
        return text + " is {}".format(decl.effect_name)
    if isinstance(decl, S.DFun):
        header = "fun {}({})".format(decl.name, _params(decl.params))
        if decl.return_type is not None:
            header += " : {}".format(_type(decl.return_type))
        return header + "\n" + _block(decl.body, 1)
    if isinstance(decl, S.DPage):
        lines = ["page {}({})".format(decl.name, _params(decl.params))]
        if decl.init_block is not None:
            lines.append("  init")
            lines.append(_block(decl.init_block, 2))
        if decl.render_block is not None:
            lines.append("  render")
            lines.append(_block(decl.render_block, 2))
        return "\n".join(lines)
    raise ReproError("cannot format declaration {!r}".format(decl))


def _params(params):
    return ", ".join(
        "{} : {}".format(name, _type(type_expr))
        for name, type_expr in params
    )


def _type(type_expr):
    if isinstance(type_expr, S.TNumber):
        return "number"
    if isinstance(type_expr, S.TString):
        return "string"
    if isinstance(type_expr, S.TUnit):
        return "()"
    if isinstance(type_expr, S.TList):
        return "list {}".format(_type(type_expr.element))
    if isinstance(type_expr, S.TName):
        return type_expr.name
    raise ReproError("cannot format type {!r}".format(type_expr))


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


def _block(block, depth):
    return "\n".join(
        line for stmt in block.stmts for line in _stmt(stmt, depth)
    )


def _stmt(stmt, depth):
    pad = "  " * depth
    if isinstance(stmt, S.SVarDecl):
        return [pad + "var {} := {}".format(stmt.name, _expr(stmt.value))]
    if isinstance(stmt, S.SAssign):
        return [pad + "{} := {}".format(stmt.name, _expr(stmt.value))]
    if isinstance(stmt, S.SIf):
        lines = [pad + "if {} then".format(_expr(stmt.cond))]
        lines += _stmt_lines(stmt.then_block, depth + 1)
        block = stmt.else_block
        # Re-sugar else-blocks that hold a single if into elif chains.
        while block is not None:
            if len(block.stmts) == 1 and isinstance(block.stmts[0], S.SIf):
                nested = block.stmts[0]
                lines.append(
                    pad + "elif {} then".format(_expr(nested.cond))
                )
                lines += _stmt_lines(nested.then_block, depth + 1)
                block = nested.else_block
            else:
                lines.append(pad + "else")
                lines += _stmt_lines(block, depth + 1)
                block = None
        return lines
    if isinstance(stmt, S.SForIn):
        return [
            pad + "for {} in {} do".format(stmt.var, _expr(stmt.list_expr))
        ] + _stmt_lines(stmt.body, depth + 1)
    if isinstance(stmt, S.SForRange):
        return [
            pad + "for {} = {} to {} do".format(
                stmt.var, _expr(stmt.from_expr), _expr(stmt.to_expr)
            )
        ] + _stmt_lines(stmt.body, depth + 1)
    if isinstance(stmt, S.SWhile):
        return [
            pad + "while {} do".format(_expr(stmt.cond))
        ] + _stmt_lines(stmt.body, depth + 1)
    if isinstance(stmt, S.SBoxed):
        return [pad + "boxed"] + _stmt_lines(stmt.body, depth + 1)
    if isinstance(stmt, S.SPost):
        return [pad + "post {}".format(_expr(stmt.value))]
    if isinstance(stmt, S.SSetAttr):
        return [
            pad + "box.{} := {}".format(
                _ATTR_SPELLING.get(stmt.attr, stmt.attr), _expr(stmt.value)
            )
        ]
    if isinstance(stmt, S.SHandler):
        header = (
            "on tap do" if stmt.kind == "tap"
            else "on edit({}) do".format(stmt.param)
        )
        return [pad + header] + _stmt_lines(stmt.body, depth + 1)
    if isinstance(stmt, S.SEditable):
        return [pad + "editable {}".format(stmt.name)]
    if isinstance(stmt, S.SPush):
        return [
            pad + "push {}({})".format(
                stmt.page, ", ".join(_expr(arg) for arg in stmt.args)
            )
        ]
    if isinstance(stmt, S.SPop):
        return [pad + "pop"]
    if isinstance(stmt, S.SReturn):
        if stmt.value is None:
            return [pad + "return"]
        return [pad + "return {}".format(_expr(stmt.value))]
    if isinstance(stmt, S.SExprStmt):
        return [pad + _expr(stmt.value)]
    raise ReproError("cannot format statement {!r}".format(stmt))


def _stmt_lines(block, depth):
    return [line for stmt in block.stmts for line in _stmt(stmt, depth)]


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


def _expr(expr, parent_level=0, right_side=False):
    text, level = _expr_with_level(expr)
    if level < parent_level or (right_side and level == parent_level):
        return "(" + text + ")"
    return text


def _expr_with_level(expr):
    if isinstance(expr, S.ENum):
        value = expr.value
        if value == int(value):
            return str(int(value)), _LEVEL_ATOM
        return repr(value), _LEVEL_ATOM
    if isinstance(expr, S.EStr):
        escaped = (
            expr.value.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\t", "\\t")
        )
        return '"' + escaped + '"', _LEVEL_ATOM
    if isinstance(expr, S.EBool):
        return ("true" if expr.value else "false"), _LEVEL_ATOM
    if isinstance(expr, S.EVar):
        return expr.name, _LEVEL_ATOM
    if isinstance(expr, S.ECall):
        args = ", ".join(_expr(arg) for arg in expr.args)
        return "{}({})".format(expr.name, args), _LEVEL_ATOM
    if isinstance(expr, S.EField):
        target, level = _expr_with_level(expr.target)
        if level < _LEVEL_ATOM:
            target = "(" + target + ")"
        return "{}.{}".format(target, expr.name), _LEVEL_ATOM
    if isinstance(expr, S.EListLit):
        return (
            "[" + ", ".join(_expr(item) for item in expr.items) + "]",
            _LEVEL_ATOM,
        )
    if isinstance(expr, S.ENil):
        return "nil({})".format(_type(expr.element)), _LEVEL_ATOM
    if isinstance(expr, S.EUnOp):
        level = _LEVEL_NOT if expr.op == "not" else _LEVEL_UNARY
        operand = _expr(expr.operand, level)
        spacer = " " if expr.op == "not" else ""
        return "{}{}{}".format(expr.op, spacer, operand), level
    if isinstance(expr, S.EBinOp):
        level = _BINOP_LEVEL[expr.op]
        left = _expr(expr.left, level)
        right = _expr(expr.right, level, right_side=True)
        return "{} {} {}".format(left, expr.op, right), level
    raise ReproError("cannot format expression {!r}".format(expr))
