"""Indentation-aware lexer for the surface language.

Blocks are delimited by indentation (as the paper's figures typeset
TouchDevelop code), so the lexer synthesizes INDENT/DEDENT tokens the way
Python's tokenizer does: a stack of indentation widths, with a NEWLINE
token at the end of every logical line.  Blank lines and ``//`` comments
are skipped entirely.
"""

from __future__ import annotations

from ..core.errors import SyntaxProblem
from .span import Pos, Span
from .tokens import (
    DEDENT,
    EOF,
    IDENT,
    INDENT,
    KEYWORD,
    KEYWORDS,
    NEWLINE,
    NUMBER,
    OP,
    OPERATORS,
    STRING,
    Token,
)


def tokenize(source):
    """Lex ``source`` into a list of tokens ending with EOF.

    Raises :class:`SyntaxProblem` on malformed input (bad indentation,
    unterminated strings, stray characters).
    """
    return _Lexer(source).run()


class _Lexer:
    def __init__(self, source):
        self.source = source
        self.offset = 0
        self.line = 1
        self.column = 0
        self.tokens = []
        self.indents = [0]

    # -- position helpers ---------------------------------------------------

    def _pos(self):
        return Pos(self.line, self.column, self.offset)

    def _advance(self, count=1):
        for _ in range(count):
            if self.offset < len(self.source) and self.source[self.offset] == "\n":
                self.line += 1
                self.column = 0
            else:
                self.column += 1
            self.offset += 1

    def _peek(self, ahead=0):
        index = self.offset + ahead
        return self.source[index] if index < len(self.source) else ""

    def _emit(self, kind, text, start):
        self.tokens.append(Token(kind, text, Span(start, self._pos())))

    # -- main loop -------------------------------------------------------------

    def run(self):
        at_line_start = True
        while self.offset < len(self.source):
            if at_line_start:
                if self._handle_line_start():
                    continue  # the line was blank or a comment
                at_line_start = False
            char = self._peek()
            if char == "\n":
                self._emit(NEWLINE, "\n", self._pos())
                self._advance()
                at_line_start = True
            elif char in " \t":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                self._skip_comment()
            elif char.isdigit() or (char == "." and self._peek(1).isdigit()):
                self._lex_number()
            elif char == '"':
                self._lex_string()
            elif char.isalpha() or char == "_":
                self._lex_word()
            else:
                self._lex_operator()
        # Close the final line and any open blocks.
        if self.tokens and self.tokens[-1].kind not in (NEWLINE, DEDENT):
            self._emit(NEWLINE, "", self._pos())
        while len(self.indents) > 1:
            self.indents.pop()
            self._emit(DEDENT, "", self._pos())
        self._emit(EOF, "", self._pos())
        return self.tokens

    def _handle_line_start(self):
        """Measure indentation; emit INDENT/DEDENT.  True if line skipped."""
        start_offset = self.offset
        width = 0
        # NB: the emptiness check matters — ``"" in " \t"`` is True, so a
        # file ending in indentation would otherwise spin here forever.
        while self._peek() != "" and self._peek() in " \t":
            width += 4 if self._peek() == "\t" else 1
            self._advance()
        # Blank line or comment-only line: ignore entirely.
        if self._peek() in ("\n", ""):
            if self._peek() == "\n":
                self._advance()
            return True
        if self._peek() == "/" and self._peek(1) == "/":
            self._skip_comment()
            if self._peek() == "\n":
                self._advance()
            return True
        current = self.indents[-1]
        if width > current:
            self.indents.append(width)
            self._emit(INDENT, "", self._pos())
        else:
            while width < self.indents[-1]:
                self.indents.pop()
                self._emit(DEDENT, "", self._pos())
            if width != self.indents[-1]:
                raise SyntaxProblem(
                    "inconsistent indentation (width {})".format(width),
                    span=Span(self._pos(), self._pos()),
                )
        return False

    # -- token lexers --------------------------------------------------------------

    def _skip_comment(self):
        while self._peek() not in ("\n", ""):
            self._advance()

    def _lex_number(self):
        start = self._pos()
        text = []
        seen_dot = False
        while self._peek().isdigit() or (self._peek() == "." and not seen_dot
                                         and self._peek(1).isdigit()):
            if self._peek() == ".":
                seen_dot = True
            text.append(self._peek())
            self._advance()
        self._emit(NUMBER, "".join(text), start)

    def _lex_string(self):
        start = self._pos()
        self._advance()  # opening quote
        text = []
        while True:
            char = self._peek()
            if char == "":
                raise SyntaxProblem(
                    "unterminated string literal", span=Span(start, self._pos())
                )
            if char == "\n":
                raise SyntaxProblem(
                    "newline in string literal", span=Span(start, self._pos())
                )
            if char == "\\":
                escape = self._peek(1)
                mapping = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}
                if escape not in mapping:
                    raise SyntaxProblem(
                        "unknown escape \\{}".format(escape),
                        span=Span(self._pos(), self._pos()),
                    )
                text.append(mapping[escape])
                self._advance(2)
                continue
            if char == '"':
                self._advance()
                break
            text.append(char)
            self._advance()
        self._emit(STRING, "".join(text), start)

    def _lex_word(self):
        start = self._pos()
        text = []
        while self._peek().isalnum() or self._peek() == "_":
            text.append(self._peek())
            self._advance()
        word = "".join(text)
        self._emit(KEYWORD if word in KEYWORDS else IDENT, word, start)

    def _lex_operator(self):
        start = self._pos()
        for op in OPERATORS:
            if self.source.startswith(op, self.offset):
                self._advance(len(op))
                self._emit(OP, op, start)
                return
        raise SyntaxProblem(
            "unexpected character {!r}".format(self._peek()),
            span=Span(start, start),
        )
