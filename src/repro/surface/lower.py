"""Lowering: annotated surface programs → the core calculus of Fig. 6.

This implements exactly the desugaring the paper describes for its own
surface syntax (§4.1): "Loops are expressible in our calculus via
recursion through global functions, conditionals via lambda abstractions
and thunks."  Concretely:

* **statement sequencing** becomes let-chains
  (``let _ = e1 in e2`` ≡ ``(λ_. e2) e1``);
* **mutable locals** become shadowing lets in straight-line code and
  *loop-carried tuple components* across loops and conditionals;
* **every loop** (``while``, ``for-in``, ``for-range``) becomes a
  generated, tail-recursive global function whose parameter tuple carries
  the loop state — the free locals it reads plus the locals it mutates;
  the CEK machine runs these in constant stack;
* **records** erase to tuples, field access to 1-based projection;
* **handlers** (``on tap``/``on edit``) become ``box.ontap := λ…`` with a
  state-effect lambda — closing over the surrounding locals by value,
  which is why the checker freezes outer locals inside handler bodies;
* **function calls** pass a single argument tuple (the calculus has
  unary functions; "we use tuples to simplify the passing of multiple
  values").

The output is re-checked by the core Fig. 10 checker, so any lowering bug
surfaces as a core type error rather than silent misbehaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import ast as C
from ..core.defs import Code, FunDef, GlobalDef, PageDef
from ..core.effects import PURE, RENDER, STATE
from ..core.errors import ReproError
from ..core.names import ATTR_EDITABLE, ATTR_ONEDIT, ATTR_ONTAP
from ..core.types import FunType, STRING, TupleType, UNIT
from . import surface_ast as S


@dataclass
class LoweredProgram:
    """Result of lowering: core code plus the extern signatures."""

    code: Code
    extern_sigs: list  # of repro.core.prims.PrimSig
    generated_functions: list  # names of synthesized loop functions


def lower_program(program, env):
    """Lower a *typechecked* surface program.

    ``env`` must be the :class:`~repro.surface.resolve.ProgramEnv` the
    checker annotated the AST against.
    """
    ctx = _Lowerer(env)
    defs = []
    extern_sigs = []
    for decl in program.decls:
        if isinstance(decl, S.DGlobal):
            defs.append(ctx.lower_global(decl))
        elif isinstance(decl, S.DFun):
            defs.append(ctx.lower_fun(decl))
        elif isinstance(decl, S.DPage):
            defs.append(ctx.lower_page(decl))
        elif isinstance(decl, S.DExtern):
            extern_sigs.append(ctx.extern_signature(decl))
        elif isinstance(decl, S.DRecord):
            pass  # records erase entirely
        else:
            raise ReproError("cannot lower {!r}".format(decl))
    defs.extend(ctx.generated)
    return LoweredProgram(
        Code(defs),
        extern_sigs,
        [d.name for d in ctx.generated],
    )


# ---------------------------------------------------------------------------
# free/assigned local analysis (drives loop-state construction)
# ---------------------------------------------------------------------------


def _expr_local_reads(expr, bound, acc):
    if isinstance(expr, S.EVar):
        if expr.resolution == "local" and expr.name not in bound:
            if expr.name not in acc:
                acc.append(expr.name)
        return
    for child in _children_of(expr):
        _expr_local_reads(child, bound, acc)


def _children_of(expr):
    if isinstance(expr, S.ECall):
        return expr.args
    if isinstance(expr, S.EField):
        return (expr.target,)
    if isinstance(expr, S.EBinOp):
        return (expr.left, expr.right)
    if isinstance(expr, S.EUnOp):
        return (expr.operand,)
    if isinstance(expr, S.EListLit):
        return expr.items
    return ()


def _block_local_reads(block, bound, acc):
    bound = set(bound)
    for stmt in block.stmts:
        _stmt_local_reads(stmt, bound, acc)


def _stmt_local_reads(stmt, bound, acc):
    if isinstance(stmt, S.SVarDecl):
        _expr_local_reads(stmt.value, bound, acc)
        bound.add(stmt.name)
    elif isinstance(stmt, S.SAssign):
        _expr_local_reads(stmt.value, bound, acc)
        if stmt.resolution == "local" and stmt.name not in bound:
            # The loop must carry a local it writes even if it never
            # reads it: the updated value flows out through the state
            # tuple.
            if stmt.name not in acc:
                acc.append(stmt.name)
    elif isinstance(stmt, S.SIf):
        _expr_local_reads(stmt.cond, bound, acc)
        _block_local_reads(stmt.then_block, bound, acc)
        if stmt.else_block is not None:
            _block_local_reads(stmt.else_block, bound, acc)
    elif isinstance(stmt, S.SForIn):
        _expr_local_reads(stmt.list_expr, bound, acc)
        _block_local_reads(stmt.body, bound | {stmt.var}, acc)
    elif isinstance(stmt, S.SForRange):
        _expr_local_reads(stmt.from_expr, bound, acc)
        _expr_local_reads(stmt.to_expr, bound, acc)
        _block_local_reads(stmt.body, bound | {stmt.var}, acc)
    elif isinstance(stmt, S.SWhile):
        _expr_local_reads(stmt.cond, bound, acc)
        _block_local_reads(stmt.body, bound, acc)
    elif isinstance(stmt, S.SBoxed):
        _block_local_reads(stmt.body, bound, acc)
    elif isinstance(stmt, (S.SPost, S.SSetAttr, S.SExprStmt)):
        _expr_local_reads(stmt.value, bound, acc)
    elif isinstance(stmt, S.SHandler):
        handler_bound = bound | ({stmt.param} if stmt.param else set())
        _block_local_reads(stmt.body, handler_bound, acc)
    elif isinstance(stmt, S.SPush):
        for arg in stmt.args:
            _expr_local_reads(arg, bound, acc)
    elif isinstance(stmt, S.SReturn):
        if stmt.value is not None:
            _expr_local_reads(stmt.value, bound, acc)
    elif isinstance(stmt, (S.SPop, S.SEditable)):
        pass
    else:
        raise ReproError("cannot analyze {!r}".format(stmt))


def _block_assigned_outer(block, bound, acc):
    """Locals assigned in ``block`` that are declared outside it."""
    bound = set(bound)
    for stmt in block.stmts:
        if isinstance(stmt, S.SVarDecl):
            bound.add(stmt.name)
        elif isinstance(stmt, S.SAssign):
            if stmt.resolution == "local" and stmt.name not in bound:
                if stmt.name not in acc:
                    acc.append(stmt.name)
        elif isinstance(stmt, S.SIf):
            _block_assigned_outer(stmt.then_block, bound, acc)
            if stmt.else_block is not None:
                _block_assigned_outer(stmt.else_block, bound, acc)
        elif isinstance(stmt, (S.SForIn, S.SForRange, S.SWhile)):
            loop_bound = bound | {getattr(stmt, "var", None)} - {None}
            _block_assigned_outer(stmt.body, loop_bound, acc)
        elif isinstance(stmt, S.SBoxed):
            _block_assigned_outer(stmt.body, bound, acc)
        # Handler bodies cannot assign outer locals (checker freezes them).
    return acc


# ---------------------------------------------------------------------------
# the lowerer
# ---------------------------------------------------------------------------


class _LowerScope:
    """Tracks surface locals in scope with their core types."""

    def __init__(self):
        self._frames = [{}]

    def push(self):
        self._frames.append({})

    def pop(self):
        self._frames.pop()

    def declare(self, name, core_type):
        self._frames[-1][name] = core_type

    def core_type(self, name):
        for frame in reversed(self._frames):
            if name in frame:
                return frame[name]
        raise ReproError("local '{}' not in lowering scope".format(name))


class _Lowerer:
    def __init__(self, env):
        self.env = env
        self.records = env.records
        self.generated = []
        self._loop_counter = 0
        self._name_counter = 0

    def _fresh(self, base):
        """Deterministic fresh names: compiling the same source twice
        yields structurally identical core code (the fix-and-continue
        baseline and the reuse optimization both rely on comparing
        compiled artifacts).  The ``%`` keeps them disjoint from source
        identifiers, like :func:`repro.core.ast.fresh_name`."""
        self._name_counter += 1
        return "{}%{}".format(base, self._name_counter)

    # -- helpers -------------------------------------------------------------

    def core(self, stype):
        return stype.to_core(self.records)

    def _let(self, name, bound, bound_type, body, effect):
        """``let name : bound_type = bound in body`` via EP-APP."""
        return C.App(C.Lam(name, bound_type, body, effect), bound)

    def _discard(self, bound, bound_type, body, effect):
        return self._let(self._fresh("seq"), bound, bound_type, body, effect)

    def _param_tuple_type(self, stypes):
        return TupleType(tuple(self.core(t) for t in stypes))

    def _bind_params(self, arg_var, names, stypes, body, effect):
        """Prefix ``body`` with ``let p_i = arg.i`` bindings."""
        for index in reversed(range(len(names))):
            body = self._let(
                names[index],
                C.Proj(C.Var(arg_var), index + 1),
                self.core(stypes[index]),
                body,
                effect,
            )
        return body

    # -- declarations -------------------------------------------------------------

    def lower_global(self, decl):
        sig = self.env.globals[decl.name]
        value = self.lower_const(decl.init)
        return GlobalDef(decl.name, self.core(sig.stype), value)

    def lower_const(self, expr):
        """Lower a constant initializer to a core *value* (folds unary minus)."""
        if isinstance(expr, S.EUnOp) and expr.op == "-":
            inner = self.lower_const(expr.operand)
            if isinstance(inner, C.Num):
                return C.Num(-inner.value)
            raise ReproError("non-constant negation in initializer")
        value = self.lower_expr(expr, _LowerScope(), PURE)
        if not value.is_value():
            raise ReproError(
                "initializer did not lower to a value: {!r}".format(expr)
            )
        return value

    def lower_fun(self, decl):
        sig = self.env.funs[decl.name]
        effect = sig.effect or PURE
        arg_type = self._param_tuple_type(sig.param_stypes)
        return_type = self.core(sig.return_stype)
        scope = _LowerScope()
        for name, stype in zip(sig.param_names, sig.param_stypes):
            scope.declare(name, self.core(stype))
        arg_var = self._fresh("args")
        body = self.lower_block(decl.body, scope, effect, C.UNIT_VALUE)
        body = self._bind_params(
            arg_var, sig.param_names, sig.param_stypes, body, effect
        )
        lam = C.Lam(arg_var, arg_type, body, effect)
        return FunDef(decl.name, FunType(arg_type, return_type, effect), lam)

    def lower_page(self, decl):
        sig = self.env.pages[decl.name]
        arg_type = self._param_tuple_type(sig.param_stypes)

        def page_body(block, effect):
            scope = _LowerScope()
            for name, stype in zip(sig.param_names, sig.param_stypes):
                scope.declare(name, self.core(stype))
            arg_var = self._fresh("page")
            if block is None:
                body = C.UNIT_VALUE
            else:
                body = self.lower_block(block, scope, effect, C.UNIT_VALUE)
            body = self._bind_params(
                arg_var, sig.param_names, sig.param_stypes, body, effect
            )
            return C.Lam(arg_var, arg_type, body, effect)

        return PageDef(
            decl.name,
            arg_type,
            page_body(decl.init_block, STATE),
            page_body(decl.render_block, RENDER),
        )

    def extern_signature(self, decl):
        from ..core.prims import PrimSig

        sig = self.env.externs[decl.name]
        return PrimSig(
            decl.name,
            tuple(self.core(t) for t in sig.param_stypes),
            self.core(sig.return_stype),
            sig.effect,
            doc="extern fun declared at {}".format(decl.span),
        )

    # -- statements ------------------------------------------------------------------

    def lower_block(self, block, scope, effect, k):
        """Lower ``block`` with continuation ``k`` (evaluated afterwards)."""
        scope.push()
        try:
            return self._lower_stmts(block.stmts, scope, effect, k)
        finally:
            scope.pop()

    def _lower_stmts(self, stmts, scope, effect, k):
        if not stmts:
            return k
        head = stmts[0]
        # ``return`` consumes the continuation; the checker guarantees it
        # is the final statement of a function body.
        if isinstance(head, S.SReturn):
            if head.value is None:
                return C.UNIT_VALUE
            return self.lower_expr(head.value, scope, effect)
        rest = lambda: self._lower_stmts(stmts[1:], scope, effect, k)
        return self._lower_stmt(head, scope, effect, rest)

    def _lower_stmt(self, stmt, scope, effect, rest):
        if isinstance(stmt, S.SVarDecl):
            value = self.lower_expr(stmt.value, scope, effect)
            core_type = self.core(stmt.value.stype)
            scope.declare(stmt.name, core_type)
            return self._let(stmt.name, value, core_type, rest(), effect)
        if isinstance(stmt, S.SAssign):
            value = self.lower_expr(stmt.value, scope, effect)
            if stmt.resolution == "local":
                core_type = scope.core_type(stmt.name)
                return self._let(stmt.name, value, core_type, rest(), effect)
            return self._discard(
                C.GlobalWrite(stmt.name, value), UNIT, rest(), effect
            )
        if isinstance(stmt, S.SExprStmt):
            value = self.lower_expr(stmt.value, scope, effect)
            return self._discard(
                value, self.core(stmt.value.stype), rest(), effect
            )
        if isinstance(stmt, S.SPost):
            return self._discard(
                C.Post(self.lower_expr(stmt.value, scope, effect)),
                UNIT, rest(), effect,
            )
        if isinstance(stmt, S.SSetAttr):
            return self._discard(
                C.SetAttr(
                    stmt.attr, self.lower_expr(stmt.value, scope, effect)
                ),
                UNIT, rest(), effect,
            )
        if isinstance(stmt, S.SBoxed):
            # Assignments to outer locals inside the boxed body must flow
            # out.  Rule ER-BOXED returns the body's value (``E[v]``), so
            # the body yields the tuple of mutated locals, which is
            # rebound around the continuation — same strategy as ``if``.
            mutated = []
            _block_assigned_outer(stmt.body, set(), mutated)
            if not mutated:
                inner = self.lower_block(
                    stmt.body, scope, effect, C.UNIT_VALUE
                )
                return self._discard(
                    C.Boxed(inner, box_id=stmt.box_id), UNIT, rest(), effect
                )
            result_type = TupleType(
                tuple(scope.core_type(name) for name in mutated)
            )
            inner = self.lower_block(
                stmt.body, scope, effect,
                C.Tuple(tuple(C.Var(name) for name in mutated)),
            )
            return self._rebind_from_tuple(
                C.Boxed(inner, box_id=stmt.box_id),
                result_type, mutated, scope, effect, rest(),
            )
        if isinstance(stmt, S.SEditable):
            # Desugar ``editable g`` (see surface_ast.SEditable): display
            # the global, mark the box editable, and register an onedit
            # handler writing the parsed text back.
            sig = self.env.globals[stmt.name]
            is_number = sig.stype == S.S_NUMBER
            text_var = self._fresh("t")
            new_value = (
                C.Prim("num_of_str", (C.Var(text_var),))
                if is_number
                else C.Var(text_var)
            )
            handler = C.Lam(
                text_var, STRING,
                C.GlobalWrite(stmt.name, new_value), STATE,
            )
            pieces = rest()
            for piece in (
                C.SetAttr(ATTR_ONEDIT, handler),
                C.SetAttr(ATTR_EDITABLE, C.Num(1)),
                C.Post(C.GlobalRead(stmt.name)),
            ):
                pieces = self._discard(piece, UNIT, pieces, effect)
            return pieces
        if isinstance(stmt, S.SHandler):
            if stmt.kind == "tap":
                attr, param, param_type = ATTR_ONTAP, self._fresh("u"), UNIT
            else:
                attr, param, param_type = ATTR_ONEDIT, stmt.param, STRING
            scope.push()
            try:
                if stmt.kind == "edit":
                    scope.declare(param, STRING)
                body = self.lower_block(stmt.body, scope, STATE, C.UNIT_VALUE)
            finally:
                scope.pop()
            handler = C.Lam(param, param_type, body, STATE)
            return self._discard(
                C.SetAttr(attr, handler), UNIT, rest(), effect
            )
        if isinstance(stmt, S.SPush):
            args = C.Tuple(
                tuple(
                    self.lower_expr(arg, scope, effect) for arg in stmt.args
                )
            )
            return self._discard(
                C.Push(stmt.page, args), UNIT, rest(), effect
            )
        if isinstance(stmt, S.SPop):
            return self._discard(C.Pop(), UNIT, rest(), effect)
        if isinstance(stmt, S.SIf):
            return self._lower_if(stmt, scope, effect, rest)
        if isinstance(stmt, S.SWhile):
            return self._lower_loop(
                stmt, scope, effect, rest, kind="while"
            )
        if isinstance(stmt, S.SForRange):
            return self._lower_loop(
                stmt, scope, effect, rest, kind="range"
            )
        if isinstance(stmt, S.SForIn):
            return self._lower_loop(
                stmt, scope, effect, rest, kind="forin"
            )
        raise ReproError("cannot lower statement {!r}".format(stmt))

    # -- conditionals --------------------------------------------------------------

    def _lower_if(self, stmt, scope, effect, rest):
        cond = self.lower_expr(stmt.cond, scope, effect)
        mutated = []
        _block_assigned_outer(stmt.then_block, set(), mutated)
        if stmt.else_block is not None:
            _block_assigned_outer(stmt.else_block, set(), mutated)
        if not mutated:
            then_branch = self.lower_block(
                stmt.then_block, scope, effect, C.UNIT_VALUE
            )
            else_branch = (
                self.lower_block(stmt.else_block, scope, effect, C.UNIT_VALUE)
                if stmt.else_block is not None
                else C.UNIT_VALUE
            )
            return self._discard(
                C.If(cond, then_branch, else_branch), UNIT, rest(), effect
            )
        # Branches mutate outer locals: each branch yields the tuple of
        # their final values, which is rebound around the continuation.
        result_vars = tuple(C.Var(name) for name in mutated)
        result_type = TupleType(
            tuple(scope.core_type(name) for name in mutated)
        )
        then_branch = self.lower_block(
            stmt.then_block, scope, effect, C.Tuple(result_vars)
        )
        else_branch = (
            self.lower_block(
                stmt.else_block, scope, effect, C.Tuple(result_vars)
            )
            if stmt.else_block is not None
            else C.Tuple(result_vars)
        )
        joined = C.If(cond, then_branch, else_branch)
        return self._rebind_from_tuple(
            joined, result_type, mutated, scope, effect, rest()
        )

    def _rebind_from_tuple(
        self, tuple_expr, tuple_type, names, scope, effect, continuation,
        offset=0,
    ):
        """``let t = tuple_expr in let n_i = t.(i+offset) in continuation``."""
        temp = self._fresh("st")
        body = continuation
        for index in reversed(range(len(names))):
            body = self._let(
                names[index],
                C.Proj(C.Var(temp), index + 1 + offset),
                tuple_type.elements[index + offset],
                body,
                effect,
            )
        return self._let(temp, tuple_expr, tuple_type, body, effect)

    # -- loops -------------------------------------------------------------------------

    def _fresh_loop_name(self, kind):
        self._loop_counter += 1
        return "$" + "{}_{}".format(kind, self._loop_counter)

    def _loop_state(self, stmt, scope, kind):
        """The loop-carried surface locals: free reads ∪ mutated, ordered."""
        reads = []
        mutated = []
        body_bound = set()
        if kind == "while":
            _expr_local_reads(stmt.cond, set(), reads)
        elif kind == "range":
            body_bound = {stmt.var}
        elif kind == "forin":
            body_bound = {stmt.var}
        _block_local_reads(stmt.body, body_bound, reads)
        _block_assigned_outer(stmt.body, body_bound, mutated)
        state = list(reads)
        for name in mutated:
            if name not in state:
                state.append(name)
        return state, mutated

    def _lower_loop(self, stmt, scope, effect, rest, kind):
        """Generate the tail-recursive global function for one loop.

        State tuple layout: ``(controls..., locals...)`` where controls are
        the loop's own counters (none for ``while``; ``(i, limit)`` for
        ranges; ``(i, xs)`` for for-in) and locals are the carried surface
        variables.  The function returns the final state tuple; mutated
        locals are rebound from it around the continuation.
        """
        fun_name = self._fresh_loop_name(kind)
        state_names, mutated = self._loop_state(stmt, scope, kind)
        local_types = [scope.core_type(name) for name in state_names]

        if kind == "while":
            control_names = []
            control_types = []
        elif kind == "range":
            control_names = [stmt.var, self._fresh("limit")]
            control_types = [
                self.core(S.S_NUMBER), self.core(S.S_NUMBER),
            ]
        else:  # forin
            control_names = [self._fresh("idx"), self._fresh("xs")]
            list_core = self.core(stmt.list_expr.stype)
            control_types = [self.core(S.S_NUMBER), list_core]

        all_names = control_names + state_names
        all_types = control_types + local_types
        state_type = TupleType(tuple(all_types))
        fun_type = FunType(state_type, state_type, effect)

        # --- build the generated function's body -------------------------
        body_scope = _LowerScope()
        for name, core_type in zip(all_names, all_types):
            body_scope.declare(name, core_type)

        def current_state(next_controls):
            return C.Tuple(
                tuple(next_controls)
                + tuple(C.Var(name) for name in state_names)
            )

        if kind == "while":
            cond = self.lower_expr(stmt.cond, body_scope, effect)
            tail = C.App(C.FunRef(fun_name), current_state([]))
            body = self.lower_block(stmt.body, body_scope, effect, tail)
            stop = current_state([])
        elif kind == "range":
            loop_var, limit_var = control_names
            cond = C.Prim("le", (C.Var(loop_var), C.Var(limit_var)))
            tail = C.App(
                C.FunRef(fun_name),
                current_state(
                    [
                        C.Prim("add", (C.Var(loop_var), C.Num(1))),
                        C.Var(limit_var),
                    ]
                ),
            )
            body = self.lower_block(stmt.body, body_scope, effect, tail)
            stop = current_state([C.Var(loop_var), C.Var(limit_var)])
        else:  # forin
            idx_var, xs_var = control_names
            cond = C.Prim(
                "lt",
                (C.Var(idx_var), C.Prim("list_length", (C.Var(xs_var),))),
            )
            tail = C.App(
                C.FunRef(fun_name),
                current_state(
                    [
                        C.Prim("add", (C.Var(idx_var), C.Num(1))),
                        C.Var(xs_var),
                    ]
                ),
            )
            body_scope.push()
            element_type = self.core(stmt.list_expr.stype.element)
            body_scope.declare(stmt.var, element_type)
            inner = self.lower_block(stmt.body, body_scope, effect, tail)
            body_scope.pop()
            body = self._let(
                stmt.var,
                C.Prim("list_get", (C.Var(xs_var), C.Var(idx_var))),
                element_type,
                inner,
                effect,
            )
            stop = current_state([C.Var(idx_var), C.Var(xs_var)])

        state_var = self._fresh("state")
        fn_body = C.If(cond, body, stop)
        for index in reversed(range(len(all_names))):
            fn_body = self._let(
                all_names[index],
                C.Proj(C.Var(state_var), index + 1),
                all_types[index],
                fn_body,
                effect,
            )
        self.generated.append(
            FunDef(
                fun_name,
                fun_type,
                C.Lam(state_var, state_type, fn_body, effect),
            )
        )

        # --- the call site ------------------------------------------------
        if kind == "while":
            initial_controls = []
        elif kind == "range":
            initial_controls = [
                self.lower_expr(stmt.from_expr, scope, effect),
                self.lower_expr(stmt.to_expr, scope, effect),
            ]
        else:
            initial_controls = [
                C.Num(0),
                self.lower_expr(stmt.list_expr, scope, effect),
            ]
        initial = C.Tuple(
            tuple(initial_controls)
            + tuple(C.Var(name) for name in state_names)
        )
        call = C.App(C.FunRef(fun_name), initial)
        if not mutated:
            return self._discard(call, state_type, rest(), effect)
        # Rebind every mutated local from its position in the final state.
        offset = len(control_names)
        positions = [state_names.index(name) for name in mutated]
        temp = self._fresh("st")
        body = rest()
        for name, position in reversed(list(zip(mutated, positions))):
            body = self._let(
                name,
                C.Proj(C.Var(temp), offset + position + 1),
                local_types[position],
                body,
                effect,
            )
        return self._let(temp, call, state_type, body, effect)

    # -- expressions ---------------------------------------------------------------------

    def lower_expr(self, expr, scope, effect):
        if isinstance(expr, S.ENum):
            return C.Num(expr.value)
        if isinstance(expr, S.EStr):
            return C.Str(expr.value)
        if isinstance(expr, S.EBool):
            return C.Num(1.0 if expr.value else 0.0)
        if isinstance(expr, S.EVar):
            if expr.resolution == "local":
                return C.Var(expr.name)
            if expr.resolution == "global":
                return C.GlobalRead(expr.name)
            raise ReproError(
                "unresolved variable '{}' (typecheck first)".format(expr.name)
            )
        if isinstance(expr, S.ECall):
            args = tuple(
                self.lower_expr(arg, scope, effect) for arg in expr.args
            )
            if expr.target_kind == "record":
                return C.Tuple(args)
            if expr.target_kind == "fun":
                return C.App(C.FunRef(expr.name), C.Tuple(args))
            if expr.target_kind in ("builtin", "extern"):
                return C.Prim(expr.core_op, args)
            raise ReproError(
                "unresolved call '{}' (typecheck first)".format(expr.name)
            )
        if isinstance(expr, S.EField):
            target = self.lower_expr(expr.target, scope, effect)
            if expr.index is None:
                raise ReproError("unresolved field access (typecheck first)")
            return C.Proj(target, expr.index)
        if isinstance(expr, S.EBinOp):
            left = self.lower_expr(expr.left, scope, effect)
            right = self.lower_expr(expr.right, scope, effect)
            if expr.core_op == "concat":
                left = self._coerce_to_string(left, expr.left)
                right = self._coerce_to_string(right, expr.right)
            return C.Prim(expr.core_op, (left, right))
        if isinstance(expr, S.EUnOp):
            return C.Prim(
                expr.core_op, (self.lower_expr(expr.operand, scope, effect),)
            )
        if isinstance(expr, S.EListLit):
            element = self.core(expr.stype.element)
            return C.ListLit(
                tuple(
                    self.lower_expr(item, scope, effect)
                    for item in expr.items
                ),
                element,
            )
        if isinstance(expr, S.ENil):
            return C.ListLit((), self.core(expr.stype.element))
        raise ReproError("cannot lower expression {!r}".format(expr))

    def _coerce_to_string(self, lowered, surface_expr):
        if surface_expr.stype == S.S_NUMBER:
            return C.Prim("str_of_num", (lowered,))
        return lowered
