"""Recursive-descent parser for the surface language.

Grammar sketch (blocks are indentation-delimited; ``//`` comments)::

    program  := decl*
    decl     := "global" x ":" type "=" expr
              | "record" x <indented field list>
              | "fun" f "(" params ")" [":" type] block
              | "extern" "fun" f "(" params ")" [":" type] ["is" effect]
              | "page" p "(" params ")" <"init" block> <"render" block>
    stmt     := "var" x ":=" e | x ":=" e | "if" e "then" B ["elif"…]
              | "for" x "in" e "do" B | "for" x "=" e "to" e "do" B
              | "while" e "do" B | "boxed" B | "post" e
              | "box" "." attr ":=" e | "on" "tap" "do" B
              | "on" "edit" "(" x ")" "do" B | "push" p "(" args ")"
              | "pop" | "return" [e] | e

Expressions have the usual precedence ladder with ``||`` for string
concatenation (the paper's operator), ``and``/``or``/``not``, comparisons,
arithmetic, record field access ``e.f``, calls, list literals and
``nil(type)`` for empty lists.

``boxed`` statements receive sequential ``box_id``\\ s in document order —
the stable keys of the UI-code navigation source map.
"""

from __future__ import annotations

from ..core.errors import SyntaxProblem
from . import surface_ast as S
from .lexer import tokenize
from .span import Span
from .tokens import (
    DEDENT,
    EOF,
    IDENT,
    INDENT,
    KEYWORD,
    NEWLINE,
    NUMBER,
    OP,
    STRING,
)

#: Surface attribute identifiers (underscored) → registry names (spaced).
ATTR_NAME_MAP = {"font_size": "font size"}


def parse(source):
    """Parse ``source`` into a :class:`repro.surface.surface_ast.Program`."""
    return _Parser(tokenize(source)).parse_program()


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.index = 0
        self.box_counter = 0

    # -- cursor helpers ----------------------------------------------------

    def _peek(self, ahead=0):
        index = min(self.index + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self):
        token = self.tokens[self.index]
        if token.kind != EOF:
            self.index += 1
        return token

    def _at(self, kind, text=None):
        token = self._peek()
        return token.kind == kind and (text is None or token.text == text)

    def _at_keyword(self, *words):
        token = self._peek()
        return token.kind == KEYWORD and token.text in words

    def _accept(self, kind, text=None):
        if self._at(kind, text):
            return self._advance()
        return None

    def _expect(self, kind, text=None, what=None):
        token = self._peek()
        if self._at(kind, text):
            return self._advance()
        raise SyntaxProblem(
            "expected {}, found {}".format(
                what or text or kind.lower(), token
            ),
            span=token.span,
        )

    def _expect_newline(self):
        self._expect(NEWLINE, what="end of line")
        # Collapse runs of NEWLINEs (blank lines produce none, but be safe).
        while self._accept(NEWLINE):
            pass

    def _span_from(self, start_token):
        return Span(start_token.span.start, self._peek(-0).span.start)

    # -- program & declarations ------------------------------------------------

    def parse_program(self):
        decls = []
        start = self._peek()
        while self._accept(NEWLINE):
            pass
        while not self._at(EOF):
            decls.append(self._parse_decl())
            while self._accept(NEWLINE):
                pass
        return S.Program(decls, Span(start.span.start, self._peek().span.end))

    def _parse_decl(self):
        token = self._peek()
        if token.is_keyword("global"):
            return self._parse_global()
        if token.is_keyword("record"):
            return self._parse_record()
        if token.is_keyword("fun"):
            return self._parse_fun()
        if token.is_keyword("extern"):
            return self._parse_extern()
        if token.is_keyword("page"):
            return self._parse_page()
        raise SyntaxProblem(
            "expected a declaration (global/record/fun/extern/page), "
            "found {}".format(token),
            span=token.span,
        )

    def _parse_global(self):
        start = self._advance()  # 'global'
        name = self._expect(IDENT, what="global name").text
        self._expect(OP, ":")
        type_expr = self._parse_type()
        self._expect(OP, "=")
        init = self._parse_expr()
        self._expect_newline()
        decl = S.DGlobal(self._span_from(start))
        decl.name, decl.type_expr, decl.init = name, type_expr, init
        return decl

    def _parse_record(self):
        start = self._advance()  # 'record'
        name = self._expect(IDENT, what="record name").text
        self._expect_newline()
        self._expect(INDENT, what="an indented field list")
        fields = []
        while not self._at(DEDENT):
            field_tok = self._expect(IDENT, what="field name")
            self._expect(OP, ":")
            type_expr = self._parse_type()
            self._expect_newline()
            fields.append((field_tok.text, type_expr, field_tok.span))
        self._expect(DEDENT)
        decl = S.DRecord(self._span_from(start))
        decl.name, decl.fields = name, fields
        return decl

    def _parse_params(self):
        self._expect(OP, "(")
        params = []
        if not self._at(OP, ")"):
            while True:
                name = self._expect(IDENT, what="parameter name").text
                self._expect(OP, ":")
                params.append((name, self._parse_type()))
                if not self._accept(OP, ","):
                    break
        self._expect(OP, ")")
        return params

    def _parse_fun(self):
        start = self._advance()  # 'fun'
        name = self._expect(IDENT, what="function name").text
        params = self._parse_params()
        return_type = None
        if self._accept(OP, ":"):
            return_type = self._parse_type()
        self._expect_newline()
        body = self._parse_block()
        decl = S.DFun(self._span_from(start))
        decl.name, decl.params, decl.return_type, decl.body = (
            name, params, return_type, body,
        )
        return decl

    def _parse_extern(self):
        start = self._advance()  # 'extern'
        self._expect(KEYWORD, "fun")
        name = self._expect(IDENT, what="extern name").text
        params = self._parse_params()
        return_type = None
        if self._accept(OP, ":"):
            return_type = self._parse_type()
        effect_name = "state"
        if self._accept(KEYWORD, "is"):
            token = self._peek()
            if token.is_keyword("state") or token.is_keyword("pure"):
                effect_name = self._advance().text
            else:
                raise SyntaxProblem(
                    "extern effect must be 'state' or 'pure'",
                    span=token.span,
                )
        self._expect_newline()
        decl = S.DExtern(self._span_from(start))
        decl.name, decl.params, decl.return_type, decl.effect_name = (
            name, params, return_type, effect_name,
        )
        return decl

    def _parse_page(self):
        start = self._advance()  # 'page'
        name = self._expect(IDENT, what="page name").text
        params = self._parse_params()
        self._expect_newline()
        self._expect(INDENT, what="an indented page body")
        init_block = None
        render_block = None
        while not self._at(DEDENT):
            token = self._peek()
            if token.is_keyword("init"):
                if init_block is not None:
                    raise SyntaxProblem(
                        "page '{}' has two init bodies".format(name),
                        span=token.span,
                    )
                self._advance()
                self._expect_newline()
                init_block = self._parse_block()
            elif token.is_keyword("render"):
                if render_block is not None:
                    raise SyntaxProblem(
                        "page '{}' has two render bodies".format(name),
                        span=token.span,
                    )
                self._advance()
                self._expect_newline()
                render_block = self._parse_block()
            else:
                raise SyntaxProblem(
                    "expected 'init' or 'render' in page body, found "
                    "{}".format(token),
                    span=token.span,
                )
        self._expect(DEDENT)
        decl = S.DPage(self._span_from(start))
        decl.name, decl.params = name, params
        decl.init_block, decl.render_block = init_block, render_block
        return decl

    # -- types -----------------------------------------------------------------

    def _parse_type(self):
        token = self._peek()
        if token.is_keyword("number"):
            return S.TNumber(self._advance().span)
        if token.is_keyword("string"):
            return S.TString(self._advance().span)
        if token.is_keyword("list"):
            self._advance()
            element = self._parse_type()
            return S.TList(token.span.merge(element.span), element)
        if token.is_op("("):
            self._advance()
            close = self._expect(OP, ")", what="')' (only the unit type "
                                 "'()' is written with parentheses)")
            return S.TUnit(token.span.merge(close.span))
        if token.kind == IDENT:
            self._advance()
            return S.TName(token.span, token.text)
        raise SyntaxProblem(
            "expected a type, found {}".format(token), span=token.span
        )

    # -- blocks & statements -------------------------------------------------------

    def _parse_block(self):
        open_tok = self._expect(INDENT, what="an indented block")
        stmts = []
        while not self._at(DEDENT):
            stmts.append(self._parse_stmt())
        close = self._expect(DEDENT)
        return S.Block(stmts, Span(open_tok.span.start, close.span.end))

    def _parse_stmt(self):
        token = self._peek()
        if token.is_keyword("var"):
            return self._parse_var_decl()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("boxed"):
            return self._parse_boxed()
        if token.is_keyword("post"):
            return self._parse_post()
        if token.is_keyword("box"):
            return self._parse_set_attr()
        if token.is_keyword("on"):
            return self._parse_handler()
        if token.is_keyword("editable"):
            start = self._advance()
            name = self._expect(IDENT, what="global name").text
            self._expect_newline()
            stmt = S.SEditable(self._span_from(start))
            stmt.name = name
            return stmt
        if token.is_keyword("push"):
            return self._parse_push()
        if token.is_keyword("pop"):
            self._advance()
            self._expect_newline()
            return S.SPop(token.span)
        if token.is_keyword("return"):
            return self._parse_return()
        if token.kind == IDENT and self._peek(1).is_op(":="):
            return self._parse_assign()
        return self._parse_expr_stmt()

    def _parse_var_decl(self):
        start = self._advance()  # 'var'
        name = self._expect(IDENT, what="variable name").text
        self._expect(OP, ":=")
        value = self._parse_expr()
        self._expect_newline()
        stmt = S.SVarDecl(self._span_from(start))
        stmt.name, stmt.value = name, value
        return stmt

    def _parse_assign(self):
        name_tok = self._advance()
        self._expect(OP, ":=")
        value = self._parse_expr()
        self._expect_newline()
        stmt = S.SAssign(self._span_from(name_tok))
        stmt.name, stmt.value = name_tok.text, value
        return stmt

    def _parse_if(self):
        start = self._advance()  # 'if' or 'elif'
        cond = self._parse_expr()
        self._expect(KEYWORD, "then")
        self._expect_newline()
        then_block = self._parse_block()
        else_block = None
        if self._at_keyword("elif"):
            nested = self._parse_if()  # consumes 'elif' as its 'if'
            else_block = S.Block([nested], nested.span)
        elif self._accept(KEYWORD, "else"):
            self._expect_newline()
            else_block = self._parse_block()
        stmt = S.SIf(self._span_from(start))
        stmt.cond, stmt.then_block, stmt.else_block = (
            cond, then_block, else_block,
        )
        return stmt

    def _parse_for(self):
        start = self._advance()  # 'for'
        var = self._expect(IDENT, what="loop variable").text
        if self._accept(KEYWORD, "in"):
            list_expr = self._parse_expr()
            self._expect(KEYWORD, "do")
            self._expect_newline()
            body = self._parse_block()
            stmt = S.SForIn(self._span_from(start))
            stmt.var, stmt.list_expr, stmt.body = var, list_expr, body
            return stmt
        self._expect(OP, "=", what="'in' or '='")
        from_expr = self._parse_expr()
        self._expect(KEYWORD, "to")
        to_expr = self._parse_expr()
        self._expect(KEYWORD, "do")
        self._expect_newline()
        body = self._parse_block()
        stmt = S.SForRange(self._span_from(start))
        stmt.var, stmt.from_expr, stmt.to_expr, stmt.body = (
            var, from_expr, to_expr, body,
        )
        return stmt

    def _parse_while(self):
        start = self._advance()  # 'while'
        cond = self._parse_expr()
        self._expect(KEYWORD, "do")
        self._expect_newline()
        body = self._parse_block()
        stmt = S.SWhile(self._span_from(start))
        stmt.cond, stmt.body = cond, body
        return stmt

    def _parse_boxed(self):
        start = self._advance()  # 'boxed'
        # Assign the id *before* parsing the body so ids follow document
        # order (an outer boxed statement numbers lower than its children).
        box_id = self.box_counter
        self.box_counter += 1
        self._expect_newline()
        body = self._parse_block()
        stmt = S.SBoxed(Span(start.span.start, body.span.end))
        stmt.body = body
        stmt.box_id = box_id
        return stmt

    def _parse_post(self):
        start = self._advance()  # 'post'
        value = self._parse_expr()
        self._expect_newline()
        stmt = S.SPost(self._span_from(start))
        stmt.value = value
        return stmt

    def _parse_set_attr(self):
        start = self._advance()  # 'box'
        self._expect(OP, ".")
        attr_tok = self._peek()
        if attr_tok.kind not in (IDENT, KEYWORD):
            raise SyntaxProblem(
                "expected an attribute name", span=attr_tok.span
            )
        self._advance()
        self._expect(OP, ":=")
        value = self._parse_expr()
        self._expect_newline()
        stmt = S.SSetAttr(self._span_from(start))
        stmt.attr = ATTR_NAME_MAP.get(attr_tok.text, attr_tok.text)
        stmt.value = value
        return stmt

    def _parse_handler(self):
        start = self._advance()  # 'on'
        token = self._peek()
        if token.is_keyword("tap"):
            self._advance()
            kind, param = "tap", None
        elif token.is_keyword("edit"):
            self._advance()
            self._expect(OP, "(")
            param = self._expect(IDENT, what="edit parameter").text
            self._expect(OP, ")")
            kind = "edit"
        else:
            raise SyntaxProblem(
                "expected 'tap' or 'edit' after 'on'", span=token.span
            )
        self._expect(KEYWORD, "do")
        self._expect_newline()
        body = self._parse_block()
        stmt = S.SHandler(Span(start.span.start, body.span.end))
        stmt.kind, stmt.param, stmt.body = kind, param, body
        return stmt

    def _parse_push(self):
        start = self._advance()  # 'push'
        page = self._expect(IDENT, what="page name").text
        self._expect(OP, "(")
        args = []
        if not self._at(OP, ")"):
            while True:
                args.append(self._parse_expr())
                if not self._accept(OP, ","):
                    break
        self._expect(OP, ")")
        self._expect_newline()
        stmt = S.SPush(self._span_from(start))
        stmt.page, stmt.args = page, args
        return stmt

    def _parse_return(self):
        start = self._advance()  # 'return'
        value = None
        if not self._at(NEWLINE):
            value = self._parse_expr()
        self._expect_newline()
        stmt = S.SReturn(self._span_from(start))
        stmt.value = value
        return stmt

    def _parse_expr_stmt(self):
        start = self._peek()
        value = self._parse_expr()
        self._expect_newline()
        stmt = S.SExprStmt(self._span_from(start))
        stmt.value = value
        return stmt

    # -- expressions -----------------------------------------------------------------

    def _parse_expr(self):
        return self._parse_or()

    def _binop(self, parse_operand, ops, keywords=()):
        left = parse_operand()
        while True:
            token = self._peek()
            matched = None
            if token.kind == OP and token.text in ops:
                matched = token.text
            elif token.kind == KEYWORD and token.text in keywords:
                matched = token.text
            if matched is None:
                return left
            self._advance()
            right = parse_operand()
            node = S.EBinOp(left.span.merge(right.span))
            node.op, node.left, node.right = matched, left, right
            left = node

    def _parse_or(self):
        return self._binop(self._parse_and, (), keywords=("or",))

    def _parse_and(self):
        return self._binop(self._parse_not, (), keywords=("and",))

    def _parse_not(self):
        token = self._peek()
        if token.is_keyword("not"):
            self._advance()
            operand = self._parse_not()
            node = S.EUnOp(token.span.merge(operand.span))
            node.op, node.operand = "not", operand
            return node
        return self._parse_comparison()

    def _parse_comparison(self):
        left = self._parse_concat()
        token = self._peek()
        if token.kind == OP and token.text in (
            "==", "!=", "<", "<=", ">", ">=",
        ):
            self._advance()
            right = self._parse_concat()
            node = S.EBinOp(left.span.merge(right.span))
            node.op, node.left, node.right = token.text, left, right
            return node
        return left

    def _parse_concat(self):
        return self._binop(self._parse_additive, ("||",))

    def _parse_additive(self):
        return self._binop(self._parse_multiplicative, ("+", "-"))

    def _parse_multiplicative(self):
        return self._binop(self._parse_unary, ("*", "/", "%"))

    def _parse_unary(self):
        token = self._peek()
        if token.is_op("-"):
            self._advance()
            operand = self._parse_unary()
            node = S.EUnOp(token.span.merge(operand.span))
            node.op, node.operand = "-", operand
            return node
        return self._parse_postfix()

    def _parse_postfix(self):
        expr = self._parse_atom()
        while self._at(OP, "."):
            self._advance()
            field_tok = self._expect(IDENT, what="field name")
            node = S.EField(expr.span.merge(field_tok.span))
            node.target, node.name = expr, field_tok.text
            expr = node
        return expr

    def _parse_atom(self):
        token = self._peek()
        if token.kind == NUMBER:
            self._advance()
            node = S.ENum(token.span)
            node.value = float(token.text)
            return node
        if token.kind == STRING:
            self._advance()
            node = S.EStr(token.span)
            node.value = token.text
            return node
        if token.is_keyword("true") or token.is_keyword("false"):
            self._advance()
            node = S.EBool(token.span)
            node.value = token.text == "true"
            return node
        if token.is_keyword("nil"):
            self._advance()
            self._expect(OP, "(")
            element = self._parse_type()
            close = self._expect(OP, ")")
            node = S.ENil(token.span.merge(close.span))
            node.element = element
            return node
        if token.kind == IDENT:
            self._advance()
            if self._at(OP, "("):
                self._advance()
                args = []
                if not self._at(OP, ")"):
                    while True:
                        args.append(self._parse_expr())
                        if not self._accept(OP, ","):
                            break
                close = self._expect(OP, ")")
                node = S.ECall(token.span.merge(close.span))
                node.name, node.args = token.text, args
                return node
            node = S.EVar(token.span)
            node.name = token.text
            return node
        if token.is_op("("):
            self._advance()
            expr = self._parse_expr()
            self._expect(OP, ")")
            return expr
        if token.is_op("["):
            self._advance()
            items = []
            if not self._at(OP, "]"):
                while True:
                    items.append(self._parse_expr())
                    if not self._accept(OP, ","):
                        break
            close = self._expect(OP, "]")
            node = S.EListLit(token.span.merge(close.span))
            node.items = items
            return node
        raise SyntaxProblem(
            "expected an expression, found {}".format(token), span=token.span
        )
