"""Name resolution for surface programs: symbol tables and type resolution.

Builds a :class:`ProgramEnv` with one shared top-level namespace (globals,
records, functions, externs and pages may not collide — record names act
as constructor functions, so they share the call namespace), resolves
every type expression to a surface type (:class:`repro.surface.
surface_ast.SType`), and rejects recursive records (they would erase to an
infinite core tuple).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.effects import PURE, STATE
from ..core.errors import TypeProblem
from . import surface_ast as S

#: Surface builtin functions that share the call namespace (typecheck.py
#: owns their signatures; resolution only needs the names for collision
#: checks).
BUILTIN_NAMES = frozenset(
    {
        "floor", "ceil", "round", "abs", "sqrt", "min", "max", "mod", "pow",
        "to_string", "parse_number", "format", "count", "substring",
        "contains", "upper", "lower", "repeat",
        "length", "get", "append", "reverse", "slice", "range",
    }
)


@dataclass
class FunSig:
    """Resolved signature of a program function; ``effect`` is inferred
    later by the checker's fixpoint."""

    name: str
    param_names: tuple
    param_stypes: tuple
    return_stype: S.SType
    decl: S.DFun
    effect: object = None


@dataclass
class ExternSig:
    """Resolved signature of an ``extern fun`` (host native)."""

    name: str
    param_names: tuple
    param_stypes: tuple
    return_stype: S.SType
    effect: object = STATE
    decl: S.DExtern = None


@dataclass
class PageSig:
    name: str
    param_names: tuple
    param_stypes: tuple
    decl: S.DPage = None


@dataclass
class GlobalSig:
    name: str
    stype: S.SType
    decl: S.DGlobal = None


class ProgramEnv:
    """All top-level symbols of a surface program."""

    def __init__(self):
        self.records = {}
        self.globals = {}
        self.funs = {}
        self.externs = {}
        self.pages = {}

    def lookup_callable(self, name):
        """What does ``name(…)`` refer to?  → ("fun"|"extern"|"record", sig)"""
        if name in self.funs:
            return "fun", self.funs[name]
        if name in self.externs:
            return "extern", self.externs[name]
        if name in self.records:
            return "record", self.records[name]
        return None, None


def resolve(program):
    """Build and return the :class:`ProgramEnv` for ``program``.

    Raises :class:`TypeProblem` on duplicate names, unknown record
    references or recursive records.
    """
    env = ProgramEnv()
    seen = {}

    def claim(name, decl, kind):
        if name in seen:
            raise TypeProblem(
                "duplicate top-level name '{}' (already a {})".format(
                    name, seen[name]
                ),
                span=decl.span,
            )
        # Only *callable* declarations share a namespace with the builtin
        # functions; globals and pages are never call targets, so a global
        # named ``count`` coexists with the ``count(s)`` builtin.
        if kind in ("function", "extern", "record") and name in BUILTIN_NAMES:
            raise TypeProblem(
                "'{}' shadows a builtin function".format(name),
                span=decl.span,
            )
        seen[name] = kind

    # Pass 1: collect record names so types can reference them in any order.
    for decl in program.decls:
        if isinstance(decl, S.DRecord):
            claim(decl.name, decl, "record")
            env.records[decl.name] = None  # placeholder

    # Pass 2: resolve record fields (names now known).
    for decl in program.decls:
        if isinstance(decl, S.DRecord):
            names = []
            types = []
            for field_name, type_expr, field_span in decl.fields:
                if field_name in names:
                    raise TypeProblem(
                        "record '{}' has two fields named '{}'".format(
                            decl.name, field_name
                        ),
                        span=field_span,
                    )
                names.append(field_name)
                types.append(resolve_type(type_expr, env))
            env.records[decl.name] = S.RecordInfo(
                decl.name, tuple(names), tuple(types), decl.span
            )
    _reject_recursive_records(env)

    # Pass 3: everything else.
    for decl in program.decls:
        if isinstance(decl, S.DGlobal):
            claim(decl.name, decl, "global")
            env.globals[decl.name] = GlobalSig(
                decl.name, resolve_type(decl.type_expr, env), decl
            )
        elif isinstance(decl, S.DFun):
            claim(decl.name, decl, "function")
            env.funs[decl.name] = FunSig(
                decl.name,
                tuple(name for name, _ in decl.params),
                tuple(resolve_type(t, env) for _, t in decl.params),
                resolve_type(decl.return_type, env)
                if decl.return_type is not None
                else S.S_UNIT,
                decl,
            )
        elif isinstance(decl, S.DExtern):
            claim(decl.name, decl, "extern")
            env.externs[decl.name] = ExternSig(
                decl.name,
                tuple(name for name, _ in decl.params),
                tuple(resolve_type(t, env) for _, t in decl.params),
                resolve_type(decl.return_type, env)
                if decl.return_type is not None
                else S.S_UNIT,
                STATE if decl.effect_name == "state" else PURE,
                decl,
            )
        elif isinstance(decl, S.DPage):
            claim(decl.name, decl, "page")
            env.pages[decl.name] = PageSig(
                decl.name,
                tuple(name for name, _ in decl.params),
                tuple(resolve_type(t, env) for _, t in decl.params),
                decl,
            )
        elif not isinstance(decl, S.DRecord):
            raise TypeProblem(
                "unknown declaration {!r}".format(decl), span=decl.span
            )
        # Duplicate parameter names.
        params = getattr(decl, "params", None)
        if params:
            names = [name for name, _ in params]
            for name in names:
                if names.count(name) > 1:
                    raise TypeProblem(
                        "duplicate parameter '{}' in '{}'".format(
                            name, decl.name
                        ),
                        span=decl.span,
                    )
    return env


def resolve_type(type_expr, env):
    """Type expression → surface type.  Record names must exist."""
    if isinstance(type_expr, S.TNumber):
        return S.S_NUMBER
    if isinstance(type_expr, S.TString):
        return S.S_STRING
    if isinstance(type_expr, S.TUnit):
        return S.S_UNIT
    if isinstance(type_expr, S.TList):
        return S.SList(resolve_type(type_expr.element, env))
    if isinstance(type_expr, S.TName):
        if type_expr.name not in env.records:
            raise TypeProblem(
                "unknown type '{}' (records must be declared)".format(
                    type_expr.name
                ),
                span=type_expr.span,
            )
        return S.SRec(type_expr.name)
    raise TypeProblem(
        "unresolvable type expression {!r}".format(type_expr),
        span=getattr(type_expr, "span", None),
    )


def _reject_recursive_records(env):
    """A record reaching itself through fields would erase to an infinite
    tuple; reject with the cycle's entry point named."""

    WHITE, GRAY, BLACK = 0, 1, 2
    color = {name: WHITE for name in env.records}

    def refs(stype, acc):
        if isinstance(stype, S.SRec):
            acc.append(stype.name)
        elif isinstance(stype, S.SList):
            refs(stype.element, acc)

    def visit(name):
        color[name] = GRAY
        info = env.records[name]
        for field_type in info.field_types:
            targets = []
            refs(field_type, targets)
            for target in targets:
                if color[target] == GRAY:
                    raise TypeProblem(
                        "record '{}' is recursive (via '{}') — records "
                        "erase to tuples, which cannot be cyclic".format(
                            target, name
                        ),
                        span=info.span,
                    )
                if color[target] == WHITE:
                    visit(target)
        color[name] = BLACK

    for name in env.records:
        if color[name] == WHITE:
            visit(name)
