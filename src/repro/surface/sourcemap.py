"""The UI–code navigation source map (Fig. 2).

Maps every ``boxed`` statement's ``box_id`` to its source span (and some
editing metadata).  Together with the ``box_id`` tags the render machine
stamps on boxes, this gives both navigation directions:

* **live view → code view**: the tapped box's ``box_id`` looks up the
  boxed statement's span, which the editor highlights;
* **code view → live view**: a cursor position finds the innermost
  enclosing boxed statement, whose ``box_id`` selects *all* boxes it
  created (a boxed statement in a loop selects many boxes, which are
  "collectively selected").

The per-entry ``attr_spans`` and indentation are what direct manipulation
uses to splice ``box.attr := v`` lines into the right place in the source.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import surface_ast as S


@dataclass
class BoxedEntry:
    """Source facts about one ``boxed`` statement."""

    box_id: int
    span: object               # span of the whole boxed statement
    body_span: object          # span of its indented body
    body_indent: int           # column where body statements start
    attr_spans: dict = field(default_factory=dict)  # attr → SSetAttr span
    page: str = None           # enclosing page (or function) name


class SourceMap:
    """All boxed statements of one compiled program, keyed by box id."""

    def __init__(self, entries=()):
        self._entries = {entry.box_id: entry for entry in entries}

    def entry(self, box_id):
        """The :class:`BoxedEntry` for ``box_id`` or ``None``."""
        return self._entries.get(box_id)

    def span_of(self, box_id):
        entry = self._entries.get(box_id)
        return entry.span if entry else None

    def box_ids(self):
        return tuple(sorted(self._entries))

    def __len__(self):
        return len(self._entries)

    def boxed_at_offset(self, offset):
        """The innermost boxed statement whose span contains ``offset``."""
        best = None
        for entry in self._entries.values():
            if entry.span.contains_offset(offset):
                if best is None or entry.span.length < best.span.length:
                    best = entry
        return best

    def boxed_at_line(self, line):
        """The innermost boxed statement covering source ``line`` (1-based)."""
        best = None
        for entry in self._entries.values():
            if entry.span.contains_line(line):
                if best is None or entry.span.length < best.span.length:
                    best = entry
        return best


def build_sourcemap(program):
    """Collect every ``boxed`` statement of a parsed program."""
    entries = []

    def walk_block(block, owner):
        for stmt in block.stmts:
            walk_stmt(stmt, owner)

    def walk_stmt(stmt, owner):
        if isinstance(stmt, S.SBoxed):
            attr_spans = {
                child.attr: child.span
                for child in stmt.body.stmts
                if isinstance(child, S.SSetAttr)
            }
            indent = _body_indent(stmt)
            entries.append(
                BoxedEntry(
                    box_id=stmt.box_id,
                    span=stmt.span,
                    body_span=stmt.body.span,
                    body_indent=indent,
                    attr_spans=attr_spans,
                    page=owner,
                )
            )
            walk_block(stmt.body, owner)
        elif isinstance(stmt, S.SIf):
            walk_block(stmt.then_block, owner)
            if stmt.else_block is not None:
                walk_block(stmt.else_block, owner)
        elif isinstance(stmt, (S.SForIn, S.SForRange, S.SWhile)):
            walk_block(stmt.body, owner)
        elif isinstance(stmt, S.SHandler):
            walk_block(stmt.body, owner)

    for decl in program.decls:
        if isinstance(decl, S.DPage):
            if decl.init_block is not None:
                walk_block(decl.init_block, decl.name)
            if decl.render_block is not None:
                walk_block(decl.render_block, decl.name)
        elif isinstance(decl, S.DFun):
            walk_block(decl.body, decl.name)
    return SourceMap(entries)


def _body_indent(boxed_stmt):
    """Column where the boxed body's statements start (for code splicing)."""
    if boxed_stmt.body.stmts:
        return boxed_stmt.body.stmts[0].span.start.column
    return boxed_stmt.span.start.column + 2
