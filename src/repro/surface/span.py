"""Source spans for the surface language.

Spans drive three features: precise diagnostics from the parser and
checker, the code-view side of Fig. 2's UI-code navigation (a box maps to
the span of the ``boxed`` statement that created it), and direct
manipulation (attribute edits are spliced into the source at a span).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Pos:
    """A position: 1-based line, 0-based column, and absolute offset."""

    line: int
    column: int
    offset: int

    def __str__(self):
        return "{}:{}".format(self.line, self.column + 1)


@dataclass(frozen=True)
class Span:
    """A half-open source region ``[start, end)``."""

    start: Pos
    end: Pos

    def __str__(self):
        if self.start.line == self.end.line:
            return "line {}, cols {}-{}".format(
                self.start.line, self.start.column + 1, self.end.column + 1
            )
        return "lines {}-{}".format(self.start.line, self.end.line)

    def contains_offset(self, offset):
        return self.start.offset <= offset < self.end.offset

    def contains_line(self, line):
        return self.start.line <= line <= self.end.line

    def merge(self, other):
        """The smallest span covering both."""
        start = min(self.start, other.start, key=lambda p: p.offset)
        end = max(self.end, other.end, key=lambda p: p.offset)
        return Span(start, end)

    @property
    def length(self):
        return self.end.offset - self.start.offset


def dummy_span():
    """A span for synthesized nodes with no source text."""
    origin = Pos(0, 0, 0)
    return Span(origin, origin)
