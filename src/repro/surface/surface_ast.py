"""AST of the surface language.

The surface language is the "higher level syntax" the paper's figures are
written in (§4.1: "our examples use a higher level syntax" over the
calculus).  It has pages with init/render bodies, ``boxed``/``post``/
``box.attr :=`` statements, ``on tap``/``on edit`` handlers, loops,
conditionals, mutable locals, records, and ``extern`` declarations for
host natives (the simulated web).  Everything lowers to the core calculus
of Fig. 6 — loops become recursion through generated global functions,
mutable locals become loop-carried tuples, records become tuples.

Two type layers appear here:

* **type expressions** (``TypeExpr``) — what the parser produces;
* **surface types** (``SType``) — what resolution/typechecking computes.
  Records are *nominal* at the surface (field access needs the record's
  name) and erase to structural core tuples during lowering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import ReproError
from ..core.types import (
    ListType,
    NUMBER,
    STRING,
    TupleType,
    UNIT,
)
from .span import Span, dummy_span


# ---------------------------------------------------------------------------
# Type expressions (syntax)
# ---------------------------------------------------------------------------


@dataclass
class TypeExpr:
    """Base class for parsed type syntax."""

    span: Span


@dataclass
class TNumber(TypeExpr):
    pass


@dataclass
class TString(TypeExpr):
    pass


@dataclass
class TUnit(TypeExpr):
    pass


@dataclass
class TList(TypeExpr):
    element: TypeExpr = None


@dataclass
class TName(TypeExpr):
    """A record name reference."""

    name: str = ""


# ---------------------------------------------------------------------------
# Surface types (semantics)
# ---------------------------------------------------------------------------


class SType:
    """Base class of resolved surface types."""

    __slots__ = ()

    def to_core(self, records):
        """Erase to a core type; ``records`` maps name → RecordInfo."""
        raise NotImplementedError


@dataclass(frozen=True)
class SNumber(SType):
    __slots__ = ()

    def to_core(self, records):
        return NUMBER

    def __str__(self):
        return "number"


@dataclass(frozen=True)
class SString(SType):
    __slots__ = ()

    def to_core(self, records):
        return STRING

    def __str__(self):
        return "string"


@dataclass(frozen=True)
class SUnit(SType):
    __slots__ = ()

    def to_core(self, records):
        return UNIT

    def __str__(self):
        return "()"


@dataclass(frozen=True)
class SList(SType):
    element: SType
    __slots__ = ("element",)

    def to_core(self, records):
        return ListType(self.element.to_core(records))

    def __str__(self):
        return "list {}".format(self.element)


@dataclass(frozen=True)
class SRec(SType):
    """A nominal record type; structure lives in the record table."""

    name: str
    __slots__ = ("name",)

    def to_core(self, records):
        info = records.get(self.name)
        if info is None:
            raise ReproError("unknown record '{}'".format(self.name))
        return info.core_type(records)

    def __str__(self):
        return self.name


S_NUMBER = SNumber()
S_STRING = SString()
S_UNIT = SUnit()


@dataclass
class RecordInfo:
    """Resolved shape of a ``record`` declaration."""

    name: str
    field_names: tuple
    field_types: tuple  # of SType
    span: Span

    def field_index(self, field_name):
        """1-based index of ``field_name`` (core projection is 1-based)."""
        try:
            return self.field_names.index(field_name) + 1
        except ValueError:
            return None

    def field_type(self, field_name):
        index = self.field_index(field_name)
        return self.field_types[index - 1] if index else None

    def core_type(self, records):
        return TupleType(
            tuple(t.to_core(records) for t in self.field_types)
        )


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    """Base surface expression; ``stype`` is filled in by the checker."""

    span: Span
    stype: SType = field(default=None, init=False, repr=False)


@dataclass
class ENum(Expr):
    value: float = 0.0


@dataclass
class EStr(Expr):
    value: str = ""


@dataclass
class EBool(Expr):
    """``true``/``false`` — numeric booleans (1/0)."""

    value: bool = False


@dataclass
class EVar(Expr):
    """A name: local, parameter, or global — resolution decides which."""

    name: str = ""
    resolution: str = field(default=None, init=False, repr=False)


@dataclass
class ECall(Expr):
    """``name(args)`` — function, record constructor, builtin or extern.

    ``target_kind`` ∈ {"fun", "record", "builtin", "extern"} after
    checking; ``core_op`` holds the operator name for builtin/extern.
    """

    name: str = ""
    args: list = field(default_factory=list)
    target_kind: str = field(default=None, init=False, repr=False)
    core_op: str = field(default=None, init=False, repr=False)


@dataclass
class EField(Expr):
    """``e.field`` on a record value."""

    target: Expr = None
    name: str = ""
    index: int = field(default=None, init=False, repr=False)  # 1-based


@dataclass
class EBinOp(Expr):
    """Infix operator; ``core_op`` resolved by the checker."""

    op: str = ""
    left: Expr = None
    right: Expr = None
    core_op: str = field(default=None, init=False, repr=False)


@dataclass
class EUnOp(Expr):
    op: str = ""
    operand: Expr = None
    core_op: str = field(default=None, init=False, repr=False)


@dataclass
class EListLit(Expr):
    """``[e1, ..., en]`` — non-empty; the element type is inferred."""

    items: list = field(default_factory=list)


@dataclass
class ENil(Expr):
    """``nil(τ)`` — the empty list of a stated element type."""

    element: TypeExpr = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    span: Span


@dataclass
class Block:
    """A sequence of statements (one indentation level)."""

    stmts: list
    span: Span


@dataclass
class SVarDecl(Stmt):
    """``var x := e`` — declares a mutable local."""

    name: str = ""
    value: Expr = None


@dataclass
class SAssign(Stmt):
    """``x := e`` — assignment to a local var or a global."""

    name: str = ""
    value: Expr = None
    resolution: str = field(default=None, init=False, repr=False)


@dataclass
class SIf(Stmt):
    cond: Expr = None
    then_block: Block = None
    else_block: Block = None  # may be None


@dataclass
class SForIn(Stmt):
    """``for x in e do`` — iterate a list, binding ``x`` immutably."""

    var: str = ""
    list_expr: Expr = None
    body: Block = None


@dataclass
class SForRange(Stmt):
    """``for i = a to b do`` — inclusive numeric range."""

    var: str = ""
    from_expr: Expr = None
    to_expr: Expr = None
    body: Block = None


@dataclass
class SWhile(Stmt):
    cond: Expr = None
    body: Block = None


@dataclass
class SBoxed(Stmt):
    """``boxed`` — the box-creating statement; ``box_id`` is assigned by
    resolution and is the key of the UI-code navigation source map."""

    body: Block = None
    box_id: int = field(default=None, init=False, repr=False)


@dataclass
class SPost(Stmt):
    value: Expr = None


@dataclass
class SSetAttr(Stmt):
    """``box.attr := e``."""

    attr: str = ""
    value: Expr = None


@dataclass
class SHandler(Stmt):
    """``on tap do`` / ``on edit(x) do`` — register an event handler."""

    kind: str = ""          # "tap" or "edit"
    param: str = None        # the edit handler's text parameter
    body: Block = None


@dataclass
class SEditable(Stmt):
    """``editable g`` — sugar for a two-way-bound editable box.

    Addresses the limitation Section 5 discusses ("the value of a slider
    widget must be defined as a global variable, which is then passed
    into render code to be read and manipulated"): this statement wires
    the plumbing up in one line.  It desugars, inside the current box, to

        post g
        box.editable := true
        on edit(t) do
          g := parse_number(t)     // or  g := t  for string globals

    ``g`` must be a global of type number or string.
    """

    name: str = ""


@dataclass
class SPush(Stmt):
    page: str = ""
    args: list = field(default_factory=list)


@dataclass
class SPop(Stmt):
    pass


@dataclass
class SReturn(Stmt):
    """``return e`` — only legal as the final statement of a function."""

    value: Expr = None  # None means ``return ()``


@dataclass
class SExprStmt(Stmt):
    value: Expr = None


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Decl:
    span: Span


@dataclass
class DGlobal(Decl):
    name: str = ""
    type_expr: TypeExpr = None
    init: Expr = None


@dataclass
class DRecord(Decl):
    name: str = ""
    fields: list = field(default_factory=list)  # (name, TypeExpr, Span)


@dataclass
class DFun(Decl):
    name: str = ""
    params: list = field(default_factory=list)  # (name, TypeExpr)
    return_type: TypeExpr = None                # None → unit
    body: Block = None
    effect: object = field(default=None, init=False, repr=False)


@dataclass
class DExtern(Decl):
    """``extern fun name(params) : τ is state|pure`` — a host native."""

    name: str = ""
    params: list = field(default_factory=list)
    return_type: TypeExpr = None
    effect_name: str = "state"


@dataclass
class DPage(Decl):
    name: str = ""
    params: list = field(default_factory=list)
    init_block: Block = None     # may be None (no-op init)
    render_block: Block = None   # may be None (blank page)


@dataclass
class Program:
    decls: list
    span: Span

    def find(self, name):
        for decl in self.decls:
            if getattr(decl, "name", None) == name:
                return decl
        return None
