"""Token kinds for the surface language lexer."""

from __future__ import annotations

from dataclasses import dataclass

from .span import Span

# Token kind constants.
NUMBER = "NUMBER"
STRING = "STRING"
IDENT = "IDENT"
KEYWORD = "KEYWORD"
OP = "OP"
NEWLINE = "NEWLINE"
INDENT = "INDENT"
DEDENT = "DEDENT"
EOF = "EOF"

#: Reserved words.  ``box`` is reserved so ``box.margin := e`` is
#: unambiguous; ``true``/``false`` are numeric-boolean literals.
KEYWORDS = frozenset(
    {
        "global",
        "record",
        "fun",
        "page",
        "init",
        "render",
        "var",
        "if",
        "then",
        "else",
        "elif",
        "for",
        "in",
        "to",
        "do",
        "while",
        "boxed",
        "post",
        "box",
        "on",
        "tap",
        "edit",
        "push",
        "pop",
        "return",
        "not",
        "and",
        "or",
        "true",
        "false",
        "nil",
        "number",
        "string",
        "list",
        "extern",
        "is",
        "state",
        "pure",
        "editable",
    }
)

#: Multi-character operators, longest first so the lexer can match greedily.
OPERATORS = (
    ":=",
    "||",
    "==",
    "!=",
    "<=",
    ">=",
    "(",
    ")",
    "[",
    "]",
    ",",
    ":",
    ".",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source span."""

    kind: str
    text: str
    span: Span

    def is_keyword(self, word):
        return self.kind == KEYWORD and self.text == word

    def is_op(self, op):
        return self.kind == OP and self.text == op

    def __str__(self):
        if self.kind in (NEWLINE, INDENT, DEDENT, EOF):
            return self.kind
        return "{}({!r})".format(self.kind, self.text)
