"""Surface-level type and effect checking.

This is the "continuously type-checked" phase of the live editor (Fig. 2):
it validates a parsed program, annotates the AST in place (expression
types, name resolutions, record field indices, inferred function effects),
and reports problems with source spans.  The lowering then translates the
annotated program into the core calculus, where the Fig. 10 checker
re-verifies everything — lowering bugs cannot silently produce ill-typed
core code.

Function effects are *inferred* by a fixpoint over the call graph: each
body's statements demand effects (``boxed``/``post``/``box.a :=``/handler
registration demand ``r``; global assignment/``push``/``pop``/state
externs demand ``s``), handler bodies are excluded (they are separate
``s`` closures), and a function that demands both ``r`` and ``s`` is
rejected — the surface manifestation of the paper's model/view
separation.
"""

from __future__ import annotations

from ..boxes.attributes import ATTRIBUTE_ENV, handler_attributes
from ..core.effects import Effect, PURE, RENDER, STATE, join, subeffect
from ..core.errors import TypeProblem
from . import surface_ast as S
from .resolve import ProgramEnv, resolve

# Surface builtin signatures: name → (param stypes, result, core op).
# ``None`` parameters/results mark the polymorphic list builtins, handled
# ad hoc in :meth:`_check_builtin`.
_N, _S = S.S_NUMBER, S.S_STRING
BUILTIN_SIGS = {
    "floor": ((_N,), _N, "floor"),
    "ceil": ((_N,), _N, "ceil"),
    "round": ((_N,), _N, "round"),
    "abs": ((_N,), _N, "abs"),
    "sqrt": ((_N,), _N, "sqrt"),
    "min": ((_N, _N), _N, "min"),
    "max": ((_N, _N), _N, "max"),
    "mod": ((_N, _N), _N, "mod"),
    "pow": ((_N, _N), _N, "pow"),
    "to_string": ((_N,), _S, "str_of_num"),
    "parse_number": ((_S,), _N, "num_of_str"),
    "format": ((_N, _N), _S, "num_format"),
    "count": ((_S,), _N, "str_length"),
    "substring": ((_S, _N, _N), _S, "str_sub"),
    "contains": ((_S, _S), _N, "str_contains"),
    "upper": ((_S,), _S, "str_upper"),
    "lower": ((_S,), _S, "str_lower"),
    "repeat": ((_S, _N), _S, "str_repeat"),
    "range": ((_N, _N), S.SList(_N), "list_range"),
}
#: Polymorphic list builtins: name → core op (shapes handled in code).
LIST_BUILTINS = {
    "length": "list_length",
    "get": "list_get",
    "append": "list_append",
    "reverse": "list_reverse",
    "slice": "list_slice",
}

_ARITH_OPS = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod"}
_COMPARE_OPS = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge"}


class _Local:
    __slots__ = ("stype", "mutable")

    def __init__(self, stype, mutable):
        self.stype = stype
        self.mutable = mutable


class _Scope:
    """Nested block scopes for locals and parameters."""

    def __init__(self):
        self._frames = [{}]

    def push(self):
        self._frames.append({})

    def pop(self):
        self._frames.pop()

    def declare(self, name, stype, mutable, span):
        if self.lookup(name) is not None:
            raise TypeProblem(
                "'{}' is already defined in this scope".format(name),
                span=span,
            )
        self._frames[-1][name] = _Local(stype, mutable)

    def lookup(self, name):
        for frame in reversed(self._frames):
            if name in frame:
                return frame[name]
        return None

    def frozen_copy(self):
        """All visible locals, flattened and made immutable.

        Handler bodies check against this: handlers close over the
        surrounding locals *by value* (the core lambda captures them via
        substitution), so assigning one would silently update a copy —
        the checker rejects it instead.
        """
        frozen = _Scope()
        merged = {}
        for frame in self._frames:
            merged.update(frame)
        for name, local in merged.items():
            frozen._frames[0][name] = _Local(local.stype, False)
        return frozen


def typecheck(program):
    """Check ``program``; returns its :class:`ProgramEnv`.

    Raises the first :class:`TypeProblem`.  The AST is annotated in place.
    """
    env, problems = typecheck_problems(program)
    if problems:
        raise problems[0]
    return env


def typecheck_problems(program):
    """Collect-all variant: returns ``(env_or_None, problems)``.

    Checking continues across declarations after a failure (the live
    editor shows every broken definition), but stops within one.
    """
    try:
        env = resolve(program)
    except TypeProblem as problem:
        return None, [problem]
    problems = []
    try:
        _infer_effects(program, env)
    except TypeProblem as problem:
        return env, [problem]
    checker = _DeclChecker(env)
    for decl in program.decls:
        try:
            checker.check_decl(decl)
        except TypeProblem as problem:
            problems.append(problem)
    return env, problems


# ---------------------------------------------------------------------------
# Effect inference (fixpoint over the call graph)
# ---------------------------------------------------------------------------


def _infer_effects(program, env):
    for sig in env.funs.values():
        sig.effect = PURE
    changed = True
    while changed:
        changed = False
        for sig in env.funs.values():
            demanded = _block_effect(sig.decl.body, env, sig.decl.name)
            if demanded != sig.effect:
                sig.effect = demanded
                changed = True
                sig.decl.effect = demanded
    for sig in env.funs.values():
        sig.decl.effect = sig.effect


def _block_effect(block, env, where):
    effect = PURE
    for stmt in block.stmts:
        effect = _join_or_fail(effect, _stmt_effect(stmt, env, where), stmt)
    return effect


def _join_or_fail(left, right, node):
    joined = join(left, right)
    if joined is None:
        raise TypeProblem(
            "this code demands both render and state effects — render "
            "code builds the view, handlers/init mutate the model, and "
            "the two cannot mix (Section 3)",
            rule="EFFECT",
            span=node.span,
        )
    return joined


def _stmt_effect(stmt, env, where):
    if isinstance(stmt, (S.SBoxed,)):
        return _join_or_fail(
            RENDER, _block_effect(stmt.body, env, where), stmt
        )
    if isinstance(stmt, S.SEditable):
        return RENDER  # sugar over post/box.editable/on edit
    if isinstance(stmt, (S.SPost, S.SSetAttr, S.SHandler)):
        # Handler bodies are separate state closures; they do not force
        # the enclosing function away from render.
        effect = RENDER
        if isinstance(stmt, S.SPost):
            effect = _join_or_fail(effect, _expr_effect(stmt.value, env), stmt)
        if isinstance(stmt, S.SSetAttr):
            effect = _join_or_fail(effect, _expr_effect(stmt.value, env), stmt)
        return effect
    if isinstance(stmt, (S.SPush, S.SPop)):
        effect = STATE
        if isinstance(stmt, S.SPush):
            for arg in stmt.args:
                effect = _join_or_fail(effect, _expr_effect(arg, env), stmt)
        return effect
    if isinstance(stmt, S.SAssign):
        # Locals shadowing globals are rejected later, so a global name
        # here really is a global write.
        effect = _expr_effect(stmt.value, env)
        if stmt.name in env.globals:
            effect = _join_or_fail(effect, STATE, stmt)
        return effect
    if isinstance(stmt, S.SVarDecl):
        return _expr_effect(stmt.value, env)
    if isinstance(stmt, S.SIf):
        effect = _expr_effect(stmt.cond, env)
        effect = _join_or_fail(
            effect, _block_effect(stmt.then_block, env, where), stmt
        )
        if stmt.else_block is not None:
            effect = _join_or_fail(
                effect, _block_effect(stmt.else_block, env, where), stmt
            )
        return effect
    if isinstance(stmt, S.SForIn):
        effect = _expr_effect(stmt.list_expr, env)
        return _join_or_fail(
            effect, _block_effect(stmt.body, env, where), stmt
        )
    if isinstance(stmt, S.SForRange):
        effect = _join_or_fail(
            _expr_effect(stmt.from_expr, env),
            _expr_effect(stmt.to_expr, env),
            stmt,
        )
        return _join_or_fail(
            effect, _block_effect(stmt.body, env, where), stmt
        )
    if isinstance(stmt, S.SWhile):
        effect = _expr_effect(stmt.cond, env)
        return _join_or_fail(
            effect, _block_effect(stmt.body, env, where), stmt
        )
    if isinstance(stmt, S.SReturn):
        return _expr_effect(stmt.value, env) if stmt.value else PURE
    if isinstance(stmt, S.SExprStmt):
        return _expr_effect(stmt.value, env)
    raise TypeProblem(
        "unknown statement {!r}".format(stmt), span=stmt.span
    )


def _expr_effect(expr, env):
    if isinstance(expr, S.ECall):
        effect = PURE
        if expr.name in env.funs:
            effect = env.funs[expr.name].effect or PURE
        elif expr.name in env.externs:
            effect = env.externs[expr.name].effect
        for arg in expr.args:
            effect = _join_or_fail(effect, _expr_effect(arg, env), expr)
        return effect
    effect = PURE
    for child in _expr_children(expr):
        effect = _join_or_fail(effect, _expr_effect(child, env), expr)
    return effect


def _expr_children(expr):
    if isinstance(expr, S.ECall):
        return expr.args
    if isinstance(expr, S.EField):
        return (expr.target,)
    if isinstance(expr, S.EBinOp):
        return (expr.left, expr.right)
    if isinstance(expr, S.EUnOp):
        return (expr.operand,)
    if isinstance(expr, S.EListLit):
        return expr.items
    return ()


# ---------------------------------------------------------------------------
# Declaration checking
# ---------------------------------------------------------------------------


class _DeclChecker:
    def __init__(self, env):
        self.env = env

    # -- declarations --------------------------------------------------------

    def check_decl(self, decl):
        if isinstance(decl, S.DGlobal):
            self._check_global(decl)
        elif isinstance(decl, S.DFun):
            self._check_fun(decl)
        elif isinstance(decl, S.DPage):
            self._check_page(decl)
        elif isinstance(decl, (S.DRecord, S.DExtern)):
            pass  # fully handled by resolution
        else:
            raise TypeProblem(
                "unknown declaration {!r}".format(decl), span=decl.span
            )

    def _check_global(self, decl):
        sig = self.env.globals[decl.name]
        self._require_constant(decl.init, decl.name)
        scope = _Scope()
        actual = self.check_expr(decl.init, scope, PURE)
        if actual != sig.stype:
            raise TypeProblem(
                "global '{}' is declared {} but initialized with "
                "{}".format(decl.name, sig.stype, actual),
                span=decl.init.span,
            )

    def _require_constant(self, expr, name):
        """Global initial values must be *values* (Fig. 7's ``= v``)."""
        if isinstance(expr, (S.ENum, S.EStr, S.EBool, S.ENil)):
            return
        if isinstance(expr, S.EListLit):
            for item in expr.items:
                self._require_constant(item, name)
            return
        if isinstance(expr, S.ECall) and expr.name in self.env.records:
            for arg in expr.args:
                self._require_constant(arg, name)
            return
        if isinstance(expr, S.EUnOp) and expr.op == "-":
            self._require_constant(expr.operand, name)
            return
        raise TypeProblem(
            "the initial value of global '{}' must be a constant "
            "(Fig. 7: global g : τ = v)".format(name),
            span=expr.span,
        )

    def _check_fun(self, decl):
        sig = self.env.funs[decl.name]
        scope = _Scope()
        for name, stype in zip(sig.param_names, sig.param_stypes):
            scope.declare(name, stype, mutable=False, span=decl.span)
        self._check_block(
            decl.body, scope, sig.effect or PURE,
            return_stype=sig.return_stype, fun_name=decl.name,
        )

    def _check_page(self, decl):
        sig = self.env.pages[decl.name]
        if decl.name == "start" and sig.param_stypes:
            raise TypeProblem(
                "page 'start' cannot take parameters — STARTUP pushes "
                "[push start ()]",
                span=decl.span,
            )
        for block, effect, what in (
            (decl.init_block, STATE, "init"),
            (decl.render_block, RENDER, "render"),
        ):
            if block is None:
                continue
            scope = _Scope()
            for name, stype in zip(sig.param_names, sig.param_stypes):
                scope.declare(name, stype, mutable=False, span=decl.span)
            self._check_block(block, scope, effect, what=what)

    # -- blocks & statements -----------------------------------------------------

    def _check_block(
        self, block, scope, effect, return_stype=None, fun_name=None,
        what=None,
    ):
        scope.push()
        try:
            for index, stmt in enumerate(block.stmts):
                is_last = index == len(block.stmts) - 1
                if isinstance(stmt, S.SReturn):
                    if fun_name is None:
                        raise TypeProblem(
                            "'return' is only allowed in function bodies "
                            "(not in {} code)".format(what or "page"),
                            span=stmt.span,
                        )
                    if not is_last:
                        raise TypeProblem(
                            "'return' must be the final statement",
                            span=stmt.span,
                        )
                    actual = (
                        self.check_expr(stmt.value, scope, effect)
                        if stmt.value is not None
                        else S.S_UNIT
                    )
                    if actual != return_stype:
                        raise TypeProblem(
                            "function '{}' returns {} but is declared "
                            "{}".format(fun_name, actual, return_stype),
                            span=stmt.span,
                        )
                else:
                    self.check_stmt(stmt, scope, effect)
            if (
                fun_name is not None
                and return_stype not in (None, S.S_UNIT)
                and not (
                    block.stmts and isinstance(block.stmts[-1], S.SReturn)
                )
            ):
                raise TypeProblem(
                    "function '{}' must end with 'return' (declared "
                    "return type {})".format(fun_name, return_stype),
                    span=block.span,
                )
        finally:
            scope.pop()
        # Nested function bodies re-enter via check_decl; a plain block
        # never propagates returns outward.

    def check_stmt(self, stmt, scope, effect):
        env = self.env
        if isinstance(stmt, S.SVarDecl):
            if stmt.name in env.globals:
                raise TypeProblem(
                    "local 'var {}' would shadow the global of the same "
                    "name".format(stmt.name),
                    span=stmt.span,
                )
            stype = self.check_expr(stmt.value, scope, effect)
            scope.declare(stmt.name, stype, mutable=True, span=stmt.span)
            return
        if isinstance(stmt, S.SAssign):
            value_stype = self.check_expr(stmt.value, scope, effect)
            local = scope.lookup(stmt.name)
            if local is not None:
                if not local.mutable:
                    raise TypeProblem(
                        "'{}' is not assignable (parameters and loop "
                        "variables are immutable)".format(stmt.name),
                        span=stmt.span,
                    )
                if value_stype != local.stype:
                    raise TypeProblem(
                        "assigning {} to '{}' of type {}".format(
                            value_stype, stmt.name, local.stype
                        ),
                        span=stmt.span,
                    )
                stmt.resolution = "local"
                return
            if stmt.name in env.globals:
                if effect is not STATE:
                    raise TypeProblem(
                        "assignment to global '{}' requires state code — "
                        "render code can only read globals".format(
                            stmt.name
                        ),
                        rule="T-ASSIGN",
                        span=stmt.span,
                    )
                declared = env.globals[stmt.name].stype
                if value_stype != declared:
                    raise TypeProblem(
                        "assigning {} to global '{}' of type {}".format(
                            value_stype, stmt.name, declared
                        ),
                        span=stmt.span,
                    )
                stmt.resolution = "global"
                return
            raise TypeProblem(
                "assignment to undefined variable '{}'".format(stmt.name),
                span=stmt.span,
            )
        if isinstance(stmt, S.SIf):
            self._expect_number(stmt.cond, scope, effect, "if-condition")
            self._check_block(stmt.then_block, scope, effect)
            if stmt.else_block is not None:
                self._check_block(stmt.else_block, scope, effect)
            return
        if isinstance(stmt, S.SForIn):
            list_stype = self.check_expr(stmt.list_expr, scope, effect)
            if not isinstance(list_stype, S.SList):
                raise TypeProblem(
                    "'for … in' needs a list, got {}".format(list_stype),
                    span=stmt.list_expr.span,
                )
            scope.push()
            try:
                scope.declare(
                    stmt.var, list_stype.element, mutable=False,
                    span=stmt.span,
                )
                self._check_block(stmt.body, scope, effect)
            finally:
                scope.pop()
            return
        if isinstance(stmt, S.SForRange):
            self._expect_number(stmt.from_expr, scope, effect, "range start")
            self._expect_number(stmt.to_expr, scope, effect, "range end")
            scope.push()
            try:
                scope.declare(
                    stmt.var, S.S_NUMBER, mutable=False, span=stmt.span
                )
                self._check_block(stmt.body, scope, effect)
            finally:
                scope.pop()
            return
        if isinstance(stmt, S.SWhile):
            self._expect_number(stmt.cond, scope, effect, "while-condition")
            self._check_block(stmt.body, scope, effect)
            return
        if isinstance(stmt, S.SBoxed):
            self._require_render(effect, stmt, "boxed")
            self._check_block(stmt.body, scope, effect)
            return
        if isinstance(stmt, S.SPost):
            self._require_render(effect, stmt, "post")
            self.check_expr(stmt.value, scope, effect)
            return
        if isinstance(stmt, S.SSetAttr):
            self._require_render(effect, stmt, "box.{} :=".format(stmt.attr))
            spec = ATTRIBUTE_ENV.get(stmt.attr)
            if spec is None:
                raise TypeProblem(
                    "unknown box attribute '{}'".format(stmt.attr),
                    rule="T-ATTR",
                    span=stmt.span,
                )
            if stmt.attr in handler_attributes():
                raise TypeProblem(
                    "handlers are registered with 'on tap do' / "
                    "'on edit(x) do', not by assigning '{}'".format(
                        stmt.attr
                    ),
                    span=stmt.span,
                )
            value_stype = self.check_expr(stmt.value, scope, effect)
            expected = (
                S.S_NUMBER if spec.type.__class__.__name__ == "NumberType"
                else S.S_STRING
            )
            if value_stype != expected:
                raise TypeProblem(
                    "attribute '{}' takes {}, got {}".format(
                        stmt.attr, expected, value_stype
                    ),
                    rule="T-ATTR",
                    span=stmt.span,
                )
            return
        if isinstance(stmt, S.SEditable):
            self._require_render(effect, stmt, "editable")
            sig = env.globals.get(stmt.name)
            if sig is None:
                raise TypeProblem(
                    "'editable {}' needs a global of that name".format(
                        stmt.name
                    ),
                    span=stmt.span,
                )
            if sig.stype not in (S.S_NUMBER, S.S_STRING):
                raise TypeProblem(
                    "'editable' works on number/string globals; "
                    "'{}' has type {}".format(stmt.name, sig.stype),
                    span=stmt.span,
                )
            return
        if isinstance(stmt, S.SHandler):
            self._require_render(effect, stmt, "on {}".format(stmt.kind))
            handler_scope = scope.frozen_copy()
            if stmt.kind == "edit":
                handler_scope.declare(
                    stmt.param, S.S_STRING, mutable=False, span=stmt.span
                )
            self._check_block(stmt.body, handler_scope, STATE)
            return
        if isinstance(stmt, S.SPush):
            self._require_state(effect, stmt, "push")
            sig = env.pages.get(stmt.page)
            if sig is None:
                raise TypeProblem(
                    "push of undefined page '{}'".format(stmt.page),
                    rule="T-PUSH",
                    span=stmt.span,
                )
            if len(stmt.args) != len(sig.param_stypes):
                raise TypeProblem(
                    "page '{}' takes {} argument(s), got {}".format(
                        stmt.page, len(sig.param_stypes), len(stmt.args)
                    ),
                    span=stmt.span,
                )
            for arg, expected in zip(stmt.args, sig.param_stypes):
                actual = self.check_expr(arg, scope, effect)
                if actual != expected:
                    raise TypeProblem(
                        "page '{}' argument has type {}, expected "
                        "{}".format(stmt.page, actual, expected),
                        span=arg.span,
                    )
            return
        if isinstance(stmt, S.SPop):
            self._require_state(effect, stmt, "pop")
            return
        if isinstance(stmt, S.SExprStmt):
            self.check_expr(stmt.value, scope, effect)
            return
        if isinstance(stmt, S.SReturn):
            raise TypeProblem(
                "'return' must be the final statement of a function body",
                span=stmt.span,
            )
        raise TypeProblem(
            "unknown statement {!r}".format(stmt), span=stmt.span
        )

    def _require_render(self, effect, stmt, what):
        if effect is not RENDER:
            raise TypeProblem(
                "'{}' is render code, but this context is {} — only "
                "render bodies build the view".format(
                    what, "state" if effect is STATE else "pure"
                ),
                rule="EFFECT",
                span=stmt.span,
            )

    def _require_state(self, effect, stmt, what):
        if effect is not STATE:
            raise TypeProblem(
                "'{}' mutates program state, but this context is {} — "
                "use an event handler or init code".format(
                    what, "render" if effect is RENDER else "pure"
                ),
                rule="EFFECT",
                span=stmt.span,
            )

    def _expect_number(self, expr, scope, effect, what):
        actual = self.check_expr(expr, scope, effect)
        if actual != S.S_NUMBER:
            raise TypeProblem(
                "{} has type {}, expected number".format(what, actual),
                span=expr.span,
            )

    # -- expressions ------------------------------------------------------------

    def check_expr(self, expr, scope, effect):
        stype = self._check_expr(expr, scope, effect)
        expr.stype = stype
        return stype

    def _check_expr(self, expr, scope, effect):
        env = self.env
        if isinstance(expr, S.ENum):
            return S.S_NUMBER
        if isinstance(expr, S.EStr):
            return S.S_STRING
        if isinstance(expr, S.EBool):
            return S.S_NUMBER
        if isinstance(expr, S.EVar):
            local = scope.lookup(expr.name)
            if local is not None:
                expr.resolution = "local"
                return local.stype
            if expr.name in env.globals:
                expr.resolution = "global"
                return env.globals[expr.name].stype
            raise TypeProblem(
                "undefined name '{}'".format(expr.name), span=expr.span
            )
        if isinstance(expr, S.ECall):
            return self._check_call(expr, scope, effect)
        if isinstance(expr, S.EField):
            target_stype = self.check_expr(expr.target, scope, effect)
            if not isinstance(target_stype, S.SRec):
                raise TypeProblem(
                    "field access '.{}' on non-record type {}".format(
                        expr.name, target_stype
                    ),
                    span=expr.span,
                )
            info = env.records[target_stype.name]
            index = info.field_index(expr.name)
            if index is None:
                raise TypeProblem(
                    "record '{}' has no field '{}'".format(
                        target_stype.name, expr.name
                    ),
                    span=expr.span,
                )
            expr.index = index
            return info.field_types[index - 1]
        if isinstance(expr, S.EBinOp):
            return self._check_binop(expr, scope, effect)
        if isinstance(expr, S.EUnOp):
            operand = self.check_expr(expr.operand, scope, effect)
            if operand != S.S_NUMBER:
                raise TypeProblem(
                    "'{}' needs a number, got {}".format(expr.op, operand),
                    span=expr.span,
                )
            expr.core_op = "neg" if expr.op == "-" else "not"
            return S.S_NUMBER
        if isinstance(expr, S.EListLit):
            if not expr.items:
                raise TypeProblem(
                    "empty list literals need a type: use nil(τ)",
                    span=expr.span,
                )
            first = self.check_expr(expr.items[0], scope, effect)
            for item in expr.items[1:]:
                other = self.check_expr(item, scope, effect)
                if other != first:
                    raise TypeProblem(
                        "list items disagree: {} vs {}".format(first, other),
                        span=item.span,
                    )
            return S.SList(first)
        if isinstance(expr, S.ENil):
            from .resolve import resolve_type

            return S.SList(resolve_type(expr.element, env))
        raise TypeProblem(
            "unknown expression {!r}".format(expr), span=expr.span
        )

    def _check_call(self, expr, scope, effect):
        env = self.env
        name = expr.name
        arg_stypes = [
            self.check_expr(arg, scope, effect) for arg in expr.args
        ]
        if name in env.records:
            info = env.records[name]
            expr.target_kind = "record"
            self._check_args(
                name, info.field_types, arg_stypes, expr,
                what="record constructor",
            )
            return S.SRec(name)
        if name in env.funs:
            sig = env.funs[name]
            callee_effect = sig.effect or PURE
            if not subeffect(callee_effect, effect):
                raise TypeProblem(
                    "function '{}' has effect {} and cannot be called "
                    "from {} code".format(name, callee_effect, effect),
                    rule="EFFECT",
                    span=expr.span,
                )
            expr.target_kind = "fun"
            self._check_args(name, sig.param_stypes, arg_stypes, expr)
            return sig.return_stype
        if name in env.externs:
            sig = env.externs[name]
            if not subeffect(sig.effect, effect):
                raise TypeProblem(
                    "extern '{}' has effect {} and cannot be called from "
                    "{} code".format(name, sig.effect, effect),
                    rule="EFFECT",
                    span=expr.span,
                )
            expr.target_kind = "extern"
            expr.core_op = name
            self._check_args(name, sig.param_stypes, arg_stypes, expr)
            return sig.return_stype
        return self._check_builtin(expr, arg_stypes)

    def _check_args(self, name, expected, actual, expr, what="function"):
        if len(expected) != len(actual):
            raise TypeProblem(
                "{} '{}' takes {} argument(s), got {}".format(
                    what, name, len(expected), len(actual)
                ),
                span=expr.span,
            )
        for index, (exp, act) in enumerate(zip(expected, actual)):
            if exp != act:
                raise TypeProblem(
                    "{} '{}' argument {} has type {}, expected {}".format(
                        what, name, index + 1, act, exp
                    ),
                    span=expr.args[index].span,
                )

    def _check_builtin(self, expr, arg_stypes):
        name = expr.name
        if name in BUILTIN_SIGS:
            params, result, core_op = BUILTIN_SIGS[name]
            expr.target_kind = "builtin"
            expr.core_op = core_op
            self._check_args(name, params, arg_stypes, expr, what="builtin")
            return result
        if name in LIST_BUILTINS:
            expr.target_kind = "builtin"
            expr.core_op = LIST_BUILTINS[name]
            return self._check_list_builtin(expr, arg_stypes)
        raise TypeProblem(
            "unknown function '{}'".format(name), span=expr.span
        )

    def _check_list_builtin(self, expr, arg_stypes):
        name = expr.name
        if not arg_stypes or not isinstance(arg_stypes[0], S.SList):
            raise TypeProblem(
                "builtin '{}' needs a list as its first argument".format(
                    name
                ),
                span=expr.span,
            )
        list_stype = arg_stypes[0]
        shapes = {
            "length": (1, S.S_NUMBER),
            "get": (2, list_stype.element),
            "append": (2, list_stype),
            "reverse": (1, list_stype),
            "slice": (3, list_stype),
        }
        arity, result = shapes[name]
        if len(arg_stypes) != arity:
            raise TypeProblem(
                "builtin '{}' takes {} argument(s), got {}".format(
                    name, arity, len(arg_stypes)
                ),
                span=expr.span,
            )
        if name == "get" and arg_stypes[1] != S.S_NUMBER:
            raise TypeProblem("'get' index must be a number", span=expr.span)
        if name == "append" and arg_stypes[1] != list_stype.element:
            raise TypeProblem(
                "'append' element has type {}, the list holds {}".format(
                    arg_stypes[1], list_stype.element
                ),
                span=expr.span,
            )
        if name == "slice" and (
            arg_stypes[1] != S.S_NUMBER or arg_stypes[2] != S.S_NUMBER
        ):
            raise TypeProblem(
                "'slice' bounds must be numbers", span=expr.span
            )
        return result

    def _check_binop(self, expr, scope, effect):
        left = self.check_expr(expr.left, scope, effect)
        right = self.check_expr(expr.right, scope, effect)
        op = expr.op
        if op in _ARITH_OPS:
            if left != S.S_NUMBER or right != S.S_NUMBER:
                raise TypeProblem(
                    "'{}' needs numbers, got {} and {}".format(
                        op, left, right
                    ),
                    span=expr.span,
                )
            expr.core_op = _ARITH_OPS[op]
            return S.S_NUMBER
        if op in _COMPARE_OPS:
            if left != S.S_NUMBER or right != S.S_NUMBER:
                raise TypeProblem(
                    "'{}' compares numbers, got {} and {}".format(
                        op, left, right
                    ),
                    span=expr.span,
                )
            expr.core_op = _COMPARE_OPS[op]
            return S.S_NUMBER
        if op in ("==", "!="):
            if left != right:
                raise TypeProblem(
                    "'{}' compares equal types, got {} and {}".format(
                        op, left, right
                    ),
                    span=expr.span,
                )
            expr.core_op = "eq" if op == "==" else "ne"
            return S.S_NUMBER
        if op == "||":
            # The paper's string concatenation coerces numbers
            # ("… * 100) || \"\"" in Section 3.1); the lowering inserts
            # str_of_num around number operands.
            for side, what in ((left, "left"), (right, "right")):
                if side not in (S.S_NUMBER, S.S_STRING):
                    raise TypeProblem(
                        "'||' joins strings/numbers; the {} operand is "
                        "{}".format(what, side),
                        span=expr.span,
                    )
            expr.core_op = "concat"
            return S.S_STRING
        if op in ("and", "or"):
            if left != S.S_NUMBER or right != S.S_NUMBER:
                raise TypeProblem(
                    "'{}' needs booleans (numbers), got {} and {}".format(
                        op, left, right
                    ),
                    span=expr.span,
                )
            expr.core_op = op
            return S.S_NUMBER
        raise TypeProblem(
            "unknown operator '{}'".format(op), span=expr.span
        )
