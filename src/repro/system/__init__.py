"""The system model (Figs. 7, 9, 12): states, events, transitions, runtime."""

from .events import Event, EventQueue, ExecEvent, PopEvent, PushEvent
from .fixup import FixupReport, fixup, fixup_stack, fixup_store
from .runtime import Runtime
from .services import Services, VirtualClock
from .state import PageStack, Store, SystemState
from .transitions import System, Transition

__all__ = [name for name in dir() if not name.startswith("_")]
