"""The system model (Figs. 7, 9, 12): states, events, transitions, runtime."""

from .events import Event, EventQueue, ExecEvent, PopEvent, PushEvent
from .fixup import FixupReport, fixup, fixup_stack, fixup_store
from .services import Services, VirtualClock
from .state import PageStack, Store, SystemState
from .transitions import System, Transition

from .._compat import deprecated_facade

__all__ = [name for name in dir() if not name.startswith("_")] + ["Runtime"]

# ``repro.system.Runtime`` still works, with a DeprecationWarning — the
# supported spelling is ``from repro.api import Runtime``.
__getattr__ = deprecated_facade(
    __name__, {"Runtime": ("repro.system.runtime", "Runtime")}
)
