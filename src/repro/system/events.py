"""Events ``q`` and the event queue ``Q`` (Fig. 7).

    q ::= [exec v] | [push p v] | [pop]
    Q ::= ε | Q q

The paper enqueues "by adding elements to the left of the sequence, and
dequeues by removing elements from the right end" — i.e. a FIFO.  We use a
deque with the same orientation so that dumps of the queue read exactly
like the paper's sequences.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..core import ast
from ..core.errors import ReproError


class Event:
    """Base class of the three event kinds."""

    __slots__ = ()


@dataclass(frozen=True)
class ExecEvent(Event):
    """``[exec v]`` — run thunk ``v : () -s> ()`` in standard mode (THUNK).

    Produced by user interactions: rule TAP wraps the tapped box's
    ``ontap`` handler, and the EDIT extension wraps ``onedit`` applied to
    the new text.
    """

    thunk: ast.Expr
    __slots__ = ("thunk",)

    def __post_init__(self):
        if not self.thunk.is_value():
            raise ReproError("[exec v] requires a value payload")

    def __str__(self):
        return "[exec v]"


@dataclass(frozen=True)
class PushEvent(Event):
    """``[push p v]`` — create page ``p`` with argument ``v`` (PUSH)."""

    page: str
    arg: ast.Expr
    __slots__ = ("page", "arg")

    def __post_init__(self):
        if not self.arg.is_value():
            raise ReproError("[push p v] requires a value argument")

    def __str__(self):
        return "[push {} v]".format(self.page)


def edit_thunk(handler, text):
    """The ``[exec v]`` thunk the EDIT extension wraps around ``onedit``.

    Shared by :meth:`repro.system.transitions.System.edit` and the
    server's event batcher (:mod:`repro.serve.batching`) so both enqueue
    byte-identical events: a unit-taking lambda applying the handler to
    the new text in standard mode.
    """
    from ..core.effects import STATE
    from ..core.types import UNIT

    return ast.Lam(
        ast.fresh_name("ignored"),
        UNIT,
        ast.App(handler, ast.Str(text)),
        STATE,
    )


@dataclass(frozen=True)
class PopEvent(Event):
    """``[pop]`` — pop the current page (POP)."""

    __slots__ = ()

    def __str__(self):
        return "[pop]"


class EventQueue:
    """The queue ``Q``: enqueue on the left, dequeue on the right (Fig. 7)."""

    __slots__ = ("_events",)

    def __init__(self, events=()):
        self._events = deque(events)

    def enqueue(self, event):
        """Add ``event`` at the left end (newest position)."""
        if not isinstance(event, Event):
            raise ReproError("not an event: {!r}".format(event))
        self._events.appendleft(event)

    def dequeue(self):
        """Remove and return the rightmost (oldest) event."""
        if not self._events:
            raise ReproError("dequeue from an empty queue")
        return self._events.pop()

    def peek(self):
        """The event the next transition will dequeue, or ``None``."""
        return self._events[-1] if self._events else None

    def is_empty(self):
        return not self._events

    def __len__(self):
        return len(self._events)

    def events(self):
        """All events, left to right, as an immutable snapshot."""
        return tuple(self._events)

    def clear(self):
        """Drop all events (the UPDATE transition leaves ``Q = ε``)."""
        self._events.clear()

    def copy(self):
        return EventQueue(self._events)

    def __eq__(self, other):
        return (
            isinstance(other, EventQueue) and self.events() == other.events()
        )

    def __hash__(self):
        return hash(self.events())

    def __repr__(self):
        if not self._events:
            return "Q(ε)"
        return "Q({})".format(" ".join(str(e) for e in self._events))
