"""The state fix-up relations of Fig. 12: ``C' : S ▷ S'`` and ``C' : P ▷ P'``.

When the UPDATE transition swaps new code ``C'`` for old code ``C``, the
store and page stack were built under ``C`` and may no longer make sense:
a global may have been deleted or changed type; a page may be gone or take
a different argument.  The paper's answer is radical and simple —
"essentially, it just deletes whatever does not type":

* S-OKAY keeps a store entry ``[g ↦ v]`` iff ``C'`` still declares ``g``
  *and* ``C'; ε ⊢s v : τ`` at the declared type.  Dropped globals revert
  to their (new) initial value via lazy rule EP-GLOBAL-2.
* P-OKAY keeps a stack entry ``(p, v)`` iff ``C'`` still defines page
  ``p`` *and* ``v`` types at the new argument type.  Dropped pages simply
  vanish from the navigation history.

Both relations preserve the order of surviving entries.  We also return a
:class:`FixupReport` naming what was dropped, which the live IDE surfaces
to the programmer ("your edit reset global ``listings``").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.trace import NULL_TRACER
from ..typing.checker import check_value_type
from .state import PageStack, Store


@dataclass
class FixupReport:
    """What the fix-up deleted, for diagnostics (not part of the semantics)."""

    dropped_globals: list = field(default_factory=list)
    dropped_pages: list = field(default_factory=list)

    @property
    def clean(self):
        """Did every entry survive?"""
        return not self.dropped_globals and not self.dropped_pages


def fixup_store(new_code, store, natives=None, report=None,
                tracer=NULL_TRACER):
    """``C' : S ▷ S'`` — rules S-EMPTY / S-SKIP / S-OKAY.

    Returns a *new* :class:`Store`; the input is not modified.
    """
    if report is None:
        report = FixupReport()
    result = Store()
    for name, value in store.items():
        definition = new_code.global_(name)
        if definition is not None and check_value_type(
            new_code, value, definition.type, natives=natives
        ):
            # S-OKAY — the entry survives *with its write version*: it is
            # the same assignment event, so memo entries stamped against
            # the old store keep probing by integer compare (see
            # repro.incremental).
            result.carry(name, value, store.version(name))
        else:
            report.dropped_globals.append(name)  # S-SKIP
            tracer.add("store_entries_deleted")
    return result, report


def fixup_stack(new_code, stack, natives=None, report=None,
                tracer=NULL_TRACER):
    """``C' : P ▷ P'`` — rules P-EMPTY / P-SKIP / P-OKAY.

    Returns a *new* :class:`PageStack`; the input is not modified.
    """
    if report is None:
        report = FixupReport()
    surviving = []
    for page_name, value in stack.entries():
        page = new_code.page(page_name)
        if page is not None and check_value_type(
            new_code, value, page.arg_type, natives=natives
        ):
            surviving.append((page_name, value))  # P-OKAY
        else:
            report.dropped_pages.append(page_name)  # P-SKIP
            tracer.add("stack_frames_fixed")
    return PageStack(surviving), report


def fixup(new_code, store, stack, natives=None, tracer=NULL_TRACER):
    """Run both relations; returns ``(store', stack', report)``."""
    report = FixupReport()
    new_store, _ = fixup_store(new_code, store, natives, report, tracer)
    new_stack, _ = fixup_stack(new_code, stack, natives, report, tracer)
    return new_store, new_stack, report
